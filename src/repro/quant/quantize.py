"""Uniform integer quantization primitives.

These functions implement the symmetric uniform quantization used throughout
the paper (Section II-C):

    s   = xmax / (2^(b-1) - 1)
    x_q = round(x_f / s)            (clipped to the signed integer range)
    x_f = x_q * s                   (dequantization)

plus an asymmetric variant (explicit zero point) used by some baselines, and a
:class:`QuantizedTensor` container that keeps integer values together with the
metadata needed to dequantize them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import QuantizationError
from repro.quant.granularity import Granularity, compute_scale, integer_range


def quantize_symmetric(values: np.ndarray, scale: np.ndarray, bits: int) -> np.ndarray:
    """Quantize ``values`` with the given ``scale`` into signed ``bits``-bit ints."""
    qmax = integer_range(bits)
    quantized = np.round(values / scale)
    return np.clip(quantized, -qmax, qmax).astype(np.int32)


def dequantize_symmetric(quantized: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Restore floating-point values from symmetric-quantized integers."""
    return quantized.astype(np.float64) * scale


def quantize_asymmetric(values: np.ndarray, bits: int, axis: Optional[int] = None):
    """Asymmetric (zero-point) quantization used by some baseline schemes.

    Returns ``(quantized, scale, zero_point)`` where
    ``values ~= (quantized - zero_point) * scale``.
    """
    qmin = 0
    qmax = 2**bits - 1
    vmax = values.max(axis=axis, keepdims=axis is not None)
    vmin = values.min(axis=axis, keepdims=axis is not None)
    scale = np.maximum((vmax - vmin) / (qmax - qmin), 1e-12)
    zero_point = np.round(-vmin / scale)
    quantized = np.clip(np.round(values / scale) + zero_point, qmin, qmax).astype(np.int32)
    return quantized, scale, zero_point


def dequantize_asymmetric(quantized: np.ndarray, scale: np.ndarray, zero_point: np.ndarray) -> np.ndarray:
    """Restore floating-point values from asymmetric-quantized integers."""
    return (quantized.astype(np.float64) - zero_point) * scale


@dataclass
class QuantizedTensor:
    """Integer values plus the metadata required to dequantize them.

    ``scale`` broadcasts against ``values``.  ``bias`` (optional) is the
    per-channel midpoint subtracted before quantization, as used by Tender's
    bias-subtraction step; dequantization adds it back.
    """

    values: np.ndarray
    scale: np.ndarray
    bits: int
    granularity: Granularity = Granularity.PER_TENSOR
    bias: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        qmax = integer_range(self.bits)
        if np.abs(self.values).max(initial=0) > qmax:
            raise QuantizationError(
                f"quantized values exceed the {self.bits}-bit range (|q| > {qmax})"
            )

    @property
    def shape(self):
        return self.values.shape

    def dequantize(self) -> np.ndarray:
        """Return the floating-point reconstruction of the tensor."""
        restored = dequantize_symmetric(self.values, self.scale)
        if self.bias is not None:
            restored = restored + self.bias
        return restored


def quantize_tensor(
    tensor: np.ndarray,
    bits: int,
    granularity: Granularity = Granularity.PER_TENSOR,
    scale: Optional[np.ndarray] = None,
) -> QuantizedTensor:
    """Quantize a tensor at the requested granularity.

    If ``scale`` is provided (static quantization with calibrated scales), it
    is used directly; otherwise scales are computed from the tensor itself
    (dynamic quantization).
    """
    if scale is None:
        scale = compute_scale(tensor, bits, granularity)
    values = quantize_symmetric(tensor, scale, bits)
    return QuantizedTensor(values=values, scale=scale, bits=bits, granularity=granularity)


def quantization_mse(tensor: np.ndarray, quantized: QuantizedTensor) -> float:
    """Mean squared error between a tensor and its quantized reconstruction."""
    diff = tensor - quantized.dequantize()
    return float(np.mean(diff * diff))


def fake_quantize(
    tensor: np.ndarray,
    bits: int,
    granularity: Granularity = Granularity.PER_TENSOR,
    scale: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Quantize then immediately dequantize (simulated quantization error)."""
    return quantize_tensor(tensor, bits, granularity, scale).dequantize()
