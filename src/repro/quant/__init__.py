"""Quantization substrate: granularities, primitives, integer GEMM, observers."""

from repro.quant.granularity import Granularity, absmax, compute_scale, integer_range
from repro.quant.quantize import (
    QuantizedTensor,
    dequantize_asymmetric,
    dequantize_symmetric,
    fake_quantize,
    quantization_mse,
    quantize_asymmetric,
    quantize_symmetric,
    quantize_tensor,
)
from repro.quant.gemm import ACCUMULATOR_BITS, int_matmul, quantized_matmul, shift_left
from repro.quant.observers import ActivationObserver, TensorStatistics

__all__ = [
    "Granularity",
    "absmax",
    "compute_scale",
    "integer_range",
    "QuantizedTensor",
    "quantize_symmetric",
    "dequantize_symmetric",
    "quantize_asymmetric",
    "dequantize_asymmetric",
    "quantize_tensor",
    "fake_quantize",
    "quantization_mse",
    "ACCUMULATOR_BITS",
    "int_matmul",
    "quantized_matmul",
    "shift_left",
    "ActivationObserver",
    "TensorStatistics",
]
