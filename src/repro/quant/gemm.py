"""Integer GEMM emulation with INT32 accumulation.

The accelerators the paper targets (and the Tender hardware itself) perform
matrix multiplication entirely in the integer pipeline: INT4/INT8 operands are
multiplied and accumulated into 32-bit integer accumulators, and only the
final result is rescaled to floating point by the Vector Processing Unit.

This module emulates that pipeline exactly in NumPy (int64 intermediates, with
an overflow check against the 32-bit accumulator width), so that the software
quantization results in this repo correspond to what the hardware would
produce bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError

#: Width of the systolic-array accumulator registers (Section IV-B).
ACCUMULATOR_BITS = 32
_ACC_MAX = 2 ** (ACCUMULATOR_BITS - 1) - 1
_ACC_MIN = -(2 ** (ACCUMULATOR_BITS - 1))


def int_matmul(a: np.ndarray, b: np.ndarray, check_overflow: bool = True) -> np.ndarray:
    """Integer matrix multiply with 32-bit accumulator semantics.

    ``a`` and ``b`` must be integer arrays (any width).  The product is
    computed in int64 and, when ``check_overflow`` is True, validated to fit
    in the 32-bit accumulator the hardware provides.
    """
    if not np.issubdtype(a.dtype, np.integer) or not np.issubdtype(b.dtype, np.integer):
        raise QuantizationError("int_matmul requires integer operands")
    product = a.astype(np.int64) @ b.astype(np.int64)
    if check_overflow and (product.max(initial=0) > _ACC_MAX or product.min(initial=0) < _ACC_MIN):
        raise QuantizationError(
            "integer matmul overflowed the 32-bit accumulator; reduce the reduction "
            "length or the operand bit widths"
        )
    return product


def quantized_matmul(
    a_values: np.ndarray,
    a_scale: np.ndarray,
    b_values: np.ndarray,
    b_scale: np.ndarray,
    check_overflow: bool = True,
) -> np.ndarray:
    """Multiply two symmetric-quantized matrices and rescale to float.

    Valid when the scales are constant along the reduction axis (per-tensor or
    per-row scales for ``a``, per-tensor or per-column scales for ``b``): the
    integer product can then be rescaled after accumulation, which is what the
    integer pipeline supports natively.
    """
    product = int_matmul(a_values, b_values, check_overflow=check_overflow)
    return product.astype(np.float64) * a_scale * b_scale


def shift_left(accumulator: np.ndarray, bits: int = 1) -> np.ndarray:
    """Shift an integer accumulator left, as Tender's per-PE 1-bit shifter does.

    The result is checked against the 32-bit accumulator range; the paper's
    insight is that the accumulator has enough headroom that this shift never
    clips in practice for LLM workloads.
    """
    shifted = accumulator.astype(np.int64) << bits
    if shifted.max(initial=0) > _ACC_MAX or shifted.min(initial=0) < _ACC_MIN:
        raise QuantizationError("accumulator shift overflowed the 32-bit register")
    return shifted
