"""Calibration observers.

The paper uses *static* quantization: scale factors (and, for Tender, channel
biases and group assignments) are computed offline from a small set of
calibration samples (128 Pile sequences) and reused at runtime.  Observers
collect the statistics needed for that, one observer per named tensor in the
model (e.g. ``"layer3.attn.q_proj.input"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import CalibrationError


@dataclass
class TensorStatistics:
    """Running statistics of a named activation or weight tensor.

    ``channel_max`` / ``channel_min`` are tracked along the last axis (the
    feature/channel dimension), which is the axis the paper decomposes.
    """

    num_batches: int = 0
    tensor_absmax: float = 0.0
    channel_max: Optional[np.ndarray] = None
    channel_min: Optional[np.ndarray] = None
    sum_squares: float = 0.0
    num_elements: int = 0

    def update(self, tensor: np.ndarray) -> None:
        """Fold one calibration batch into the running statistics."""
        flat = tensor.reshape(-1, tensor.shape[-1])
        batch_max = flat.max(axis=0)
        batch_min = flat.min(axis=0)
        if self.channel_max is None:
            self.channel_max = batch_max.copy()
            self.channel_min = batch_min.copy()
        else:
            if self.channel_max.shape != batch_max.shape:
                raise CalibrationError(
                    "calibration batches disagree on the channel dimension: "
                    f"{self.channel_max.shape} vs {batch_max.shape}"
                )
            np.maximum(self.channel_max, batch_max, out=self.channel_max)
            np.minimum(self.channel_min, batch_min, out=self.channel_min)
        self.tensor_absmax = max(self.tensor_absmax, float(np.abs(tensor).max()))
        self.sum_squares += float((tensor * tensor).sum())
        self.num_elements += tensor.size
        self.num_batches += 1

    @property
    def channel_absmax(self) -> np.ndarray:
        """Per-channel absolute maximum (CMax in the paper's notation)."""
        if self.channel_max is None or self.channel_min is None:
            raise CalibrationError("no calibration batches observed")
        return np.maximum(np.abs(self.channel_max), np.abs(self.channel_min))

    @property
    def channel_bias(self) -> np.ndarray:
        """Per-channel midpoint (max + min) / 2, Tender's bias term."""
        if self.channel_max is None or self.channel_min is None:
            raise CalibrationError("no calibration batches observed")
        return (self.channel_max + self.channel_min) / 2.0

    @property
    def rms(self) -> float:
        """Root-mean-square of all observed values (used by SmoothQuant-style scaling)."""
        if self.num_elements == 0:
            raise CalibrationError("no calibration batches observed")
        return float(np.sqrt(self.sum_squares / self.num_elements))


class ActivationObserver:
    """Collects :class:`TensorStatistics` for every named tensor it sees."""

    def __init__(self) -> None:
        self.statistics: Dict[str, TensorStatistics] = {}

    def observe(self, name: str, tensor: np.ndarray) -> None:
        """Record one calibration batch for tensor ``name``."""
        self.statistics.setdefault(name, TensorStatistics()).update(np.asarray(tensor, dtype=np.float64))

    def get(self, name: str) -> TensorStatistics:
        """Return the statistics for ``name``; raises if never observed."""
        if name not in self.statistics:
            raise CalibrationError(f"tensor {name!r} was never observed during calibration")
        return self.statistics[name]

    def names(self):
        return sorted(self.statistics)

    def __contains__(self, name: str) -> bool:
        return name in self.statistics

    def __len__(self) -> int:
        return len(self.statistics)
