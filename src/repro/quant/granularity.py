"""Quantization granularities and scale-factor computation.

Section II-C of the paper compares per-tensor, per-row, and per-column
granularities for activation tensors (Table I) and explains why per-column —
though the most accurate — is impractical on integer pipelines: each element
would need rescaling during the reduction of the matrix multiplication.
This module provides the scale computations for all granularities; the
executors in ``repro.baselines`` and ``repro.core`` decide which are usable.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.errors import QuantizationError


class Granularity(str, Enum):
    """How elements of a tensor share quantization scale factors."""

    PER_TENSOR = "per_tensor"
    PER_ROW = "per_row"
    PER_COLUMN = "per_column"
    PER_GROUP = "per_group"


def integer_range(bits: int) -> int:
    """Largest magnitude representable by a signed ``bits``-bit integer.

    For symmetric quantization the paper uses ``2^(b-1) - 1`` (e.g. 127 for
    INT8 and 7 for INT4).
    """
    if bits < 2 or bits > 32:
        raise QuantizationError(f"unsupported bit width: {bits}")
    return 2 ** (bits - 1) - 1


def absmax(tensor: np.ndarray, axis: Optional[int] = None, keepdims: bool = False) -> np.ndarray:
    """Absolute maximum of ``tensor`` along ``axis`` (None = whole tensor)."""
    return np.abs(tensor).max(axis=axis, keepdims=keepdims)


def compute_scale(
    tensor: np.ndarray,
    bits: int,
    granularity: Granularity,
    eps: float = 1e-12,
) -> np.ndarray:
    """Compute symmetric scale factors ``s = xmax / (2^(b-1) - 1)``.

    The returned array broadcasts against ``tensor``:

    * ``PER_TENSOR`` — scalar (shape ``()``)
    * ``PER_ROW`` — one scale per row, shape ``(rows, 1)``
    * ``PER_COLUMN`` — one scale per column, shape ``(1, cols)``

    ``PER_GROUP`` scales depend on an external channel-to-group assignment and
    are computed by the Tender decomposition code, not here.
    """
    qmax = integer_range(bits)
    if granularity == Granularity.PER_TENSOR:
        scale = absmax(tensor) / qmax
        return np.maximum(np.asarray(scale), eps)
    if granularity == Granularity.PER_ROW:
        scale = absmax(tensor, axis=-1, keepdims=True) / qmax
        return np.maximum(scale, eps)
    if granularity == Granularity.PER_COLUMN:
        scale = absmax(tensor, axis=-2, keepdims=True) / qmax
        return np.maximum(scale, eps)
    raise QuantizationError(
        "PER_GROUP scales require a channel-group assignment; use repro.core.decomposition"
    )
