"""repro: a from-scratch reproduction of Tender (ISCA 2024).

Tender: Accelerating Large Language Models via Tensor Decomposition and
Runtime Requantization — Lee, Lee, and Sim.

Top-level convenience re-exports cover the most common entry points; the
subpackages hold the full system:

* :mod:`repro.core` — Tender's decomposed quantization and runtime
  requantization (the paper's contribution).
* :mod:`repro.quant` — uniform-quantization substrate and integer GEMM.
* :mod:`repro.baselines` — SmoothQuant, LLM.int8(), ANT, OliVe, MSFP, MX/SMX.
* :mod:`repro.models`, :mod:`repro.nn`, :mod:`repro.tensor`, :mod:`repro.data`
  — the Transformer substrate (training, inference, synthetic datasets).
* :mod:`repro.eval` — perplexity / accuracy / MSE evaluation harness.
* :mod:`repro.accelerator` — cycle-level simulator of the Tender accelerator
  and its baselines (ANT, OLAccel, OliVe).
* :mod:`repro.gpu` — analytical GPU GEMM latency model (Figure 12).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import TenderConfig, TenderQuantizer
from repro.quant import Granularity

__version__ = "1.0.0"

__all__ = ["TenderConfig", "TenderQuantizer", "Granularity", "__version__"]
