"""Table IV: INT8/INT4 PTQ accuracy on BERT-Large / GLUE.

All schemes quantize *every* matrix multiplication in the Transformer block
(including attention score and value products), and accuracy is reported per
GLUE task.  The reproduction fine-tunes the encoder stand-in on synthetic
GLUE-like tasks and evaluates the same schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.registry import SchemeRequest, build_runner
from repro.data.classification import GLUE_TASK_NAMES
from repro.data.corpus import load_corpus
from repro.data.datasets import calibration_samples
from repro.eval.accuracy import evaluate_classification
from repro.experiments.report import current_profile, format_table
from repro.models.checkpoints import get_glue_classifier

TABLE4_SCHEMES = ["ANT", "OliVe", "Tender"]


@dataclass
class Table4Cell:
    precision: str
    scheme: str
    task: str
    accuracy: float


def run_table4(
    model_name: str = "bert-large-sim",
    tasks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = TABLE4_SCHEMES,
    max_examples: Optional[int] = None,
) -> List[Table4Cell]:
    """Compute Table IV accuracies (FP32 baseline plus INT8/INT4 schemes)."""
    profile = current_profile()
    tasks = list(tasks) if tasks is not None else list(GLUE_TASK_NAMES)
    max_examples = max_examples or profile.glue_examples

    pile_train, _ = load_corpus("pile").split()
    cells: List[Table4Cell] = []
    for task_name in tasks:
        weights, task = get_glue_classifier(model_name, task_name)
        samples = calibration_samples(pile_train, weights.config.max_seq_len // 2, 8)
        base_request = SchemeRequest(
            weights=weights, calibration=samples, bits=16, classify=True, quantize_attention=True
        )
        base_runner = build_runner("Base", base_request)
        cells.append(
            Table4Cell(
                precision="FP32",
                scheme="Base",
                task=task_name,
                accuracy=evaluate_classification(base_runner, task, max_examples=max_examples),
            )
        )
        for bits in (8, 4):
            for scheme in schemes:
                request = SchemeRequest(
                    weights=weights,
                    calibration=samples,
                    bits=bits,
                    classify=True,
                    quantize_attention=True,
                    options={"num_groups": 12, "row_chunk_size": 32},
                )
                runner = build_runner(scheme, request)
                cells.append(
                    Table4Cell(
                        precision=f"INT{bits}",
                        scheme=scheme,
                        task=task_name,
                        accuracy=evaluate_classification(runner, task, max_examples=max_examples),
                    )
                )
    return cells


def render_table4(cells: List[Table4Cell]) -> str:
    tasks = []
    for cell in cells:
        if cell.task not in tasks:
            tasks.append(cell.task)
    headers = ["Precision", "Scheme"] + tasks
    row_keys = []
    for cell in cells:
        key = (cell.precision, cell.scheme)
        if key not in row_keys:
            row_keys.append(key)
    index = {(c.precision, c.scheme, c.task): c.accuracy for c in cells}
    rows = [
        [precision, scheme] + [index.get((precision, scheme, task), float("nan")) for task in tasks]
        for precision, scheme in row_keys
    ]
    return format_table(headers, rows, title="Table IV: BERT-Large GLUE accuracy")
