"""One module per paper table/figure; each returns structured rows + a renderer."""

from repro.experiments.report import (
    ExperimentProfile,
    current_profile,
    format_table,
    full_evaluation_enabled,
)
from repro.experiments.table1 import Table1Row, render_table1, run_table1
from repro.experiments.table2 import Table2Cell, render_table2, run_table2
from repro.experiments.table3 import Table3Cell, render_table3, run_table3
from repro.experiments.table4 import Table4Cell, render_table4, run_table4
from repro.experiments.table5 import render_table5, run_table5
from repro.experiments.table6 import Table6Row, render_table6, run_table6
from repro.experiments.table7 import Table7Cell, render_table7, run_table7
from repro.experiments.figure2 import TensorRangeSummary, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Result, render_figure3, run_figure3
from repro.experiments.figure9 import GroupSweepPoint, render_figure9, run_figure9
from repro.experiments.figure10 import SpeedupRow, render_figure10, run_figure10
from repro.experiments.figure11 import EnergyRow, render_figure11, run_figure11
from repro.experiments.figure12 import Figure12Row, render_figure12, run_figure12
from repro.experiments.figure13 import Figure13Row, render_figure13, run_figure13

__all__ = [
    "ExperimentProfile",
    "current_profile",
    "full_evaluation_enabled",
    "format_table",
    "run_table1", "render_table1", "Table1Row",
    "run_table2", "render_table2", "Table2Cell",
    "run_table3", "render_table3", "Table3Cell",
    "run_table4", "render_table4", "Table4Cell",
    "run_table5", "render_table5",
    "run_table6", "render_table6", "Table6Row",
    "run_table7", "render_table7", "Table7Cell",
    "run_figure2", "render_figure2", "TensorRangeSummary",
    "run_figure3", "render_figure3", "Figure3Result",
    "run_figure9", "render_figure9", "GroupSweepPoint",
    "run_figure10", "render_figure10", "SpeedupRow",
    "run_figure11", "render_figure11", "EnergyRow",
    "run_figure12", "render_figure12", "Figure12Row",
    "run_figure13", "render_figure13", "Figure13Row",
]
