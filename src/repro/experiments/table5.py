"""Table V: area and power of the Tender accelerator."""

from __future__ import annotations

from typing import List

from repro.accelerator.area import ComponentArea, tender_area_table, total_area_power
from repro.experiments.report import format_table


def run_table5() -> List[ComponentArea]:
    """Component-level area/power breakdown of the Tender design."""
    return tender_area_table()


def render_table5(rows: List[ComponentArea]) -> str:
    totals = total_area_power(rows)
    body = [[row.component, row.setup, row.area_mm2, row.power_w] for row in rows]
    body.append(["Total", "", totals["area_mm2"], totals["power_w"]])
    return format_table(
        ["Component", "Setup", "Area [mm2]", "Power [W]"], body,
        title="Table V: area and power characteristics of Tender",
    )
