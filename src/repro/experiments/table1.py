"""Table I: perplexity at different activation-quantization granularities.

The paper quantizes activations at per-tensor, per-row, and per-column
granularity (INT8 and INT4) on OPT-6.7B/13B and Llama-2-7B/13B and shows that
only per-column — impractical on integer pipelines — retains the FP16
perplexity, which motivates Tender's channel decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.runner import EvalSettings, EvaluationRunner
from repro.experiments.report import current_profile, format_table

#: Rows of the paper's Table I, in order.
GRANULARITY_SCHEMES = ["per-tensor", "per-row", "per-column"]
DEFAULT_MODELS = ("opt-6.7b-sim", "opt-13b-sim", "llama-2-7b-sim", "llama-2-13b-sim")


@dataclass
class Table1Row:
    """One row: a precision/granularity combination across the models."""

    label: str
    perplexities: Dict[str, float]


def run_table1(
    models: Optional[Sequence[str]] = None,
    dataset: str = "wiki",
    runner: Optional[EvaluationRunner] = None,
) -> List[Table1Row]:
    """Compute Table I rows (FP16 baseline plus INT8/INT4 granularities)."""
    profile = current_profile()
    if models is None:
        models = [m for m in DEFAULT_MODELS if m in profile.models] or list(profile.models)
    runner = runner or EvaluationRunner(EvalSettings(max_windows=profile.max_windows))

    rows: List[Table1Row] = [
        Table1Row(
            label="FP16",
            perplexities={m: runner.perplexity("Base", m, dataset, bits=16) for m in models},
        )
    ]
    for bits in (8, 4):
        for scheme in GRANULARITY_SCHEMES:
            rows.append(
                Table1Row(
                    label=f"INT{bits} {scheme}",
                    perplexities={
                        m: runner.perplexity(scheme, m, dataset, bits=bits) for m in models
                    },
                )
            )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    """Render Table I in the paper's layout."""
    models = list(rows[0].perplexities)
    headers = ["Scheme"] + models
    body = [[row.label] + [row.perplexities[m] for m in models] for row in rows]
    return format_table(headers, body, title="Table I: perplexity vs activation quantization granularity")
