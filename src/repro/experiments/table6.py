"""Table VI: Tender INT4 vs MSFP block floating point.

The paper compares Tender-INT4 against MSFP12 and the column-blocked
MSFP12-OL variant on the three largest models (OPT-66B, Llama-2-70B,
LLaMA-65B) using WikiText-2 perplexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.runner import EvalSettings, EvaluationRunner
from repro.experiments.report import current_profile, format_table

TABLE6_MODELS = ("opt-66b-sim", "llama-2-70b-sim", "llama-65b-sim")
TABLE6_SCHEMES = ("MSFP12", "MSFP12-OL", "Tender")


@dataclass
class Table6Row:
    scheme: str
    perplexities: Dict[str, float]


def run_table6(
    models: Optional[Sequence[str]] = None,
    dataset: str = "wiki",
    runner: Optional[EvaluationRunner] = None,
) -> List[Table6Row]:
    """FP16 baseline, MSFP12, MSFP12-OL, and Tender-INT4 perplexities."""
    profile = current_profile()
    if models is None:
        models = TABLE6_MODELS if "opt-66b-sim" in profile.models else profile.models[:2]
    runner = runner or EvaluationRunner(EvalSettings(max_windows=profile.max_windows))
    rows = [
        Table6Row(
            scheme="FP16",
            perplexities={m: runner.perplexity("Base", m, dataset, bits=16) for m in models},
        )
    ]
    for scheme in ("MSFP12", "MSFP12-OL"):
        rows.append(
            Table6Row(
                scheme=scheme,
                perplexities={m: runner.perplexity(scheme, m, dataset, bits=4) for m in models},
            )
        )
    rows.append(
        Table6Row(
            scheme="Tender-INT4",
            perplexities={
                m: runner.perplexity(
                    "Tender", m, dataset, bits=4,
                    options={"num_groups": 12, "row_chunk_size": 32},
                )
                for m in models
            },
        )
    )
    return rows


def render_table6(rows: List[Table6Row]) -> str:
    models = list(rows[0].perplexities)
    headers = ["Precision"] + models
    body = [[row.scheme] + [row.perplexities[m] for m in models] for row in rows]
    return format_table(headers, body, title="Table VI: Tender vs MSFP (WikiText-2 perplexity)")
