"""Figure 2: value ranges of activation vs weight tensors.

The paper visualises the attention-input and FC1-input activations against
the QKV and FC1 weights of OPT-6.7B layer 8: activations have a few channels
with very large values while weights are uniformly small.  The reproduction
reports the per-tensor statistics that the figure conveys (channel maxima,
median channel range, and the outlier ratio between them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.corpus import load_corpus
from repro.experiments.report import format_table
from repro.models.checkpoints import get_language_model
from repro.models.inference import capture_activations
from repro.models.outliers import measure_channel_ranges, outlier_ratio


@dataclass
class TensorRangeSummary:
    """Summary of one tensor's value distribution."""

    tensor: str
    kind: str
    absolute_max: float
    median_channel_max: float
    outlier_ratio: float


def run_figure2(model_name: str = "opt-6.7b-sim", layer: int = 0, seq_len: int = 64) -> List[TensorRangeSummary]:
    """Collect activation/weight range summaries for one Transformer layer."""
    weights = get_language_model(model_name)
    _, eval_tokens = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    captured = capture_activations(weights, eval_tokens[:seq_len])
    block = weights.blocks[layer]

    summaries: List[TensorRangeSummary] = []
    activation_sources: Dict[str, np.ndarray] = {
        "Attention Input": captured[f"block{layer}.attn.q_proj"],
        "Feed-Forward Input": captured[f"block{layer}.ffn.fc1"],
    }
    weight_sources: Dict[str, np.ndarray] = {
        "QKV Weight": np.concatenate([block.attn.wq, block.attn.wk, block.attn.wv], axis=1),
        "FC1 Weight": block.ffn.w1,
    }
    for name, tensor in activation_sources.items():
        channel_max = measure_channel_ranges(tensor)
        summaries.append(
            TensorRangeSummary(
                tensor=name,
                kind="activation",
                absolute_max=float(np.abs(tensor).max()),
                median_channel_max=float(np.median(channel_max)),
                outlier_ratio=outlier_ratio(tensor),
            )
        )
    for name, tensor in weight_sources.items():
        channel_max = np.abs(tensor).max(axis=1)
        median = float(np.median(channel_max))
        summaries.append(
            TensorRangeSummary(
                tensor=name,
                kind="weight",
                absolute_max=float(np.abs(tensor).max()),
                median_channel_max=median,
                outlier_ratio=float(channel_max.max() / median) if median else float("inf"),
            )
        )
    return summaries


def render_figure2(summaries: List[TensorRangeSummary]) -> str:
    headers = ["Tensor", "Kind", "AbsMax", "Median CMax", "Outlier ratio"]
    rows = [
        [s.tensor, s.kind, s.absolute_max, s.median_channel_max, s.outlier_ratio] for s in summaries
    ]
    return format_table(headers, rows, title="Figure 2: activation vs weight value ranges")
