"""Figure 13: implicit vs explicit requantization on the Tender hardware.

The paper compares end-to-end execution time when Tender uses implicit
(shift-in-PE) requantization against explicit (per-group dequantize and
accumulate) requantization, normalized to per-tensor quantization without
decomposition, for 8 and 16 channel groups.  Explicit requantization shortens
the reduction axis and adds FP work, slowing execution by up to ~1.7x, while
implicit requantization tracks the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.accelerator.simulator import simulate_on
from repro.accelerator.workloads import model_prefill_workload
from repro.experiments.report import format_table

FIGURE13_MODELS = ("opt-6.7b-sim", "llama-2-13b-sim", "llama-2-70b-sim")
FIGURE13_GROUP_COUNTS = (8, 16)


@dataclass
class Figure13Row:
    model: str
    num_groups: int
    base_latency: float
    explicit_latency: float
    implicit_latency: float

    @property
    def explicit_normalized(self) -> float:
        return self.explicit_latency / self.base_latency

    @property
    def implicit_normalized(self) -> float:
        return self.implicit_latency / self.base_latency


def run_figure13(
    models: Sequence[str] = FIGURE13_MODELS,
    group_counts: Sequence[int] = FIGURE13_GROUP_COUNTS,
    seq_len: int = 2048,
) -> List[Figure13Row]:
    """Normalized latency of explicit vs implicit requantization on Tender."""
    rows: List[Figure13Row] = []
    for num_groups in group_counts:
        for model in models:
            workload = model_prefill_workload(model, seq_len=seq_len)
            base = simulate_on("Tender", workload, num_groups=1).seconds
            explicit = simulate_on("Tender", workload, num_groups=num_groups, implicit=False).seconds
            implicit = simulate_on("Tender", workload, num_groups=num_groups, implicit=True).seconds
            rows.append(
                Figure13Row(
                    model=model,
                    num_groups=num_groups,
                    base_latency=base,
                    explicit_latency=explicit,
                    implicit_latency=implicit,
                )
            )
    return rows


def render_figure13(rows: List[Figure13Row]) -> str:
    headers = ["Model", "Groups", "Base", "Explicit (norm.)", "Tender implicit (norm.)"]
    body = [
        [r.model, r.num_groups, 1.0, r.explicit_normalized, r.implicit_normalized] for r in rows
    ]
    return format_table(headers, body, title="Figure 13: implicit vs explicit requantization latency")
