"""Table VII: zero-shot accuracy under microscaling formats vs Tender.

The paper evaluates OPT-6.7B and LLaMA-7B with lm-evaluation-harness zero-shot
tasks, comparing FP32 against SMX4, MXFP4, and Tender (INT4).  The
reproduction scores the synthetic multiple-choice tasks with the same
likelihood rule on the stand-in checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import SchemeRequest, build_runner
from repro.data.corpus import load_corpus
from repro.data.datasets import calibration_samples
from repro.data.zeroshot import ZEROSHOT_TASK_NAMES, make_zeroshot_task
from repro.eval.accuracy import evaluate_zeroshot
from repro.experiments.report import current_profile, format_table
from repro.models.checkpoints import get_language_model

TABLE7_MODELS = ("opt-6.7b-sim", "llama-7b-sim")
TABLE7_SCHEMES = ("Base", "SMX4", "MXFP4", "Tender")


@dataclass
class Table7Cell:
    task: str
    model: str
    scheme: str
    accuracy: float


def run_table7(
    models: Sequence[str] = TABLE7_MODELS,
    tasks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = TABLE7_SCHEMES,
    num_examples: Optional[int] = None,
) -> List[Table7Cell]:
    """Zero-shot accuracy of every scheme on every task and model."""
    profile = current_profile()
    tasks = list(tasks) if tasks is not None else list(ZEROSHOT_TASK_NAMES)
    num_examples = num_examples or profile.zeroshot_examples

    cells: List[Table7Cell] = []
    for model_name in models:
        weights = get_language_model(model_name)
        wiki_train, wiki_eval = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
        pile_train, _ = load_corpus("pile", vocab_size=weights.config.vocab_size).split()
        samples = calibration_samples(pile_train, 64, 8)
        runners = {}
        for scheme in schemes:
            request = SchemeRequest(
                weights=weights,
                calibration=samples,
                bits=4,
                options={"num_groups": 12, "row_chunk_size": 32},
            )
            runners[scheme] = build_runner(scheme, request)
        for task_name in tasks:
            task = make_zeroshot_task(task_name, wiki_eval, num_examples=num_examples)
            for scheme in schemes:
                cells.append(
                    Table7Cell(
                        task=task_name,
                        model=model_name,
                        scheme=scheme,
                        accuracy=evaluate_zeroshot(runners[scheme], task),
                    )
                )
    return cells


def render_table7(cells: List[Table7Cell]) -> str:
    models = []
    schemes = []
    tasks = []
    for cell in cells:
        if cell.model not in models:
            models.append(cell.model)
        if cell.scheme not in schemes:
            schemes.append(cell.scheme)
        if cell.task not in tasks:
            tasks.append(cell.task)
    headers = ["Task"] + [f"{m}/{s}" for m in models for s in schemes]
    index: Dict[tuple, float] = {(c.task, c.model, c.scheme): c.accuracy for c in cells}
    rows = []
    for task in tasks:
        row = [task]
        for model in models:
            for scheme in schemes:
                row.append(index.get((task, model, scheme), float("nan")))
        rows.append(row)
    return format_table(headers, rows, title="Table VII: zero-shot accuracy (FP32 / SMX4 / MXFP4 / Tender INT4)")
