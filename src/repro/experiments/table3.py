"""Table III: sequence-length sensitivity.

The paper evaluates OPT-6.7B at sequence lengths 2048, 256, and 32, comparing
SmoothQuant/ANT/OliVe against two Tender variants: "Tender" (activation x
activation matmuls left in FP, like the baselines) and "Tender (all)" (every
matmul quantized).  Calibration uses the longest sequence length only.  The
sequence lengths are scaled with the models (128 / 64 / 16 by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.runner import EvalSettings, EvaluationRunner
from repro.experiments.report import current_profile, format_table

TABLE3_SCHEMES = ["Base", "SmoothQuant", "ANT", "OliVe", "Tender (all)", "Tender"]
DEFAULT_SEQ_LENS = (128, 64, 16)


@dataclass
class Table3Cell:
    precision: str
    scheme: str
    seq_len: int
    dataset: str
    perplexity: float


def run_table3(
    model_name: str = "opt-6.7b-sim",
    seq_lens: Sequence[int] = DEFAULT_SEQ_LENS,
    datasets: Optional[Sequence[str]] = None,
    runner: Optional[EvaluationRunner] = None,
    num_groups: int = 12,
) -> List[Table3Cell]:
    """Compute the Table III grid for one model."""
    profile = current_profile()
    if datasets is None:
        # Smoke mode keeps the assertion-bearing wiki column only.
        datasets = ("wiki",) if profile.smoke else ("wiki", "ptb")
    runner = runner or EvaluationRunner(
        EvalSettings(max_windows=profile.max_windows, calibration_seq_len=max(seq_lens))
    )
    options = {"num_groups": num_groups, "row_chunk_size": 32}
    cells: List[Table3Cell] = []
    for seq_len in seq_lens:
        for dataset in datasets:
            cells.append(
                Table3Cell(
                    precision="FP16",
                    scheme="Base",
                    seq_len=seq_len,
                    dataset=dataset,
                    perplexity=runner.perplexity("Base", model_name, dataset, bits=16, seq_len=seq_len),
                )
            )
    for bits in (8, 4):
        for scheme in TABLE3_SCHEMES[1:]:
            quantize_attention = scheme == "Tender (all)"
            registry_scheme = "Tender" if scheme.startswith("Tender") else scheme
            for seq_len in seq_lens:
                for dataset in datasets:
                    cells.append(
                        Table3Cell(
                            precision=f"INT{bits}",
                            scheme=scheme,
                            seq_len=seq_len,
                            dataset=dataset,
                            perplexity=runner.perplexity(
                                registry_scheme,
                                model_name,
                                dataset,
                                bits=bits,
                                seq_len=seq_len,
                                quantize_attention=quantize_attention,
                                options=options,
                            ),
                        )
                    )
    return cells


def render_table3(cells: List[Table3Cell]) -> str:
    seq_lens = sorted({c.seq_len for c in cells}, reverse=True)
    datasets = sorted({c.dataset for c in cells})
    headers = ["Precision", "Scheme"] + [f"{s}/{d}" for s in seq_lens for d in datasets]
    index: Dict[tuple, float] = {
        (c.precision, c.scheme, c.seq_len, c.dataset): c.perplexity for c in cells
    }
    row_keys = []
    for cell in cells:
        key = (cell.precision, cell.scheme)
        if key not in row_keys:
            row_keys.append(key)
    rows = []
    for precision, scheme in row_keys:
        row = [precision, scheme]
        for seq_len in seq_lens:
            for dataset in datasets:
                row.append(index.get((precision, scheme, seq_len, dataset), float("nan")))
        rows.append(row)
    return format_table(headers, rows, title="Table III: perplexity across sequence lengths")
