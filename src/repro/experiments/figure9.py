"""Figure 9: perplexity vs the number of channel groups (multi-scale quantization).

The paper sweeps the number of decomposition groups on Llama-2-7B (PTB,
sequence length 256) and shows perplexity dropping rapidly as groups are
added, for both INT4 and INT8 — evidence that a single outlier/normal split is
not enough.  An alpha-sweep ablation is included as well (the paper argues for
alpha = 2; larger alphas give coarser thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.eval.runner import EvalSettings, EvaluationRunner
from repro.experiments.report import current_profile, format_table

DEFAULT_GROUP_COUNTS = (1, 2, 4, 8, 12, 16)


@dataclass
class GroupSweepPoint:
    bits: int
    num_groups: int
    alpha: int
    perplexity: float


def run_figure9(
    model_name: str = "llama-2-7b-sim",
    dataset: str = "ptb",
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    bit_widths: Sequence[int] = (4, 8),
    alphas: Sequence[int] = (2,),
    seq_len: int = 64,
    runner: Optional[EvaluationRunner] = None,
) -> List[GroupSweepPoint]:
    """Sweep the number of groups (and optionally alpha) for Tender."""
    profile = current_profile()
    runner = runner or EvaluationRunner(EvalSettings(max_windows=profile.max_windows))
    points: List[GroupSweepPoint] = []
    for bits in bit_widths:
        for alpha in alphas:
            for num_groups in group_counts:
                perplexity = runner.perplexity(
                    "Tender",
                    model_name,
                    dataset,
                    bits=bits,
                    seq_len=seq_len,
                    options={"num_groups": num_groups, "alpha": alpha, "row_chunk_size": 32},
                )
                points.append(
                    GroupSweepPoint(bits=bits, num_groups=num_groups, alpha=alpha, perplexity=perplexity)
                )
    return points


def render_figure9(points: List[GroupSweepPoint]) -> str:
    headers = ["Precision", "alpha", "Groups", "Perplexity"]
    rows = [[f"INT{p.bits}", p.alpha, p.num_groups, p.perplexity] for p in points]
    return format_table(headers, rows, title="Figure 9: perplexity vs number of channel groups")
