"""Figure 11: energy efficiency of the accelerators (normalized to ANT)."""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log
from typing import Dict, List, Sequence

from repro.accelerator.simulator import simulate_on
from repro.accelerator.workloads import model_prefill_workload
from repro.experiments.figure10 import ACCELERATORS, FIGURE10_MODELS
from repro.experiments.report import format_table


@dataclass
class EnergyRow:
    model: str
    #: Energy efficiency relative to ANT (higher is better).
    efficiency: Dict[str, float]


def run_figure11(
    models: Sequence[str] = FIGURE10_MODELS,
    seq_len: int = 2048,
    tender_num_groups: int = 8,
) -> List[EnergyRow]:
    """Relative energy efficiency (ANT energy / scheme energy) per model."""
    rows: List[EnergyRow] = []
    per_model: Dict[str, Dict[str, float]] = {}
    for model in models:
        workload = model_prefill_workload(model, seq_len=seq_len)
        energies = {
            name: simulate_on(
                name, workload, num_groups=tender_num_groups if name == "Tender" else 1
            ).energy_j
            for name in ACCELERATORS
        }
        efficiency = {name: energies["ANT"] / energies[name] for name in ACCELERATORS}
        per_model[model] = efficiency
        rows.append(EnergyRow(model=model, efficiency=efficiency))
    geomean = {
        name: exp(sum(log(per_model[model][name]) for model in models) / len(models))
        for name in ACCELERATORS
    }
    rows.append(EnergyRow(model="Geomean", efficiency=geomean))
    return rows


def render_figure11(rows: List[EnergyRow]) -> str:
    headers = ["Model"] + list(ACCELERATORS)
    body = [[row.model] + [row.efficiency[name] for name in ACCELERATORS] for row in rows]
    return format_table(headers, body, title="Figure 11: energy efficiency relative to ANT")
