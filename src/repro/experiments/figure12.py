"""Figure 12: Tender in software on GPUs — latency and MSE.

The paper measures, on an RTX 3090 (OPT-6.7B) and an A100 80GB (OPT-66B), the
latency of the query-projection GEMM of layer 16 under FP16, INT8 per-tensor,
per-row, per-channel, and Tender SW, together with the mean squared error of
each scheme's output.  Latency comes from the analytical GPU model in
:mod:`repro.gpu`; MSE is measured on the scaled-down stand-in checkpoints with
the same scheme implementations used everywhere else in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import UniformQuantExecutor
from repro.core.calibration import calibrate_tender
from repro.core.config import TenderConfig
from repro.core.executor import TenderExecutor
from repro.data.corpus import load_corpus
from repro.data.datasets import calibration_samples
from repro.eval.mse import projection_mse
from repro.experiments.report import current_profile, format_table
from repro.gpu.latency import figure12_latencies
from repro.models.checkpoints import get_language_model
from repro.models.inference import capture_activations
from repro.models.zoo import get_zoo_entry
from repro.quant.granularity import Granularity


@dataclass
class Figure12Row:
    device: str
    scheme: str
    normalized_latency: float
    mse: float


#: (device, model stand-in) pairs used by the paper.
FIGURE12_SETUPS = (("rtx3090", "opt-6.7b-sim"), ("a100", "opt-66b-sim"))


def _scheme_mse(model_name: str, bits: int = 8, num_groups: int = 8) -> Dict[str, float]:
    """MSE of each scheme on the query-projection GEMM of the middle layer."""
    weights = get_language_model(model_name)
    layer = weights.num_layers // 2
    site = f"block{layer}.attn.q_proj"
    _, eval_tokens = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    activation = capture_activations(weights, eval_tokens[:64])[site]
    weight = weights.blocks[layer].attn.wq

    pile_train, _ = load_corpus("pile", vocab_size=weights.config.vocab_size).split()
    samples = calibration_samples(pile_train, 64, 8)
    tender_config = TenderConfig(bits=bits, num_groups=num_groups, row_chunk_size=32)
    site_params = calibrate_tender(weights, samples, tender_config)
    tender = TenderExecutor(site_params, tender_config)

    def uniform(granularity: Granularity) -> float:
        executor = UniformQuantExecutor(bits=bits, activation_granularity=granularity)
        return projection_mse(executor, activation, weight)

    return {
        "FP16": 0.0,
        "INT8 (per-tensor)": uniform(Granularity.PER_TENSOR),
        "INT8 (per-row)": uniform(Granularity.PER_ROW),
        "INT8 (per-channel)": uniform(Granularity.PER_COLUMN),
        "Tender SW": projection_mse(tender, activation, weight, name=site),
    }


def run_figure12(
    setups=None,
    num_groups: int = 8,
    batch_tokens: int = 2048,
) -> List[Figure12Row]:
    """Latency (normalized to FP16) and MSE per scheme and device."""
    if setups is None:
        # Smoke mode skips the A100/OPT-66B setup (the 66B stand-in is the
        # most expensive checkpoint to train and calibrate).
        setups = FIGURE12_SETUPS[:1] if current_profile().smoke else FIGURE12_SETUPS
    rows: List[Figure12Row] = []
    for device, model_name in setups:
        entry = get_zoo_entry(model_name)
        latencies = figure12_latencies(
            m=batch_tokens, k=entry.paper_d_model, n=entry.paper_d_model,
            device_name=device, num_groups=num_groups,
        )
        mses = _scheme_mse(model_name, bits=8, num_groups=num_groups)
        for scheme, latency in latencies.items():
            rows.append(
                Figure12Row(
                    device=device,
                    scheme=scheme,
                    normalized_latency=latency.normalized_to_fp16,
                    mse=mses.get(scheme, float("nan")),
                )
            )
    return rows


def render_figure12(rows: List[Figure12Row]) -> str:
    headers = ["Device", "Scheme", "Normalized latency", "MSE"]
    body = [[r.device, r.scheme, r.normalized_latency, r.mse] for r in rows]
    return format_table(headers, body, title="Figure 12: GPU latency and MSE of Tender SW")
