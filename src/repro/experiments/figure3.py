"""Figure 3: channel-wise outlier heatmap across layers.

The paper's heatmap of attention-input tensors shows vertical stripes: the
same few channels carry large (positive or negative) values in every layer.
The reproduction returns the per-layer channel-maximum matrix plus a
consistency metric (how many of the top-magnitude channels are shared across
layers) and checks they coincide with the channels the checkpoint injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.corpus import load_corpus
from repro.models.checkpoints import get_language_model
from repro.models.inference import capture_activations
from repro.models.outliers import measure_channel_ranges


@dataclass
class Figure3Result:
    """Per-layer channel maxima and the outlier channels they reveal."""

    model: str
    #: (num_layers, d_model) per-channel absolute maxima of the attention input.
    channel_heatmap: np.ndarray
    #: Channels that rank in the top-k magnitude for every layer.
    persistent_channels: np.ndarray
    #: Channels where outliers were injected (ground truth).
    injected_channels: np.ndarray

    @property
    def overlap(self) -> float:
        """Fraction of injected channels recovered as persistent outliers."""
        if self.injected_channels.size == 0:
            return 1.0
        found = np.intersect1d(self.persistent_channels, self.injected_channels)
        return found.size / self.injected_channels.size


def run_figure3(model_name: str = "opt-6.7b-sim", seq_len: int = 64, top_k: int = 8) -> Figure3Result:
    """Build the Figure 3 heatmap data for one model."""
    weights = get_language_model(model_name)
    _, eval_tokens = load_corpus("wiki", vocab_size=weights.config.vocab_size).split()
    captured = capture_activations(weights, eval_tokens[:seq_len])
    rows = []
    per_layer_top = []
    for layer in range(weights.num_layers):
        channel_max = measure_channel_ranges(captured[f"block{layer}.attn.q_proj"])
        rows.append(channel_max)
        per_layer_top.append(set(np.argsort(channel_max)[-top_k:]))
    heatmap = np.stack(rows)
    persistent = sorted(set.intersection(*per_layer_top)) if per_layer_top else []
    return Figure3Result(
        model=model_name,
        channel_heatmap=heatmap,
        persistent_channels=np.asarray(persistent, dtype=np.int64),
        injected_channels=weights.outlier_channels,
    )


def render_figure3(result: Figure3Result) -> str:
    lines = [
        "Figure 3: channel-wise outliers across layers",
        f"model: {result.model}",
        f"layers x channels: {result.channel_heatmap.shape}",
        f"persistent outlier channels: {result.persistent_channels.tolist()}",
        f"injected outlier channels:   {result.injected_channels.tolist()}",
        f"recovered fraction: {result.overlap:.2f}",
    ]
    return "\n".join(lines)
