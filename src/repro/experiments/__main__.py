"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments table5 figure10
    python -m repro.experiments table2            # uses the quick model profile
    REPRO_FULL_EVAL=1 python -m repro.experiments table2   # full 8-model run

Each experiment prints the same rendered table that the corresponding
benchmark under ``benchmarks/`` asserts against.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from repro.experiments import (
    render_figure2,
    render_figure3,
    render_figure9,
    render_figure10,
    render_figure11,
    render_figure12,
    render_figure13,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    run_figure2,
    run_figure3,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)

#: Experiment name -> (runner, renderer, description).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, str]] = {
    "table1": (run_table1, render_table1, "perplexity vs activation quantization granularity"),
    "table2": (run_table2, render_table2, "INT8/INT4 PTQ perplexity vs SmoothQuant/ANT/OliVe"),
    "table3": (run_table3, render_table3, "sequence-length sensitivity"),
    "table4": (run_table4, render_table4, "BERT-Large GLUE accuracy"),
    "table5": (run_table5, render_table5, "accelerator area and power"),
    "table6": (run_table6, render_table6, "Tender vs MSFP block floating point"),
    "table7": (run_table7, render_table7, "zero-shot accuracy vs SMX4/MXFP4"),
    "figure2": (run_figure2, render_figure2, "activation vs weight value ranges"),
    "figure3": (run_figure3, render_figure3, "channel-wise outliers across layers"),
    "figure9": (run_figure9, render_figure9, "perplexity vs number of channel groups"),
    "figure10": (run_figure10, render_figure10, "accelerator speedup over ANT"),
    "figure11": (run_figure11, render_figure11, "accelerator energy efficiency"),
    "figure12": (run_figure12, render_figure12, "GPU latency and MSE of Tender SW"),
    "figure13": (run_figure13, render_figure13, "implicit vs explicit requantization"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from the Tender (ISCA 2024) evaluation.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names (e.g. table2 figure10)")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (_, _, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; use --list to see options")

    for name in args.experiments:
        runner, renderer, _ = EXPERIMENTS[name]
        print(renderer(runner()))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
