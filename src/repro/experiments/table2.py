"""Table II: INT8/INT4 PTQ perplexity of Tender vs prior schemes.

The paper's headline accuracy table: SmoothQuant, ANT, OliVe, and Tender on
eight language models and two datasets (WikiText-2 and PTB), at INT8 and INT4,
with activation-activation matmuls left unquantized for a fair comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.runner import EvalSettings, EvaluationRunner
from repro.experiments.report import current_profile, format_table

TABLE2_SCHEMES = ["SmoothQuant", "ANT", "OliVe", "Tender"]
TABLE2_DATASETS = ("wiki", "ptb")


@dataclass
class Table2Cell:
    """One (scheme, model, dataset, precision) perplexity."""

    precision: str
    scheme: str
    model: str
    dataset: str
    perplexity: float


def run_table2(
    models: Optional[Sequence[str]] = None,
    datasets: Sequence[str] = TABLE2_DATASETS,
    schemes: Sequence[str] = TABLE2_SCHEMES,
    runner: Optional[EvaluationRunner] = None,
    row_chunk_size: int = 32,
    num_groups: int = 12,
) -> List[Table2Cell]:
    """Compute all Table II cells (plus the FP16 baseline row)."""
    profile = current_profile()
    models = list(models) if models is not None else list(profile.models)
    runner = runner or EvaluationRunner(EvalSettings(max_windows=profile.max_windows))
    options = {"row_chunk_size": row_chunk_size, "num_groups": num_groups}

    cells: List[Table2Cell] = []
    for model in models:
        for dataset in datasets:
            cells.append(
                Table2Cell(
                    precision="FP16",
                    scheme="Base",
                    model=model,
                    dataset=dataset,
                    perplexity=runner.perplexity("Base", model, dataset, bits=16),
                )
            )
    for bits in (8, 4):
        for scheme in schemes:
            for model in models:
                for dataset in datasets:
                    cells.append(
                        Table2Cell(
                            precision=f"INT{bits}",
                            scheme=scheme,
                            model=model,
                            dataset=dataset,
                            perplexity=runner.perplexity(
                                scheme, model, dataset, bits=bits, options=options
                            ),
                        )
                    )
    return cells


def render_table2(cells: List[Table2Cell]) -> str:
    """Render in the paper's layout: one row per (precision, scheme)."""
    models = sorted({c.model for c in cells}, key=lambda m: m)
    datasets = sorted({c.dataset for c in cells})
    headers = ["Precision", "Scheme"] + [f"{m}/{d}" for m in models for d in datasets]
    index: Dict[tuple, float] = {
        (c.precision, c.scheme, c.model, c.dataset): c.perplexity for c in cells
    }
    row_keys = []
    for cell in cells:
        key = (cell.precision, cell.scheme)
        if key not in row_keys:
            row_keys.append(key)
    rows = []
    for precision, scheme in row_keys:
        row = [precision, scheme]
        for model in models:
            for dataset in datasets:
                row.append(index.get((precision, scheme, model, dataset), float("nan")))
        rows.append(row)
    return format_table(headers, rows, title="Table II: INT8/INT4 PTQ perplexity")
