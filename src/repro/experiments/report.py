"""Plain-text table rendering and experiment scale profiles.

Every experiment module returns structured rows plus a rendered table so both
the benchmark harness and the examples can print paper-style output.  The
``profile`` helpers let the benchmarks run a quick-but-representative subset
by default and the full paper configuration when ``REPRO_FULL_EVAL=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.models.zoo import LANGUAGE_MODEL_NAMES


def full_evaluation_enabled() -> bool:
    """True when the environment requests the full (slow) paper configuration."""
    return os.environ.get("REPRO_FULL_EVAL", "0") not in ("", "0", "false", "False")


def smoke_enabled() -> bool:
    """True when the environment requests the minimal CI smoke configuration.

    The benchmark harness sets ``REPRO_SMOKE=1`` (see ``benchmarks/conftest``)
    so every table/figure regenerates in seconds under the tier-1 test run;
    ``REPRO_FULL_EVAL=1`` always wins over smoke mode.
    """
    return os.environ.get("REPRO_SMOKE", "0") not in ("", "0", "false", "False")


@dataclass(frozen=True)
class ExperimentProfile:
    """How much work an experiment run should do."""

    models: Sequence[str]
    max_windows: int
    zeroshot_examples: int
    glue_examples: int
    #: Set on the smoke profile; experiments with configuration sweeps consult
    #: it to shrink the sweep itself (fewer devices, datasets, or tasks).
    smoke: bool = False


def current_profile() -> ExperimentProfile:
    """Quick profile by default; REPRO_FULL_EVAL=1 / REPRO_SMOKE=1 override."""
    if full_evaluation_enabled():
        return ExperimentProfile(
            models=tuple(LANGUAGE_MODEL_NAMES),
            max_windows=8,
            zeroshot_examples=48,
            glue_examples=256,
        )
    if smoke_enabled():
        return ExperimentProfile(
            models=("opt-6.7b-sim",),
            max_windows=2,
            zeroshot_examples=12,
            glue_examples=24,
            smoke=True,
        )
    return ExperimentProfile(
        models=("opt-6.7b-sim", "llama-2-7b-sim"),
        max_windows=4,
        zeroshot_examples=24,
        glue_examples=96,
    )


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render rows as an aligned, pipe-separated text table."""
    string_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1e4:
            return f"{cell:.2e}"
        return f"{cell:.2f}"
    return str(cell)
