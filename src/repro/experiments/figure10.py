"""Figure 10: speedup of the accelerators over ANT.

Prefill workloads (batch 1, 2048:1 input/output split) of the six large models
are simulated on the iso-area ANT, OLAccel, OliVe, and Tender configurations;
speedups are normalized to ANT, and the geometric mean is reported like the
paper's rightmost bar group.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log
from typing import Dict, List, Sequence

from repro.accelerator.simulator import speedup_table
from repro.accelerator.workloads import model_prefill_workload
from repro.experiments.report import format_table

FIGURE10_MODELS = (
    "opt-6.7b-sim",
    "opt-13b-sim",
    "opt-66b-sim",
    "llama-2-7b-sim",
    "llama-2-13b-sim",
    "llama-2-70b-sim",
)
ACCELERATORS = ("ANT", "OLAccel", "OliVe", "Tender")


@dataclass
class SpeedupRow:
    model: str
    speedups: Dict[str, float]


def run_figure10(
    models: Sequence[str] = FIGURE10_MODELS,
    seq_len: int = 2048,
    tender_num_groups: int = 8,
) -> List[SpeedupRow]:
    """Speedup of every accelerator over ANT for every model, plus the geomean."""
    workloads = {model: model_prefill_workload(model, seq_len=seq_len) for model in models}
    table = speedup_table(workloads, baseline="ANT", tender_num_groups=tender_num_groups)
    rows = [SpeedupRow(model=model, speedups=table[model]) for model in models]
    geomean = {
        name: exp(sum(log(table[model][name]) for model in models) / len(models))
        for name in ACCELERATORS
    }
    rows.append(SpeedupRow(model="Geomean", speedups=geomean))
    return rows


def render_figure10(rows: List[SpeedupRow]) -> str:
    headers = ["Model"] + list(ACCELERATORS)
    body = [[row.model] + [row.speedups[name] for name in ACCELERATORS] for row in rows]
    return format_table(headers, body, title="Figure 10: speedup over ANT")
