"""Optimizers for the small training runs used to produce model checkpoints."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.1, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity += param.grad
            param.data = param.data - self.lr * velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) used for pre-training the model zoo."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
