"""Transformer blocks and full models for training (autograd path).

Two model families are provided, matching the paper's evaluation targets:

* :class:`TransformerLM` — a decoder-only, causal language model standing in
  for the OPT / LLaMA / Llama-2 checkpoints the paper quantizes.
* :class:`TransformerClassifier` — an encoder-only model with a classification
  head standing in for BERT-Large on the GLUE benchmark (Table IV).

Both use pre-LayerNorm blocks; the activation (ReLU for OPT-like models, GELU
for Llama/BERT-like models) is configurable, following the architecture
description in Section II-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor import Tensor


@dataclass
class TransformerConfig:
    """Architecture hyperparameters for the small Transformer models."""

    vocab_size: int = 512
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    d_ff: int = 256
    max_seq_len: int = 256
    activation: str = "relu"
    causal: bool = True
    num_classes: Optional[int] = None
    seed: int = 0
    name: str = "transformer"

    def __post_init__(self) -> None:
        if self.activation not in ("relu", "gelu"):
            raise ConfigurationError(f"unsupported activation: {self.activation!r}")
        if self.d_model % self.num_heads != 0:
            raise ConfigurationError(
                f"d_model={self.d_model} must be divisible by num_heads={self.num_heads}"
            )

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads


class FeedForward(Module):
    """Two-layer feed-forward network (FC1 -> activation -> FC2)."""

    def __init__(self, d_model: int, d_ff: int, activation: str, rng: np.random.Generator) -> None:
        self.fc1 = Linear(d_model, d_ff, rng)
        self.fc2 = Linear(d_ff, d_model, rng)
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        return self.fc2(hidden)


class TransformerBlock(Module):
    """Pre-LayerNorm Transformer block: attention and feed-forward sublayers."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        self.ln_attn = LayerNorm(config.d_model)
        self.attn = MultiHeadAttention(config.d_model, config.num_heads, rng, causal=config.causal)
        self.ln_ffn = LayerNorm(config.d_model)
        self.ffn = FeedForward(config.d_model, config.d_ff, config.activation, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln_attn(x))
        x = x + self.ffn(self.ln_ffn(x))
        return x


class TransformerLM(Module):
    """Decoder-only causal language model."""

    def __init__(self, config: TransformerConfig) -> None:
        if not config.causal:
            raise ConfigurationError("TransformerLM requires a causal configuration")
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng)
        self.blocks: List[TransformerBlock] = [
            TransformerBlock(config, rng) for _ in range(config.num_layers)
        ]
        self.ln_final = LayerNorm(config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, rng, bias=False)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        _, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ConfigurationError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.arange(seq)
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        x = self.ln_final(x)
        return self.lm_head(x)


class TransformerClassifier(Module):
    """Encoder-only model with a mean-pooled classification head (BERT stand-in)."""

    def __init__(self, config: TransformerConfig) -> None:
        if config.num_classes is None:
            raise ConfigurationError("TransformerClassifier requires num_classes")
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng)
        self.blocks: List[TransformerBlock] = [
            TransformerBlock(config, rng) for _ in range(config.num_layers)
        ]
        self.ln_final = LayerNorm(config.d_model)
        self.classifier = Linear(config.d_model, config.num_classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        _, seq = tokens.shape
        positions = np.arange(seq)
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        x = self.ln_final(x)
        pooled = x.mean(axis=1)
        return self.classifier(pooled)
