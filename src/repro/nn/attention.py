"""Multi-head self-attention for the training-time (autograd) model.

The attention layer follows the notation in Section II-A of the paper:
``X_Q = X W_Q``, ``X_K = X W_K``, ``X_V = X W_V``,
``X_S = softmax(X_Q X_K^T / sqrt(d_head))`` and
``X_O = X_S X_V W_O + X`` (the residual add happens in the Transformer block).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tensor import Tensor


def causal_mask(seq_len: int) -> np.ndarray:
    """Boolean mask that is True above the diagonal (positions to hide)."""
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention with optional causal masking."""

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator, causal: bool = True) -> None:
        if d_model % num_heads != 0:
            raise ConfigurationError(f"d_model={d_model} is not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.causal = causal
        self.q_proj = Linear(d_model, d_model, rng)
        self.k_proj = Linear(d_model, d_model, rng)
        self.v_proj = Linear(d_model, d_model, rng)
        self.out_proj = Linear(d_model, d_model, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        queries = self._split_heads(self.q_proj(x), batch, seq)
        keys = self._split_heads(self.k_proj(x), batch, seq)
        values = self._split_heads(self.v_proj(x), batch, seq)

        scores = queries.matmul(keys.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))
        if self.causal:
            mask = causal_mask(seq)[None, None, :, :]
            scores = scores.masked_fill(mask, -1e9)
        attention = scores.softmax(axis=-1)
        context = attention.matmul(values)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.out_proj(context)
