"""Neural-network modules built on the repro autograd engine."""

from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.transformer import (
    FeedForward,
    TransformerBlock,
    TransformerClassifier,
    TransformerConfig,
    TransformerLM,
)

__all__ = [
    "Module",
    "Linear",
    "LayerNorm",
    "Embedding",
    "MultiHeadAttention",
    "causal_mask",
    "FeedForward",
    "TransformerBlock",
    "TransformerConfig",
    "TransformerLM",
    "TransformerClassifier",
    "Optimizer",
    "SGD",
    "Adam",
]
