"""Basic layers: linear projection, layer normalization, embedding."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, embedding_lookup, layer_norm
from repro.tensor import init as tensor_init


class Linear(Module):
    """Affine projection ``y = x @ W + b`` with ``W`` of shape (in, out).

    Storing the weight as (in_features, out_features) keeps the matmul in the
    same orientation the paper uses (activations on the left, weights on the
    right), which matters for the per-row/per-column granularity discussion.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            tensor_init.xavier_uniform((in_features, out_features), rng),
            requires_grad=True,
            name="weight",
        )
        self.bias = Tensor(tensor_init.zeros((out_features,)), requires_grad=True, name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable gain/bias."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.dim = dim
        self.eps = eps
        self.gain = Tensor(tensor_init.ones((dim,)), requires_grad=True, name="gain")
        self.bias = Tensor(tensor_init.zeros((dim,)), requires_grad=True, name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.gain, self.bias, eps=self.eps)


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(
            tensor_init.normal((num_embeddings, dim), rng),
            requires_grad=True,
            name="embedding",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)
