"""Base class for neural-network modules built on the repro autograd engine."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.tensor import Tensor


class Module:
    """Container of parameters and submodules, mirroring the familiar API.

    Parameters are :class:`Tensor` instances with ``requires_grad=True`` that
    are registered by simple attribute assignment.  Submodules are discovered
    the same way, so ``parameters()`` and ``state_dict()`` walk the whole tree.
    """

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable parameter in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs with dotted hierarchical names."""
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full_name)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full_name}.{index}")

    def zero_grad(self) -> None:
        """Reset gradients of all parameters to ``None``."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping from parameter name to a copy of its value."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(param.size for param in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
