"""Parameter initializers for the NumPy Transformer stack."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for linear projection weights."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small normal initialization used for embeddings (GPT-style)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialization for biases."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple) -> np.ndarray:
    """All-ones initialization for LayerNorm gains."""
    return np.ones(shape, dtype=np.float64)
