"""Minimal NumPy-backed autograd engine used to train and run the models."""

from repro.tensor.tensor import Tensor, concatenate, stack
from repro.tensor.ops import (
    cross_entropy,
    embedding_lookup,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    softmax,
)
from repro.tensor import init

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "cross_entropy",
    "embedding_lookup",
    "gelu",
    "layer_norm",
    "log_softmax",
    "relu",
    "softmax",
    "init",
]
