"""Functional operations built on top of :class:`repro.tensor.Tensor`.

These helpers implement the handful of composite operations used by the
Transformer stack (embedding lookup, layer normalization, cross-entropy loss)
that are more natural to express as functions than as tensor methods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at integer ``indices``.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + (embedding_dim,)``.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise ShapeError("embedding_lookup expects integer indices")
    out_data = weight.data[indices]
    out = Tensor(out_data, requires_grad=weight.requires_grad, parents=(weight,))

    def backward_fn(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        weight._accumulate_grad(full)

    out._backward_fn = backward_fn if weight.requires_grad else None
    return out


def layer_norm(
    x: Tensor,
    gain: Tensor,
    bias: Tensor,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalization over the last dimension with affine parameters.

    This is the operation the paper identifies as the source of channel-wise
    outliers: large ``gain`` values in fixed channels amplify the normalized
    activations of those channels across all tokens.
    """
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = (x.data - mean) * inv_std
    out_data = normalized * gain.data + bias.data
    requires = x.requires_grad or gain.requires_grad or bias.requires_grad
    out = Tensor(out_data, requires_grad=requires, parents=(x, gain, bias))

    def backward_fn(grad: np.ndarray) -> None:
        if gain.requires_grad:
            gain._accumulate_grad((grad * normalized).reshape(-1, gain.data.shape[-1]).sum(axis=0))
        if bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, bias.data.shape[-1]).sum(axis=0))
        if x.requires_grad:
            n = x.data.shape[-1]
            g = grad * gain.data
            term1 = g
            term2 = g.mean(axis=-1, keepdims=True)
            term3 = normalized * (g * normalized).mean(axis=-1, keepdims=True)
            x._accumulate_grad(inv_std * (term1 - term2 - term3))
            del n

    out._backward_fn = backward_fn if requires else None
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None) -> Tensor:
    """Mean token-level cross entropy between ``logits`` and integer ``targets``.

    ``logits`` has shape ``(..., vocab)`` and ``targets`` has the matching
    leading shape.  Positions equal to ``ignore_index`` do not contribute.
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)
    if flat_logits.shape[0] != flat_targets.shape[0]:
        raise ShapeError(
            f"cross_entropy shape mismatch: logits {logits.shape} vs targets {targets.shape}"
        )
    if ignore_index is None:
        valid = np.ones_like(flat_targets, dtype=bool)
    else:
        valid = flat_targets != ignore_index
    count = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = log_probs[np.arange(flat_targets.shape[0]), np.where(valid, flat_targets, 0)]
    loss_value = -(picked * valid).sum() / count
    out = Tensor(loss_value, requires_grad=logits.requires_grad, parents=(logits,))

    def backward_fn(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(log_probs)
        probs[np.arange(flat_targets.shape[0]), np.where(valid, flat_targets, 0)] -= 1.0
        probs *= valid[:, None]
        probs /= count
        logits._accumulate_grad(float(grad) * probs.reshape(logits.data.shape))

    out._backward_fn = backward_fn if logits.requires_grad else None
    return out


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on plain NumPy arrays (inference helper)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on plain NumPy arrays (inference helper)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation) on plain NumPy arrays."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU activation on plain NumPy arrays."""
    return np.maximum(x, 0.0)
