"""A small reverse-mode automatic differentiation engine on top of NumPy.

The paper evaluates quantization on Transformer language models.  Since no deep
learning framework is available offline, this module provides the minimal
autograd machinery needed to *train* small Transformer models from scratch
(``repro.models.pretrain``) and to run them in floating point as the accuracy
baseline for every quantization experiment.

The design mirrors the classic define-by-run approach: each :class:`Tensor`
stores its value (a NumPy array), an optional gradient, and a closure that
propagates gradients to its parents.  Only the operations required by the
Transformer stack are implemented, which keeps the engine small and easy to
verify with finite-difference tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShapeError

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


def _as_array(value: ArrayLike, dtype: np.dtype = np.float64) -> np.ndarray:
    """Convert ``value`` to a NumPy array of ``dtype`` without copying if possible."""
    if isinstance(value, np.ndarray):
        return value.astype(dtype, copy=False)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    NumPy broadcasting expands leading dimensions and size-1 dimensions; the
    gradient of a broadcast operand is the sum of the output gradient over the
    expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        The tensor value.  Stored as ``float64`` for numerical robustness of
        the small training runs used in this reproduction.
    requires_grad:
        Whether gradients should flow into this tensor during ``backward``.
    parents:
        Tensors this value was computed from (used for topological ordering).
    backward_fn:
        Closure that receives the gradient of the loss w.r.t. this tensor and
        accumulates gradients into the parents.
    name:
        Optional human-readable label used in error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Optional[Iterable["Tensor"]] = None,
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = tuple(parents) if parents else ()
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones for scalar outputs (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic operators (elementwise, broadcasting)
    # ------------------------------------------------------------------
    def _binary(
        self,
        other: Union["Tensor", ArrayLike],
        forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
        backward_self: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        backward_other: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = forward(self.data, other_t.data)
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires, parents=(self, other_t))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(backward_self(grad, self.data, other_t.data))
            if other_t.requires_grad:
                other_t._accumulate_grad(backward_other(grad, self.data, other_t.data))

        out._backward_fn = backward_fn if requires else None
        return out

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b: g,
            lambda g, a, b: g,
        )

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b: g,
            lambda g, a, b: -g,
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b: g * b,
            lambda g, a, b: g * a,
        )

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a / b,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self.__mul__(-1.0)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data**exponent
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1.0))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Batched matrix multiplication with broadcasting over leading dims."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires, parents=(self, other_t))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                self._accumulate_grad(_unbroadcast(grad_self, self.data.shape))
            if other_t.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other_t._accumulate_grad(_unbroadcast(grad_other, other_t.data.shape))

        out._backward_fn = backward_fn if requires else None
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(self.data.shape))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = Tensor(np.transpose(self.data, axes), requires_grad=self.requires_grad, parents=(self,))
        inverse = np.argsort(axes)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(np.transpose(grad, inverse))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(self.data[index], requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate_grad(full)

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_full = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    grad_full = np.expand_dims(grad_full, ax)
            self._accumulate_grad(np.broadcast_to(grad_full, self.data.shape))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            grad_full = grad if (axis is None or keepdims) else np.expand_dims(grad, axis)
            self._accumulate_grad(mask * grad_full)

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * out_data)

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def relu(self) -> "Tensor":
        out = Tensor(np.maximum(self.data, 0.0), requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * (self.data > 0.0))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        tanh = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            sech2 = 1.0 - tanh**2
            d_inner = c * (1.0 + 3 * 0.044715 * x**2)
            local = 0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner
            self._accumulate_grad(grad * local)

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - out_data**2))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate_grad(out_data * (grad - dot))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Masking helper used by causal attention
    # ------------------------------------------------------------------
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor where positions with ``mask`` True are set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, parents=(self,))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(np.where(mask, 0.0, grad))

        out._backward_fn = backward_fn if self.requires_grad else None
        return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, parents=tuple(tensors))
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate_grad(grad[tuple(slicer)])

    out._backward_fn = backward_fn if requires else None
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, parents=tuple(tensors))

    def backward_fn(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate_grad(np.squeeze(piece, axis=axis))

    out._backward_fn = backward_fn if requires else None
    return out
