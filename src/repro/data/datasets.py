"""Dataset utilities: language-modelling batches and calibration sampling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class LMBatch:
    """A batch of language-modelling inputs and next-token targets."""

    inputs: np.ndarray  # (batch, seq)
    targets: np.ndarray  # (batch, seq)


class LanguageModelingDataset:
    """Chops a token stream into fixed-length (input, target) windows."""

    def __init__(self, tokens: np.ndarray, seq_len: int) -> None:
        if seq_len < 2:
            raise ConfigurationError("seq_len must be at least 2")
        tokens = np.asarray(tokens, dtype=np.int64)
        num_windows = (len(tokens) - 1) // seq_len
        if num_windows < 1:
            raise ConfigurationError(
                f"token stream of length {len(tokens)} too short for seq_len={seq_len}"
            )
        self.seq_len = seq_len
        usable = tokens[: num_windows * seq_len + 1]
        self.inputs = usable[:-1].reshape(num_windows, seq_len)
        self.targets = usable[1:].reshape(num_windows, seq_len)

    def __len__(self) -> int:
        return self.inputs.shape[0]

    def window(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def batches(self, batch_size: int, shuffle: bool = False, seed: int = 0) -> Iterator[LMBatch]:
        """Yield batches; drops the last partial batch for shape stability."""
        order = np.arange(len(self))
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(self) - batch_size + 1, batch_size):
            idx = order[start : start + batch_size]
            yield LMBatch(inputs=self.inputs[idx], targets=self.targets[idx])


def calibration_samples(tokens: np.ndarray, seq_len: int, num_samples: int, seed: int = 7) -> List[np.ndarray]:
    """Draw ``num_samples`` random windows used to calibrate scale factors.

    Mirrors the paper's use of 128 samples from the Pile validation set
    (Section V-A); the number of samples is scaled down along with the models.
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    max_start = len(tokens) - seq_len - 1
    if max_start <= 0:
        raise ConfigurationError("not enough tokens for the requested calibration windows")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, max_start, size=num_samples)
    return [tokens[start : start + seq_len].copy() for start in starts]
