"""Synthetic zero-shot multiple-choice tasks (Table VII stand-in).

The paper's Table VII evaluates OPT-6.7B and LLaMA-7B on lm-evaluation-harness
zero-shot tasks (Hellaswag, Winogrande, ARC, Lambada, ...).  Those tasks score
a language model by comparing the likelihood it assigns to candidate
continuations of a context.  This module builds synthetic tasks with the same
scoring rule: each example consists of a context sampled from the corpus the
model was trained on, a "correct" continuation that actually follows the
context in the corpus, and distractor continuations sampled from elsewhere.
An unquantized model prefers the true continuation well above chance, and
activation-quantization error erodes that margin — which is exactly the effect
Table VII measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from zlib import crc32
from typing import List

import numpy as np

from repro.errors import ConfigurationError

#: Task names mirror Table VII of the paper.
ZEROSHOT_TASK_NAMES = [
    "Hellaswag",
    "WIC",
    "Anli-r2",
    "Winogrande",
    "ARC easy",
    "ARC challenge",
    "Lambada",
    "College CS",
    "Int. law",
    "Jurisprudence",
]

#: Per-task difficulty knobs: (context length, continuation length, #choices).
#: Longer continuations and fewer choices make a task easier, mirroring the
#: wide accuracy spread across tasks in the paper.
_TASK_SHAPES = {
    "Hellaswag": (24, 8, 4),
    "WIC": (16, 2, 2),
    "Anli-r2": (20, 2, 3),
    "Winogrande": (20, 4, 2),
    "ARC easy": (16, 6, 4),
    "ARC challenge": (24, 3, 4),
    "Lambada": (28, 4, 2),
    "College CS": (24, 2, 4),
    "Int. law": (24, 2, 4),
    "Jurisprudence": (24, 2, 4),
}


@dataclass
class MultipleChoiceExample:
    """One zero-shot example: a context and candidate continuations."""

    context: np.ndarray  # (context_len,)
    choices: List[np.ndarray]  # each (continuation_len,)
    answer: int


@dataclass
class ZeroShotTask:
    """A named collection of multiple-choice examples."""

    name: str
    examples: List[MultipleChoiceExample]

    @property
    def num_choices(self) -> int:
        return len(self.examples[0].choices) if self.examples else 0


def make_zeroshot_task(
    name: str,
    tokens: np.ndarray,
    num_examples: int = 64,
    seed: int = 0,
) -> ZeroShotTask:
    """Build one task from a held-out token stream of the training corpus."""
    if name not in _TASK_SHAPES:
        raise ConfigurationError(
            f"unknown zero-shot task {name!r}; expected one of {ZEROSHOT_TASK_NAMES}"
        )
    context_len, continuation_len, num_choices = _TASK_SHAPES[name]
    tokens = np.asarray(tokens, dtype=np.int64)
    window = context_len + continuation_len
    max_start = len(tokens) - window - 1
    if max_start <= num_examples:
        raise ConfigurationError("token stream too short for the requested zero-shot task")
    rng = np.random.default_rng(seed + crc32(name.encode()) % 10_000)
    starts = rng.choice(max_start, size=num_examples, replace=False)
    examples: List[MultipleChoiceExample] = []
    for start in starts:
        context = tokens[start : start + context_len].copy()
        true_continuation = tokens[start + context_len : start + window].copy()
        choices = [true_continuation]
        while len(choices) < num_choices:
            other = int(rng.integers(0, max_start))
            distractor = tokens[other + context_len : other + window].copy()
            choices.append(distractor)
        order = rng.permutation(num_choices)
        shuffled = [choices[i] for i in order]
        answer = int(np.where(order == 0)[0][0])
        examples.append(MultipleChoiceExample(context=context, choices=shuffled, answer=answer))
    return ZeroShotTask(name=name, examples=examples)


def make_all_zeroshot_tasks(tokens: np.ndarray, num_examples: int = 64, seed: int = 0) -> List[ZeroShotTask]:
    """Build every zero-shot task used in the Table VII reproduction."""
    return [make_zeroshot_task(name, tokens, num_examples, seed) for name in ZEROSHOT_TASK_NAMES]
