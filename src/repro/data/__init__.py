"""Synthetic datasets: LM corpora, GLUE-like tasks, and zero-shot tasks."""

from repro.data.corpus import (
    CORPUS_PRESETS,
    CorpusConfig,
    EOS_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    SyntheticCorpus,
    UNK_TOKEN,
    build_vocabulary,
    load_corpus,
)
from repro.data.datasets import LanguageModelingDataset, LMBatch, calibration_samples
from repro.data.classification import (
    GLUE_TASK_NAMES,
    ClassificationTask,
    make_all_glue_tasks,
    make_glue_task,
)
from repro.data.zeroshot import (
    ZEROSHOT_TASK_NAMES,
    MultipleChoiceExample,
    ZeroShotTask,
    make_all_zeroshot_tasks,
    make_zeroshot_task,
)

__all__ = [
    "CORPUS_PRESETS",
    "CorpusConfig",
    "SyntheticCorpus",
    "build_vocabulary",
    "load_corpus",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "EOS_TOKEN",
    "SPECIAL_TOKENS",
    "LanguageModelingDataset",
    "LMBatch",
    "calibration_samples",
    "GLUE_TASK_NAMES",
    "ClassificationTask",
    "make_glue_task",
    "make_all_glue_tasks",
    "ZEROSHOT_TASK_NAMES",
    "ZeroShotTask",
    "MultipleChoiceExample",
    "make_zeroshot_task",
    "make_all_zeroshot_tasks",
]
