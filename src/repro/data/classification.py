"""Synthetic classification tasks standing in for the GLUE benchmark.

Table IV of the paper reports accuracy of BERT-Large on six GLUE tasks (CoLA,
SST-2, MRPC, STS-B, QQP, QNLI) under INT8/INT4 activation quantization.  The
tasks here preserve the property that matters for that comparison: an
encoder-only Transformer that has genuinely learned the task, so that
quantization error in its activations degrades accuracy in a measurable,
scheme-dependent way.

Each task embeds a simple latent rule over token sequences (keyword presence,
keyword ordering, or sequence-pair overlap), which a small Transformer can
learn to high accuracy in a few hundred optimizer steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from zlib import crc32
from typing import Dict, List, Tuple

import numpy as np

from repro.data.corpus import SPECIAL_TOKENS
from repro.errors import ConfigurationError

#: Names mirror the GLUE tasks reported in Table IV of the paper.
GLUE_TASK_NAMES = ["CoLA", "SST-2", "MRPC", "STS-B", "QQP", "QNLI"]


@dataclass
class ClassificationTask:
    """A generated classification dataset."""

    name: str
    train_inputs: np.ndarray
    train_labels: np.ndarray
    eval_inputs: np.ndarray
    eval_labels: np.ndarray
    num_classes: int


def _keyword_task(
    rng: np.random.Generator,
    vocab_size: int,
    seq_len: int,
    num_train: int,
    num_eval: int,
    num_keywords: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Label 1 iff any of a fixed keyword set appears in the sequence."""
    low = len(SPECIAL_TOKENS)
    keywords = rng.choice(np.arange(low, vocab_size), size=num_keywords, replace=False)

    def make(count: int) -> Tuple[np.ndarray, np.ndarray]:
        inputs = rng.integers(low, vocab_size, size=(count, seq_len))
        # Remove accidental keyword hits, then plant keywords in half the rows.
        for keyword in keywords:
            inputs[inputs == keyword] = low
        labels = rng.integers(0, 2, size=count)
        for row in range(count):
            if labels[row] == 1:
                position = rng.integers(0, seq_len)
                inputs[row, position] = rng.choice(keywords)
        return inputs, labels

    train_inputs, train_labels = make(num_train)
    eval_inputs, eval_labels = make(num_eval)
    return train_inputs, train_labels, eval_inputs, eval_labels


def _order_task(
    rng: np.random.Generator,
    vocab_size: int,
    seq_len: int,
    num_train: int,
    num_eval: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Label depends on whether token A appears before token B."""
    low = len(SPECIAL_TOKENS)
    token_a, token_b = rng.choice(np.arange(low, vocab_size), size=2, replace=False)

    def make(count: int) -> Tuple[np.ndarray, np.ndarray]:
        inputs = rng.integers(low, vocab_size, size=(count, seq_len))
        inputs[inputs == token_a] = low
        inputs[inputs == token_b] = low
        labels = rng.integers(0, 2, size=count)
        for row in range(count):
            first, second = sorted(rng.choice(seq_len, size=2, replace=False))
            if labels[row] == 1:
                inputs[row, first], inputs[row, second] = token_a, token_b
            else:
                inputs[row, first], inputs[row, second] = token_b, token_a
        return inputs, labels

    train_inputs, train_labels = make(num_train)
    eval_inputs, eval_labels = make(num_eval)
    return train_inputs, train_labels, eval_inputs, eval_labels


def _pair_overlap_task(
    rng: np.random.Generator,
    vocab_size: int,
    seq_len: int,
    num_train: int,
    num_eval: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sentence-pair style task: label 1 iff the two halves share many tokens."""
    low = len(SPECIAL_TOKENS)
    half = seq_len // 2

    def make(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 2, size=count)
        inputs = np.empty((count, seq_len), dtype=np.int64)
        for row in range(count):
            first = rng.integers(low, vocab_size, size=half)
            if labels[row] == 1:
                second = first.copy()
                flips = rng.choice(half, size=max(1, half // 8), replace=False)
                second[flips] = rng.integers(low, vocab_size, size=len(flips))
            else:
                second = rng.integers(low, vocab_size, size=half)
            inputs[row, :half] = first
            inputs[row, half : 2 * half] = second
            if seq_len > 2 * half:
                inputs[row, 2 * half :] = low
        return inputs, labels

    train_inputs, train_labels = make(num_train)
    eval_inputs, eval_labels = make(num_eval)
    return train_inputs, train_labels, eval_inputs, eval_labels


#: Task name -> generator kind.  The mapping loosely mirrors the character of
#: the real GLUE tasks (single-sentence acceptability/sentiment vs pair tasks).
_TASK_KINDS: Dict[str, str] = {
    "CoLA": "order",
    "SST-2": "keyword",
    "MRPC": "pair",
    "STS-B": "pair",
    "QQP": "pair",
    "QNLI": "keyword",
}


def make_glue_task(
    name: str,
    vocab_size: int = 512,
    seq_len: int = 32,
    num_train: int = 512,
    num_eval: int = 256,
    seed: int = 0,
) -> ClassificationTask:
    """Generate one synthetic GLUE-like task by name."""
    if name not in _TASK_KINDS:
        raise ConfigurationError(f"unknown GLUE-like task {name!r}; expected one of {GLUE_TASK_NAMES}")
    rng = np.random.default_rng(seed + crc32(name.encode()) % 10_000)
    kind = _TASK_KINDS[name]
    if kind == "keyword":
        parts = _keyword_task(rng, vocab_size, seq_len, num_train, num_eval, num_keywords=6)
    elif kind == "order":
        parts = _order_task(rng, vocab_size, seq_len, num_train, num_eval)
    else:
        parts = _pair_overlap_task(rng, vocab_size, seq_len, num_train, num_eval)
    train_inputs, train_labels, eval_inputs, eval_labels = parts
    return ClassificationTask(
        name=name,
        train_inputs=train_inputs,
        train_labels=train_labels,
        eval_inputs=eval_inputs,
        eval_labels=eval_labels,
        num_classes=2,
    )


def make_all_glue_tasks(
    vocab_size: int = 512,
    seq_len: int = 32,
    num_train: int = 512,
    num_eval: int = 256,
    seed: int = 0,
) -> List[ClassificationTask]:
    """Generate every GLUE-like task used in the Table IV reproduction."""
    return [
        make_glue_task(name, vocab_size, seq_len, num_train, num_eval, seed)
        for name in GLUE_TASK_NAMES
    ]
