"""Synthetic text corpora standing in for WikiText-2, PTB, and the Pile.

The paper evaluates language-modelling perplexity on WikiText-2 and PTB and
calibrates quantization parameters on 128 samples from the Pile.  Those
datasets cannot be downloaded offline, so this module generates synthetic
corpora from a fixed vocabulary with a second-order Markov process.  The three
named corpora share the same vocabulary but use different transition
structure, which mirrors the role the real datasets play in the paper:

* the model is trained on a mixture, so it has genuinely learned structure;
* ``wiki`` and ``ptb`` evaluation splits differ slightly in difficulty
  (PTB perplexities in the paper are consistently higher than WikiText-2);
* the ``pile`` split is only used for calibration and is drawn from the same
  distribution family, like real calibration data.

Because the corpora are deterministic functions of a seed, every experiment in
``repro.experiments`` is reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Word stems used to build the synthetic vocabulary.  Kept small and
#: pronounceable so generated text is recognisably "language like" in examples.
_STEMS = [
    "star", "light", "night", "moon", "river", "stone", "wind", "cloud", "tree",
    "fire", "rain", "snow", "storm", "field", "road", "city", "house", "door",
    "bird", "wolf", "sea", "wave", "sand", "hill", "lake", "leaf", "root",
    "iron", "gold", "glass", "paper", "song", "voice", "word", "tale", "dream",
    "shadow", "dawn", "dusk", "frost", "ember", "spark", "mist", "valley",
    "meadow", "harbor", "garden", "bridge", "tower", "market",
]
_SUFFIXES = ["", "s", "ing", "ed", "er", "ly", "ful", "less"]
_FUNCTION_WORDS = [
    "the", "a", "of", "in", "on", "at", "and", "or", "but", "with", "to",
    "from", "by", "for", "as", "is", "was", "are", "were", "it", "they",
    "he", "she", "we", "you", "that", "this", "then", "now", "here", "there",
]

#: Special tokens.
PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
EOS_TOKEN = "<eos>"
SPECIAL_TOKENS = [PAD_TOKEN, UNK_TOKEN, EOS_TOKEN]


def build_vocabulary(vocab_size: int = 512) -> List[str]:
    """Construct a deterministic vocabulary of ``vocab_size`` word types."""
    if vocab_size < len(SPECIAL_TOKENS) + len(_FUNCTION_WORDS) + 10:
        raise ConfigurationError(f"vocab_size={vocab_size} is too small")
    words: List[str] = list(SPECIAL_TOKENS) + list(_FUNCTION_WORDS)
    for stem in _STEMS:
        for suffix in _SUFFIXES:
            word = stem + suffix
            if word not in words:
                words.append(word)
            if len(words) >= vocab_size:
                return words[:vocab_size]
    # If still short, append numbered filler types.
    index = 0
    while len(words) < vocab_size:
        words.append(f"tok{index}")
        index += 1
    return words[:vocab_size]


@dataclass
class CorpusConfig:
    """Configuration of a synthetic corpus."""

    name: str = "wiki"
    vocab_size: int = 512
    num_tokens: int = 50_000
    seed: int = 1234
    #: Dirichlet concentration controlling how peaked the bigram distribution
    #: is.  Lower values give more predictable text (lower perplexity).
    concentration: float = 0.08
    #: Number of candidate successor words per context (sparsity of the
    #: transition matrix); smaller means easier to predict.
    branching: int = 24


#: Per-corpus presets.  PTB-like text is made harder (higher branching) than
#: wiki-like text so the FP baseline perplexity ordering matches the paper.
CORPUS_PRESETS: Dict[str, CorpusConfig] = {
    "wiki": CorpusConfig(name="wiki", seed=1234, concentration=0.08, branching=20),
    "ptb": CorpusConfig(name="ptb", seed=4321, concentration=0.15, branching=32),
    "pile": CorpusConfig(name="pile", seed=9999, concentration=0.12, branching=26),
}


class SyntheticCorpus:
    """A deterministic Markov-chain corpus over a shared vocabulary."""

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        self.vocabulary = build_vocabulary(config.vocab_size)
        self._rng = np.random.default_rng(config.seed)
        self._successors, self._probabilities = self._build_transitions()
        self.tokens = self._generate(config.num_tokens)

    # ------------------------------------------------------------------
    def _build_transitions(self):
        """Build a sparse first-order transition table over token ids."""
        vocab = self.config.vocab_size
        usable = np.arange(len(SPECIAL_TOKENS), vocab)
        successors = np.zeros((vocab, self.config.branching), dtype=np.int64)
        probabilities = np.zeros((vocab, self.config.branching), dtype=np.float64)
        for token in range(vocab):
            choices = self._rng.choice(usable, size=self.config.branching, replace=False)
            weights = self._rng.dirichlet(np.full(self.config.branching, self.config.concentration) + 1e-3)
            successors[token] = choices
            probabilities[token] = weights
        return successors, probabilities

    def _generate(self, num_tokens: int) -> np.ndarray:
        """Sample ``num_tokens`` token ids from the Markov chain."""
        eos_id = SPECIAL_TOKENS.index(EOS_TOKEN)
        tokens = np.empty(num_tokens, dtype=np.int64)
        current = int(self._rng.integers(len(SPECIAL_TOKENS), self.config.vocab_size))
        sentence_length = 0
        for position in range(num_tokens):
            tokens[position] = current
            sentence_length += 1
            if sentence_length >= 12 and self._rng.random() < 0.15:
                current = eos_id
                sentence_length = 0
            if current == eos_id:
                current = int(self._rng.integers(len(SPECIAL_TOKENS), self.config.vocab_size))
                continue
            row = self._successors[current]
            probs = self._probabilities[current]
            current = int(self._rng.choice(row, p=probs))
        return tokens

    # ------------------------------------------------------------------
    def split(self, train_fraction: float = 0.9):
        """Split the corpus token stream into train and evaluation arrays."""
        cut = int(len(self.tokens) * train_fraction)
        return self.tokens[:cut], self.tokens[cut:]

    def decode(self, token_ids: Sequence[int]) -> str:
        """Turn token ids back into whitespace-separated text."""
        return " ".join(self.vocabulary[int(t)] for t in token_ids)


def load_corpus(name: str, vocab_size: int = 512, num_tokens: int = 50_000) -> SyntheticCorpus:
    """Load a named synthetic corpus ('wiki', 'ptb', or 'pile')."""
    if name not in CORPUS_PRESETS:
        raise ConfigurationError(f"unknown corpus {name!r}; expected one of {sorted(CORPUS_PRESETS)}")
    preset = CORPUS_PRESETS[name]
    config = CorpusConfig(
        name=preset.name,
        vocab_size=vocab_size,
        num_tokens=num_tokens,
        seed=preset.seed,
        concentration=preset.concentration,
        branching=preset.branching,
    )
    return SyntheticCorpus(config)
