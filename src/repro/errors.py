"""Exception types shared across the repro library.

Having a small hierarchy of library-specific exceptions lets callers
distinguish configuration mistakes (bad arguments, impossible shapes) from
numerical problems detected at runtime (overflow in an integer pipeline,
invalid calibration state) without catching built-in exceptions too broadly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an operation."""


class CalibrationError(ReproError):
    """Raised when calibration state is missing or inconsistent."""


class QuantizationError(ReproError):
    """Raised when a quantization step cannot be performed safely."""


class SimulationError(ReproError):
    """Raised by the accelerator simulator for inconsistent hardware state."""


class ResourceExhaustedError(ReproError):
    """Raised when a bounded runtime resource pool (e.g. KV blocks) runs dry."""


class ReplicaFailureError(ReproError):
    """Raised when a serving replica crashes (or is chaos-killed) mid-iteration."""
