"""Exception types shared across the repro library.

Having a small hierarchy of library-specific exceptions lets callers
distinguish configuration mistakes (bad arguments, impossible shapes) from
numerical problems detected at runtime (overflow in an integer pipeline,
invalid calibration state) without catching built-in exceptions too broadly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an operation."""


class CalibrationError(ReproError):
    """Raised when calibration state is missing or inconsistent."""


class QuantizationError(ReproError):
    """Raised when a quantization step cannot be performed safely."""


class SimulationError(ReproError):
    """Raised by the accelerator simulator for inconsistent hardware state."""


class ResourceExhaustedError(ReproError):
    """Raised when a bounded runtime resource pool (e.g. KV blocks) runs dry."""


class ReplicaFailureError(ReproError):
    """Raised when a serving replica crashes (or is chaos-killed) mid-iteration."""


class ShardFailureError(ReplicaFailureError):
    """Raised when a tensor-parallel shard dies, taking its whole group down.

    Subclasses :class:`ReplicaFailureError` on purpose: a shard group is one
    fault unit to the replica pool, so a dead shard rides the same
    checkpoint-and-recover sweep as a whole-replica crash.
    """


class CollectiveTransportError(ReplicaFailureError):
    """Raised when a collective call cannot complete within its retry budget.

    Dropped or endlessly-corrupted messages exhaust the bounded retries of
    :class:`repro.serve.collective.CollectiveGroup`; the group then counts as
    failed and the pool recovers its in-flight requests elsewhere.
    """
