"""Tensor-parallel sharding: a runner-shaped façade over N model shards.

:class:`ShardedRunner` partitions one Transformer across ``num_shards``
simulated workers the way Megatron-style serving stacks do — **column
parallel**: every projection's *output* features are split into contiguous
per-shard column ranges (Q/K/V by attention-head blocks, FC1 by ``d_ff``
columns, output/FC2/LM-head by balanced column ranges), each shard computes
its slice against the full-width activation, and the slices meet at explicit
``all_gather`` collectives on a :class:`~repro.serve.collective.CollectiveGroup`.
Attention itself runs head-parallel: each shard attends only over its own
contiguous head range (``repro.core.kernels.paged_attention`` is independent
per head), and the per-shard contexts gather back to full width before the
output projection.

**Where Tender's calibration lives** (the decomposition decision, also in
architecture.md): every shard holds a *full replica* of the per-chunk
calibration tables and Index-Buffer channel orders, because column-parallel
sharding never splits the **channel (reduction) axis** those tables index —
a shard sees all ``d_model`` (or ``d_ff``) input channels and only slices
output columns.  Per-column weight scales, permuted-row weight caches, and
``bias @ W`` compensations are re-derived per shard from the shared tables
and the shard's own column slice, which equals slicing the full-width result
column-for-column.  The alternative — row-parallel splits meeting at
``all_reduce`` — would partition the channel axis, split Tender's per-chunk
scale groups across shards, and break bit-exactness at the floating-point
partial-sum reduction; that is why the runner meets at gathers and
``all_reduce`` stays a transport-level primitive (priced by the analytic
model, exercised by the transport tests).

The façade is a drop-in for :class:`~repro.models.inference.TransformerRunner`
(it *is* one, by subclass): ``prefill`` / ``verify`` / ``decode_step`` /
``logits`` keep their exact contracts and — the house gate — produce
bit-identical tokens and logits to the solo runner for Tender implicit and
explicit requantization, including under injected collective faults, because
every surviving collective delivers pristine payloads (see
``repro.serve.collective``).  A shard death or exhausted retry budget raises
a ``ReplicaFailureError`` subclass mid-step, which the replica pool treats
as a whole-replica crash: in-flight requests are checkpointed and replayed
onto a rebuilt group.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernels import paged_attention
from repro.errors import ConfigurationError
from repro.models.inference import (
    KVCacheLike,
    MatmulExecutor,
    TransformerRunner,
    dense_cached_attention,
    fused_attention_ready,
    neutralize_padding,
)
from repro.serve.collective import CollectiveGroup
from repro.tensor.ops import softmax

__all__ = ["ShardedRunner", "partition_bounds"]


def partition_bounds(total: int, num_parts: int) -> List[Tuple[int, int]]:
    """Contiguous balanced ``[start, stop)`` ranges splitting ``total`` columns.

    The first ``total % num_parts`` parts take one extra column, so any width
    splits without padding; concatenating the slices in part order always
    reassembles the original tensor exactly.
    """
    if num_parts < 1:
        raise ConfigurationError("cannot partition into fewer than one part")
    base, remainder = divmod(total, num_parts)
    bounds = []
    start = 0
    for part in range(num_parts):
        stop = start + base + (1 if part < remainder else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _clone_executor(executor: MatmulExecutor) -> MatmulExecutor:
    """A fresh executor of the same scheme for one shard.

    Tender-style executors (anything carrying ``site_params``) are rebuilt
    around the *shared* calibration tables with private weight/bias caches —
    sharing one executor across shards would collide its per-site caches,
    which are keyed by matmul name while each shard passes a different
    column slice.  Stateless executors are rebuilt via their no-argument
    constructor.
    """
    if hasattr(executor, "site_params"):
        return type(executor)(
            executor.site_params,
            executor.config,
            implicit=executor.implicit,
            vectorized_attention=executor.vectorized_attention,
            fast_kernels=executor.fast_kernels,
        )
    try:
        return type(executor)()
    except TypeError as error:  # pragma: no cover - defensive
        raise ConfigurationError(
            f"cannot clone executor {type(executor).__name__} per shard; "
            "pass executor_factory explicitly"
        ) from error


class ShardedRunner(TransformerRunner):
    """Column-parallel tensor sharding behind the ``TransformerRunner`` surface.

    Parameters
    ----------
    runner:
        The solo runner to shard.  Its weights stay shared (read-only); its
        executor is cloned per shard (see ``executor_factory``).
    num_shards:
        Number of shards; must satisfy ``1 <= num_shards <= num_heads`` so
        every shard owns at least one attention head.
    group:
        The :class:`~repro.serve.collective.CollectiveGroup` the shards meet
        on; a fresh fault-free group of matching size by default.
    executor_factory:
        Optional ``shard_id -> executor`` override; the default clones the
        solo runner's executor (Tender executors share ``site_params`` —
        the replicated calibration tables — with private caches).
    """

    def __init__(
        self,
        runner: TransformerRunner,
        num_shards: int,
        *,
        group: Optional[CollectiveGroup] = None,
        executor_factory: Optional[Callable[[int], MatmulExecutor]] = None,
    ) -> None:
        config = runner.config
        if not 1 <= num_shards <= config.num_heads:
            raise ConfigurationError(
                f"num_shards must be in [1, num_heads={config.num_heads}], "
                f"got {num_shards}"
            )
        if group is not None and group.num_shards != num_shards:
            raise ConfigurationError(
                f"collective group spans {group.num_shards} shards, "
                f"runner wants {num_shards}"
            )
        super().__init__(runner.weights, runner.executor)
        self.fused_paged_attention = runner.fused_paged_attention
        self.num_shards = num_shards
        self.group = group if group is not None else CollectiveGroup(num_shards)
        if executor_factory is None:
            executor_factory = lambda shard_id: _clone_executor(runner.executor)  # noqa: E731
        #: One executor per shard: same scheme and calibration, private caches.
        self.executors: List[MatmulExecutor] = [
            executor_factory(shard_id) for shard_id in range(num_shards)
        ]
        #: Contiguous head ranges per shard (attention head parallelism).
        self.head_bounds = partition_bounds(config.num_heads, num_shards)
        self._column_bounds: Dict[int, List[Tuple[int, int]]] = {}

    @property
    def healthy(self) -> bool:
        """Whether every shard (and the transport) is still serviceable."""
        return self.group.healthy

    # ------------------------------------------------------------------
    # Column-parallel projection
    # ------------------------------------------------------------------
    def _bounds_for(self, width: int) -> List[Tuple[int, int]]:
        """Balanced per-shard column ranges for an output ``width``, cached."""
        bounds = self._column_bounds.get(width)
        if bounds is None:
            bounds = partition_bounds(width, self.num_shards)
            self._column_bounds[width] = bounds
        return bounds

    def _shard_project(
        self,
        shard_id: int,
        name: str,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One shard's slice of a projection: full-width input, sliced columns."""
        executor = self.executors[shard_id]
        leading = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1])
        if positions is not None and getattr(executor, "uses_positions", False):
            out = executor.project(name, flat, weight, bias, positions=positions.reshape(-1))
        else:
            out = executor.project(name, flat, weight, bias)
        return out.reshape(*leading, weight.shape[-1])

    def _project(
        self,
        name: str,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Column-parallel projection meeting at an ``all_gather``.

        Every shard computes ``x @ W[:, a_s:b_s] (+ bias[a_s:b_s])`` over the
        full-width activation; the group gathers the column slices back in
        shard order.  Because the reduction (channel) axis is never split,
        each output column is computed by exactly one shard with exactly the
        solo runner's operands — the concatenation is bit-identical to the
        unsharded projection.
        """
        parts = [
            self._shard_project(
                shard_id,
                name,
                x,
                weight[:, start:stop],
                None if bias is None else bias[start:stop],
                positions,
            )
            for shard_id, (start, stop) in enumerate(self._bounds_for(weight.shape[-1]))
        ]
        return self.group.all_gather(parts, axis=-1)

    # ------------------------------------------------------------------
    # Head-parallel attention
    # ------------------------------------------------------------------
    def _qkv_shards(
        self,
        prefix: str,
        x: np.ndarray,
        block_attn,
        positions: Optional[np.ndarray],
        valid: Optional[np.ndarray],
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Per-shard Q/K/V column slices aligned to each shard's head range."""
        d_head = self.config.d_head
        q_parts: List[np.ndarray] = []
        k_parts: List[np.ndarray] = []
        v_parts: List[np.ndarray] = []
        for shard_id, (h0, h1) in enumerate(self.head_bounds):
            c0, c1 = h0 * d_head, h1 * d_head
            queries = self._shard_project(
                shard_id, f"{prefix}.q_proj", x, block_attn.wq[:, c0:c1], block_attn.bq[c0:c1], positions
            )
            keys = self._shard_project(
                shard_id, f"{prefix}.k_proj", x, block_attn.wk[:, c0:c1], block_attn.bk[c0:c1], positions
            )
            values = self._shard_project(
                shard_id, f"{prefix}.v_proj", x, block_attn.wv[:, c0:c1], block_attn.bv[c0:c1], positions
            )
            queries, keys, values = neutralize_padding(queries, keys, values, valid)
            q_parts.append(queries)
            k_parts.append(keys)
            v_parts.append(values)
        return q_parts, k_parts, v_parts

    @staticmethod
    def _split_heads(t: np.ndarray, num_heads: int, d_head: int) -> np.ndarray:
        batch, new_len = t.shape[0], t.shape[1]
        return t.reshape(batch, new_len, num_heads, d_head).transpose(0, 2, 1, 3)

    def _attention_cached(
        self,
        index: int,
        x: np.ndarray,
        cache: KVCacheLike,
        positions: np.ndarray,
        valid: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Head-parallel cached attention meeting at K/V and context gathers.

        Each shard projects and attends over its own contiguous head range;
        the full-width K/V gather feeds the *single* scheduler-owned cache
        (one write, exactly like the solo runner), and the per-shard
        contexts gather back to full width before the column-parallel output
        projection.  Every per-head step — fused paged attention or the
        dense reference — is independent per head, so the gathered result is
        bit-identical to the solo runner's.
        """
        block = self.weights.blocks[index]
        config = self.config
        batch, new_len, _ = x.shape
        prefix = f"block{index}.attn"
        d_head = config.d_head

        q_parts, k_parts, v_parts = self._qkv_shards(prefix, x, block.attn, positions, valid)
        keys = self.group.all_gather(k_parts, axis=-1)
        values = self.group.all_gather(v_parts, axis=-1)
        cache.write(
            index,
            self._split_heads(keys, config.num_heads, d_head),
            self._split_heads(values, config.num_heads, d_head),
            positions,
        )

        fused = self.fused_paged_attention and all(
            fused_attention_ready(executor, cache) for executor in self.executors
        )
        if fused:
            # Operands fetched after the write, same as the solo runner: any
            # copy-on-write fork is already reflected in the run table.
            key_pool, value_pool, runs, block_size = cache.attention_operands(index)
        else:
            attended = int(positions.max()) + 1
            cached_keys, cached_values = cache.view(index, attended)

        context_parts: List[np.ndarray] = []
        for shard_id, (h0, h1) in enumerate(self.head_bounds):
            queries = self._split_heads(q_parts[shard_id], h1 - h0, d_head)
            if fused:
                context = paged_attention(
                    queries,
                    key_pool[h0:h1],
                    value_pool[h0:h1],
                    runs,
                    block_size,
                    positions,
                    valid,
                )
            else:
                context = dense_cached_attention(
                    self.executors[shard_id],
                    prefix,
                    queries,
                    cached_keys[:, h0:h1],
                    cached_values[:, h0:h1],
                    positions,
                    valid,
                    d_head,
                )
            context_parts.append(
                context.transpose(0, 2, 1, 3).reshape(batch, new_len, (h1 - h0) * d_head)
            )
        context = self.group.all_gather(context_parts, axis=-1)
        return self._project(f"{prefix}.out_proj", context, block.attn.wo, block.attn.bo, positions)

    def _attention(
        self,
        index: int,
        x: np.ndarray,
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Head-parallel full-sequence attention (the ``logits()`` path)."""
        block = self.weights.blocks[index]
        config = self.config
        batch, seq, _ = x.shape
        prefix = f"block{index}.attn"
        d_head = config.d_head

        q_parts, k_parts, v_parts = self._qkv_shards(prefix, x, block.attn, positions, None)
        mask = (
            np.triu(np.ones((seq, seq), dtype=bool), k=1) if config.causal else None
        )
        context_parts: List[np.ndarray] = []
        for shard_id, (h0, h1) in enumerate(self.head_bounds):
            executor = self.executors[shard_id]
            queries = self._split_heads(q_parts[shard_id], h1 - h0, d_head)
            keys = self._split_heads(k_parts[shard_id], h1 - h0, d_head)
            values = self._split_heads(v_parts[shard_id], h1 - h0, d_head)
            scores = executor.attention_matmul(
                f"{prefix}.qk", queries, np.swapaxes(keys, -1, -2)
            ) / np.sqrt(d_head)
            if mask is not None:
                scores = np.where(mask[None, None], -1e9, scores)
            attention = softmax(scores, axis=-1)
            context = executor.attention_matmul(f"{prefix}.sv", attention, values)
            context_parts.append(
                context.transpose(0, 2, 1, 3).reshape(batch, seq, (h1 - h0) * d_head)
            )
        context = self.group.all_gather(context_parts, axis=-1)
        return self._project(f"{prefix}.out_proj", context, block.attn.wo, block.attn.bo, positions)
