"""Asyncio streaming frontend over the continuous-batching scheduler.

The :class:`~repro.serve.scheduler.Scheduler` is a synchronous step loop:
callers submit, then block in :meth:`~repro.serve.scheduler.Scheduler.run`
until everything finishes.  :class:`AsyncEngine` turns it into a serving
frontend:

* **Streaming** — :meth:`AsyncEngine.submit` returns a
  :class:`RequestStream`, an async iterator that yields tokens the moment
  the scheduler commits them (via the scheduler's ``on_token`` hook) and
  resolves to the full :class:`~repro.serve.scheduler.RequestOutput` once
  the request finishes.
* **Admission control** — the waiting queue is bounded
  (``max_waiting``): :meth:`submit` suspends the caller until a seat frees
  (backpressure), while :meth:`submit_nowait` raises
  :class:`~repro.errors.ResourceExhaustedError` immediately so callers can
  shed load instead of queueing.
* **Priorities, deadlines, preemption** — submissions carry a priority
  class (lower = more urgent) and an optional admission deadline in
  scheduler ticks; with ``preemption=True`` (the default here, unlike the
  bare scheduler) an urgent request evicts the worst lower-priority victim,
  whose blocks return to the LRU free-list and whose prompt+tokens replay
  on re-admission — bit-identical to an unpreempted run, because resume
  never re-samples.
* **Failure containment** — an exception escaping the background step
  loop resolves *every* pending :class:`RequestStream` with the error
  (``result()`` re-raises it, iterators raise it after draining buffered
  tokens) instead of leaving awaiters suspended; per-call ``timeout=`` on
  :meth:`RequestStream.result` and :meth:`RequestStream.next` bounds any
  single wait, so a stalled engine can never hang a caller.
* **Pool-backed serving** — pass ``pool=`` (a
  :class:`~repro.serve.cluster.ReplicaPool`, or anything scheduler-shaped)
  instead of a runner to stream from a fault-tolerant replica fleet; the
  engine only uses the duck-typed driving surface (``submit`` / ``step`` /
  ``cancel`` / ``expire`` / ``has_pending`` / ``num_waiting`` / ``now``),
  so recovery, chaos injection, and degradation stay the pool's business.

The engine never runs the model concurrently with itself: one background
asyncio task calls ``scheduler.step()`` whenever work is pending and yields
to the event loop between steps, so token consumers, new submissions, and
cancellations interleave at step granularity.  All determinism guarantees
of the scheduler (per-request RNG, tick-based clock) are untouched — the
event loop only changes *when* callers observe tokens, never which tokens
are produced.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models.inference import TransformerRunner
from repro.serve.scheduler import GenerationConfig, Request, RequestOutput, Scheduler
from repro.serve.spec import SpecConfig

#: Sentinel pushed onto a stream's token queue when its request terminates.
_DONE = object()


class RequestStream:
    """Async handle for one in-flight request: token stream plus final result.

    Iterate to receive tokens as the scheduler commits them::

        stream = await engine.submit(prompt)
        async for token in stream:
            ...
        output = await stream.result()

    Tokens are buffered, so a slow consumer never stalls the engine, and
    iterating after completion simply drains the remaining buffer.  The
    handle is created by :meth:`AsyncEngine.submit` /
    :meth:`AsyncEngine.submit_nowait`; it is not constructed directly.
    """

    def __init__(self, engine: "AsyncEngine", request_id: int, priority: int) -> None:
        self._engine = engine
        self._request_id = request_id
        self._priority = priority
        self._tokens: asyncio.Queue = asyncio.Queue()
        self._result: "asyncio.Future[RequestOutput]" = (
            asyncio.get_running_loop().create_future()
        )

    @property
    def request_id(self) -> int:
        """The scheduler-assigned request id."""
        return self._request_id

    @property
    def priority(self) -> int:
        """Priority class the request was submitted with (lower = urgent)."""
        return self._priority

    @property
    def finished(self) -> bool:
        """True once the request has a terminal output."""
        return self._result.done()

    def __aiter__(self) -> AsyncIterator[int]:
        """Return the per-token async iterator (the stream itself)."""
        return self

    async def __anext__(self) -> int:
        """Yield the next committed token, or stop at end of stream."""
        return await self.next()

    async def next(self, timeout: Optional[float] = None) -> int:
        """Yield the next committed token (``__anext__`` with a ``timeout=``).

        Parameters
        ----------
        timeout : float, optional
            Seconds to wait for the next token (``asyncio.wait_for``
            semantics).  On expiry the request is finished ``"expired"``
            through the scheduler's deadline path — partial tokens are kept
            in the terminal output — and :class:`asyncio.TimeoutError` is
            raised, so a stalled replica can never hang a consumer.

        Raises
        ------
        StopAsyncIteration
            At end of stream (buffered tokens drain first).
        asyncio.TimeoutError
            If ``timeout`` elapses before a token (or end of stream).
        Exception
            The serve loop's error, when the engine failed mid-request.
        """
        try:
            if timeout is None:
                item = await self._tokens.get()
            else:
                item = await asyncio.wait_for(self._tokens.get(), timeout)
        except asyncio.TimeoutError:
            self._engine._expire_stream(self)
            raise
        if item is _DONE:
            # Keep the queue terminated for any concurrent/late iterator.
            self._tokens.put_nowait(_DONE)
            if self._result.done() and self._result.exception() is not None:
                raise self._result.exception()
            raise StopAsyncIteration
        return item

    async def result(self, timeout: Optional[float] = None) -> RequestOutput:
        """Wait for (and return) the request's terminal output.

        Parameters
        ----------
        timeout : float, optional
            Seconds to wait (``asyncio.wait_for`` semantics).  On expiry
            :class:`asyncio.TimeoutError` is raised and the request itself
            is left untouched (shielded) — unlike a per-token
            :meth:`next` timeout, a result timeout is only the caller
            giving up on *waiting*, not on the request.

        Raises
        ------
        asyncio.TimeoutError
            If ``timeout`` elapses first.
        Exception
            The serve loop's error, when the engine failed mid-request.
        """
        if timeout is None:
            return await self._result
        return await asyncio.wait_for(asyncio.shield(self._result), timeout)

    async def cancel(self) -> RequestOutput:
        """Withdraw this request (see :meth:`AsyncEngine.cancel`)."""
        return await self._engine.cancel(self)

    def _push_token(self, token: int) -> None:
        """Feed one committed token into the stream buffer."""
        self._tokens.put_nowait(token)

    def _resolve(self, output: RequestOutput) -> None:
        """Terminate the stream with the request's final output."""
        if not self._result.done():
            self._result.set_result(output)
        self._tokens.put_nowait(_DONE)

    def _reject(self, error: BaseException) -> None:
        """Terminate the stream with the serve loop's error.

        ``result()`` re-raises ``error``; iterators drain any buffered
        tokens first, then raise it in place of ``StopAsyncIteration``.
        """
        if not self._result.done():
            self._result.set_exception(error)
        self._tokens.put_nowait(_DONE)


class AsyncEngine:
    """Bounded-queue asyncio frontend over a :class:`Scheduler`.

    Parameters
    ----------
    runner : TransformerRunner, optional
        The executor-backed model (any quantization scheme).  Omit it (pass
        ``None``) when serving from a ``pool``.
    config : GenerationConfig, optional
        Decoding parameters shared by all requests.
    pool : optional
        A scheduler-shaped engine core — typically a
        :class:`~repro.serve.cluster.ReplicaPool` — to serve from instead
        of constructing a private :class:`Scheduler`.  Mutually exclusive
        with ``runner`` and the scheduler keywords; the pool keeps whatever
        fault-tolerance policy it was built with, and the engine installs
        itself as its ``on_token`` hook.
    max_waiting : int
        Bound on the scheduler's waiting queue.  :meth:`submit` applies
        backpressure (awaits) at the bound; :meth:`submit_nowait` raises.
    preemption : bool
        Allow urgent submissions to evict lower-priority victims (see
        :class:`Scheduler`).  Default True — the point of an async
        frontend is latency under load.
    max_batch_size, block_size, num_blocks, policy, record_logits, \
prefix_cache, prefill_chunk, speculation
        Forwarded to :class:`Scheduler` unchanged.
    tracer : repro.obs.Tracer, optional
        Opt-in request-lifecycle tracing, forwarded to the private
        :class:`Scheduler` (see :mod:`repro.obs`).  Rejected alongside
        ``pool`` — a pool carries its own tracer wiring.

    Raises
    ------
    ConfigurationError
        For invalid parameters (``max_waiting < 1``, both ``runner`` and
        ``pool``, neither, or anything the scheduler rejects).

    Examples
    --------
    >>> async with AsyncEngine(runner, max_waiting=8) as engine:
    ...     stream = await engine.submit(prompt, priority=0, deadline=16.0)
    ...     async for token in stream:
    ...         print(token)
    ...     output = await stream.result()
    """

    def __init__(
        self,
        runner: Optional[TransformerRunner] = None,
        config: Optional[GenerationConfig] = None,
        *,
        pool=None,
        max_waiting: int = 32,
        preemption: bool = True,
        max_batch_size: int = 8,
        block_size: int = 16,
        num_blocks: Optional[int] = None,
        policy: str = "continuous",
        record_logits: bool = False,
        prefix_cache: bool = True,
        prefill_chunk: Optional[int] = None,
        speculation: Optional[SpecConfig] = None,
        tracer=None,
    ) -> None:
        if max_waiting < 1:
            raise ConfigurationError("max_waiting must be >= 1")
        if (runner is None) == (pool is None):
            raise ConfigurationError(
                "pass exactly one of runner (private scheduler) or pool "
                "(replica-pool engine core)"
            )
        self.max_waiting = int(max_waiting)
        if pool is not None:
            if config is not None:
                raise ConfigurationError(
                    "a pool carries its own GenerationConfig; do not pass "
                    "config alongside pool"
                )
            if tracer is not None:
                raise ConfigurationError(
                    "a pool carries its own tracer; pass tracer= to the "
                    "ReplicaPool constructor instead"
                )
            self.scheduler = pool
            pool.on_token = self._on_token
        else:
            self.scheduler = Scheduler(
                runner,
                config,
                max_batch_size=max_batch_size,
                block_size=block_size,
                num_blocks=num_blocks,
                policy=policy,
                record_logits=record_logits,
                prefix_cache=prefix_cache,
                prefill_chunk=prefill_chunk,
                speculation=speculation,
                preemption=preemption,
                on_token=self._on_token,
                tracer=tracer,
            )
        self._streams: dict = {}
        self._task: Optional["asyncio.Task"] = None
        self._closed = False
        #: The exception that killed the serve loop, if one did; re-raised
        #: by every pending stream and every later submission attempt.
        self._error: Optional[BaseException] = None
        #: Set whenever new work arrives (wakes an idle serve loop).
        self._work_event: Optional[asyncio.Event] = None
        #: Set after every step (wakes submitters waiting on backpressure).
        self._seat_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        prompt: Union[Request, np.ndarray],
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
        max_new_tokens: Optional[int] = None,
    ) -> RequestStream:
        """Enqueue a prompt, awaiting while the waiting queue is full.

        Parameters
        ----------
        prompt : ndarray
            Prompt token ids (a full :class:`Request` is rejected — arrival
            times are assigned by the engine clock).
        priority : int
            Priority class, lower = more urgent.
        deadline : float, optional
            Admission deadline in scheduler ticks *relative to now*; the
            request expires (``finish_reason="expired"``) if still waiting
            when the scheduler clock passes it.
        max_new_tokens : int, optional
            Per-request budget override.

        Returns
        -------
        RequestStream
        """
        self._ensure_running()
        seat = self._seat_event
        while self.scheduler.num_waiting >= self.max_waiting:
            seat.clear()
            await seat.wait()
            if self._error is not None:
                raise self._error
            if self._closed:
                raise ConfigurationError("engine is closed")
        return self._submit(prompt, priority, deadline, max_new_tokens)

    def submit_nowait(
        self,
        prompt: Union[Request, np.ndarray],
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
        max_new_tokens: Optional[int] = None,
    ) -> RequestStream:
        """Enqueue a prompt or raise immediately if the queue is full.

        Raises
        ------
        ResourceExhaustedError
            When ``max_waiting`` requests are already queued — the
            load-shedding twin of :meth:`submit`'s backpressure.
        """
        self._ensure_running()
        if self.scheduler.num_waiting >= self.max_waiting:
            raise ResourceExhaustedError(
                f"waiting queue is full ({self.max_waiting} requests); "
                "use submit() to wait for a seat"
            )
        return self._submit(prompt, priority, deadline, max_new_tokens)

    def _submit(
        self,
        prompt: Union[Request, np.ndarray],
        priority: int,
        deadline: Optional[float],
        max_new_tokens: Optional[int],
    ) -> RequestStream:
        """Hand one validated submission to the scheduler (shared tail)."""
        if isinstance(prompt, Request):
            raise ConfigurationError(
                "AsyncEngine assigns arrival times from its own clock; "
                "submit a prompt array with keyword options instead of a Request"
            )
        now = self.scheduler.now
        request_id = self.scheduler.submit(
            prompt,
            max_new_tokens=max_new_tokens,
            arrival_time=now,
            priority=priority,
            deadline=None if deadline is None else now + float(deadline),
        )
        stream = RequestStream(self, request_id, int(priority))
        self._streams[request_id] = stream
        self._work_event.set()
        return stream

    async def cancel(self, stream: RequestStream) -> RequestOutput:
        """Withdraw a request mid-stream, releasing every block it holds.

        The returned output (also delivered via :meth:`RequestStream.result`)
        carries ``finish_reason="cancelled"`` and the tokens committed
        before cancellation.  Cancelling an already-finished stream simply
        returns its output.
        """
        if stream.finished:
            return await stream.result()
        output = self.scheduler.cancel(stream.request_id)
        self._finish(output)
        self._seat_event.set()
        return output

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        """Start (or restart) the background step-loop task."""
        if self._error is not None:
            raise self._error
        if self._closed:
            raise ConfigurationError("engine is closed")
        if self._work_event is None:
            self._work_event = asyncio.Event()
            self._seat_event = asyncio.Event()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._serve_loop())

    async def _serve_loop(self) -> None:
        """Drive ``scheduler.step()`` while work is pending, else sleep.

        An exception escaping a step is terminal for the engine: it is
        stored, every pending stream is rejected with it (``result()``
        re-raises, iterators raise after draining their buffers), and
        suspended submitters are woken — nothing is ever left awaiting a
        result that can no longer arrive.
        """
        try:
            while not self._closed:
                if self.scheduler.has_pending:
                    for output in self.scheduler.step():
                        self._finish(output)
                    self._seat_event.set()
                    # Yield between steps so submitters/consumers interleave.
                    await asyncio.sleep(0)
                else:
                    self._work_event.clear()
                    await self._work_event.wait()
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            self._fail(error)

    def _fail(self, error: BaseException) -> None:
        """Poison the engine: reject every pending stream, wake everyone."""
        self._error = error
        self._closed = True
        for request_id in sorted(self._streams):
            self._streams[request_id]._reject(error)
        self._streams.clear()
        if self._seat_event is not None:
            self._seat_event.set()
            self._work_event.set()

    def _on_token(self, request_id: int, token: int) -> None:
        """Scheduler ``on_token`` hook: route a committed token to its stream."""
        stream = self._streams.get(request_id)
        if stream is not None:
            stream._push_token(token)

    def _finish(self, output: RequestOutput) -> None:
        """Resolve and detach the stream of a finished request."""
        stream = self._streams.pop(output.request_id, None)
        if stream is not None:
            stream._resolve(output)

    def _expire_stream(self, stream: RequestStream) -> None:
        """Finish a stream ``"expired"`` after a per-token timeout.

        Rides the scheduler's deadline path (:meth:`Scheduler.expire`), so
        committed tokens are kept in the terminal output and every block is
        freed.  A request that finished in the timeout race window is left
        as-is.
        """
        if stream.finished or self._closed:
            return
        try:
            output = self.scheduler.expire(stream.request_id)
        except ConfigurationError:
            return  # finished (or was withdrawn) while the timeout fired
        self._finish(output)
        if self._seat_event is not None:
            self._seat_event.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every submitted request has finished."""
        while self.scheduler.has_pending:
            self._ensure_running()
            await asyncio.sleep(0)

    async def close(self) -> None:
        """Stop the serve loop; outstanding streams resolve as cancelled."""
        if self._closed:
            return
        self._closed = True
        for request_id in sorted(self._streams):
            stream = self._streams[request_id]
            if not stream.finished:
                output = self.scheduler.cancel(request_id)
                stream._resolve(output)
        self._streams.clear()
        if self._work_event is not None:
            self._work_event.set()
            self._seat_event.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def __aenter__(self) -> "AsyncEngine":
        """Enter the async context (the loop starts on first submit)."""
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Close the engine on context exit."""
        await self.close()

    @property
    def stats(self):
        """The engine core's stats.

        A :class:`SchedulerStats` when the engine owns a private scheduler;
        the pool's aggregate counters when serving from a replica pool.
        """
        return self.scheduler.stats


async def serve_all(
    engine: AsyncEngine,
    prompts: List[np.ndarray],
    *,
    priorities: Optional[List[int]] = None,
) -> List[RequestOutput]:
    """Submit ``prompts`` concurrently and gather their outputs in order.

    A convenience for tests and benchmarks: every prompt is submitted
    through the bounded queue (so backpressure applies), then all results
    are awaited and returned in submission order.
    """
    if priorities is None:
        priorities = [0] * len(prompts)
    streams = []
    for prompt, priority in zip(prompts, priorities):
        streams.append(await engine.submit(prompt, priority=priority))
    return [await stream.result() for stream in streams]
