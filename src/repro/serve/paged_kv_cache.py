"""Block-allocated, slot-granular key/value cache with cross-request reuse.

The dense :class:`~repro.serve.kv_cache.KVCache` ties one batch *lane* to one
request for the lifetime of the whole batch: a lane's memory is only
reclaimed when the entire batch drains.  Under continuous batching, requests
finish (and new ones arrive) mid-flight, so the cache must be able to free
one request's memory the moment it completes and hand it to the next
arrival.  :class:`PagedKVCache` does exactly that, following the paging
design popularised by vLLM: physical storage is a pool of fixed-size
*blocks*, and each live request (a *slot*) owns a block table mapping its
token positions onto blocks in the pool.

Since the prefix-caching PR, blocks additionally carry *identity*:

* every block has a **reference count** — several slots may map the same
  physical block when their prompts share a prefix;
* a block whose contents cover one full block of committed prompt tokens can
  be **published** into a radix index keyed by ``(parent block, token run)``
  — the chain of keys is exactly a content hash of the token prefix, so
  :meth:`match_prefix` finds the longest cached prefix of a new prompt in
  one walk;
* writes into a block shared with another slot trigger **copy-on-write**:
  the writer gets a private copy and the original keeps serving the other
  holders (and future prefix matches);
* freed blocks go to an **LRU free-list** instead of being scrubbed:
  published blocks keep their index entry (and stay matchable) until memory
  pressure actually reclaims them, at which point the block — and every
  radix descendant, whose chained identity it anchored — is de-indexed.

Blocks are scrubbed *lazily*: a per-block dirty bit marks blocks that have
ever been written, and only dirty blocks are zeroed when (re)allocated for
fresh use — a prefix-hit reservation overwrites nothing and therefore pays
no memset.  Output isolation alone would already follow from the attention
visibility rule (a sequence only ever attends to slots at positions it has
itself written), but executors that quantize attention operands
*dynamically* (Tender ``quantize_attention=True``) take per-column
statistics over the whole attended window — stale values there would
perturb quantization scales even though they never reach an output, so the
zeros-never-widen-an-absmax invariant of the dense cache is preserved for
every freshly allocated block.  ``tests/serve/test_scheduler.py`` and
``tests/serve/test_prefix_cache.py`` pin these properties down.

Two pieces cooperate:

* :class:`PagedKVCache` — the physical pool plus per-slot block tables
  (``reserve`` / ``free`` / ``write`` / ``gather``), and
* :class:`SlotBatchView` — a dense, :class:`~repro.serve.kv_cache.KVCache`
  compatible facade over an arbitrary *subset* of slots, which is what lets
  :meth:`repro.models.inference.TransformerRunner.decode_step` run one
  batched iteration over whichever requests the scheduler has active without
  knowing anything about paging.  The view precomputes a dense
  ``(row, block index) -> physical block`` table so ``gather`` is one fancy
  index per layer and ``write`` one scatter — refreshed only when the pool's
  block topology actually changes (reserve/free/copy-on-write/truncate),
  never per decode iteration.

Since the fused-paged-attention PR the pool's physical layout is
``(num_heads, num_blocks, block_size, d_head)`` — heads outermost — so a run
of *consecutive* physical blocks is one zero-copy reshape away from the
``(num_heads, run_len x block_size, d_head)`` operand an attention matmul
wants.  :meth:`SlotBatchView.attention_operands` exposes the pool arrays
plus each row's maximal consecutive-block runs (cached on the block index),
letting :func:`repro.core.kernels.paged_attention` consume KV straight from
block storage; :meth:`PagedKVCache.gather` remains the retained
dense-copy reference path, and its traffic is tallied in
:attr:`PagedKVCache.gather_bytes` so serving gates can assert the fused
path truly never materializes a dense KV copy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, ResourceExhaustedError

#: Radix-index parent of a prompt's first block (no preceding prefix).
_ROOT = -1


class _BlockIndex:
    """Precomputed physical-block lookup table over a fixed set of slots.

    ``tables[row, i]`` is the physical block backing block index ``i`` of
    ``slot_ids[row]`` (``-1`` padding past a shorter slot's reservation).
    Rebuilt from the pool only when the pool's ``table_version`` moves —
    i.e. on reserve/free/copy-on-write/truncate, not per decode iteration.

    ``runs[row]`` decomposes the row's table into maximal runs of
    *consecutive* physical blocks as ``(first_block_index, first_physical,
    num_blocks)`` triples: with the head-outermost pool layout each run is a
    zero-copy view of block storage, which is what the fused paged-attention
    kernel consumes instead of a gathered dense copy.
    """

    __slots__ = ("slot_ids", "version", "tables", "blocks_per_row", "runs")

    def __init__(self, paged: "PagedKVCache", slot_ids: Sequence[int]) -> None:
        self.slot_ids = [int(s) for s in slot_ids]
        self.refresh(paged)

    def refresh(self, paged: "PagedKVCache") -> None:
        """Re-read the slots' block tables from the pool."""
        tables = [paged._tables[slot] for slot in self.slot_ids]
        width = max(len(table) for table in tables)
        dense = np.full((len(tables), width), _ROOT, dtype=np.int64)
        for row, table in enumerate(tables):
            dense[row, : len(table)] = table
        self.tables = dense
        self.blocks_per_row = np.array([len(table) for table in tables], dtype=np.int64)
        self.runs = [_consecutive_runs(table) for table in tables]
        self.version = paged._table_version


def _consecutive_runs(table: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Maximal consecutive-physical-block runs of one slot's table.

    Returns ``(first_block_index, first_physical_block, num_blocks)``
    triples covering the table in position order.
    """
    runs: List[Tuple[int, int, int]] = []
    for index, block in enumerate(table):
        if runs and runs[-1][1] + runs[-1][2] == block:
            first_index, first_physical, count = runs[-1]
            runs[-1] = (first_index, first_physical, count + 1)
        else:
            runs.append((index, int(block), 1))
    return runs


class PagedKVCache:
    """A pool of fixed-size KV blocks shared by all live requests.

    Storage is one ``(num_heads, num_blocks, block_size, d_head)`` key array
    and one value array per layer — heads outermost, so consecutive physical
    blocks are contiguous per head and a consecutive-block run reshapes into
    an attention operand without copying.  A *slot* (one live request) owns a list
    of block ids covering positions ``[0, capacity)``; :meth:`reserve`
    allocates the whole table up front so a request admitted by the
    scheduler can never run out of cache mid-decode.  Blocks are reference
    counted: a reservation may *share* published prefix blocks with other
    slots (see :meth:`match_prefix` / :meth:`publish_prefix`), writes into a
    shared block fork a private copy, and freed blocks linger on an LRU
    free-list so their contents stay matchable until reclaimed.

    Parameters
    ----------
    num_layers : int
        Transformer layers (one key/value pool pair each).
    num_heads : int
        Attention heads per layer.
    d_head : int
        Head dimension.
    block_size : int
        Token positions per block.
    num_blocks : int
        Blocks in the pool, shared across all slots and layers (a block id
        addresses the same region in every layer's pool).

    Raises
    ------
    ConfigurationError
        If any dimension is < 1.
    """

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        d_head: int,
        block_size: int = 16,
        num_blocks: int = 64,
    ) -> None:
        if min(num_layers, num_heads, d_head, block_size, num_blocks) < 1:
            raise ConfigurationError("PagedKVCache dimensions must all be >= 1")
        shape = (num_heads, num_blocks, block_size, d_head)
        self.block_size = int(block_size)
        self.key_blocks: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        self.value_blocks: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        #: Bytes of dense KV copies materialised by :meth:`gather` — the
        #: traffic the fused paged-attention path exists to avoid.  Reset
        #: freely; the perf-smoke gate asserts it stays 0 on fused decodes.
        self.gather_bytes = 0
        self._refcounts = np.zeros(num_blocks, dtype=np.int64)
        self._dirty = np.zeros(num_blocks, dtype=bool)
        #: Refcount-0 blocks in reclaim order (front reclaimed first).
        self._free_lru: "OrderedDict[int, None]" = OrderedDict((b, None) for b in range(num_blocks))
        self._tables: Dict[int, List[int]] = {}
        self._lengths: Dict[int, int] = {}
        self._next_slot = 0
        #: Radix index: (parent block or _ROOT, token-run bytes) -> block id.
        self._prefix_index: Dict[Tuple[int, bytes], int] = {}
        self._block_key: Dict[int, Tuple[int, bytes]] = {}
        self._children: Dict[int, Set[int]] = {}
        self._table_version = 0
        #: Opt-in trace sink (plain attributes, not constructor params, so
        #: every existing construction site keeps working): the scheduler
        #: points these at its own tracer and track right after building the
        #: cache, and ``cache.*`` events render beside that replica's
        #: requests.  ``None`` — the default — emits nothing.
        self.tracer = None
        self.trace_track = "cache"

    @classmethod
    def for_model(cls, config, max_active: int, block_size: int = 16) -> "PagedKVCache":
        """Size a pool so ``max_active`` requests can each reach ``max_seq_len``.

        Parameters
        ----------
        config : TransformerConfig
            Model architecture (supplies layers/heads/head dim/max_seq_len).
        max_active : int
            Worst-case number of concurrently live slots.
        block_size : int
            Token positions per block.

        Returns
        -------
        PagedKVCache
        """
        blocks_per_request = -(-int(config.max_seq_len) // block_size)
        return cls(
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            d_head=config.d_head,
            block_size=block_size,
            num_blocks=max(1, int(max_active)) * blocks_per_request,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of transformer layers the pool covers."""
        return len(self.key_blocks)

    @property
    def num_blocks(self) -> int:
        """Total blocks in the pool."""
        return int(self.key_blocks[0].shape[1])

    @property
    def free_block_count(self) -> int:
        """Blocks currently available for :meth:`reserve` (the LRU free-list)."""
        return len(self._free_lru)

    @property
    def cached_block_count(self) -> int:
        """Blocks currently published in the prefix radix index."""
        return len(self._prefix_index)

    @property
    def table_version(self) -> int:
        """Counter bumped on every block-topology change (reserve/free/COW/truncate)."""
        return self._table_version

    @property
    def active_slots(self) -> List[int]:
        """Ids of currently reserved slots, in reservation order."""
        return list(self._tables)

    @property
    def memory_bytes(self) -> int:
        """Total bytes held by the block pools (allocated once, up front)."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self.key_blocks, self.value_blocks))

    def blocks_needed(self, capacity: int) -> int:
        """Blocks required to cover ``capacity`` token positions."""
        return -(-max(int(capacity), 1) // self.block_size)

    def length_of(self, slot: int) -> int:
        """Committed tokens of ``slot``."""
        return self._lengths[slot]

    def capacity_of(self, slot: int) -> int:
        """Reserved token positions of ``slot``."""
        return len(self._tables[slot]) * self.block_size

    def ref_count(self, block: int) -> int:
        """Number of slot tables currently mapping ``block``."""
        return int(self._refcounts[block])

    def block_table(self, slot: int) -> List[int]:
        """Physical block ids of ``slot``, in position order (a copy)."""
        return list(self._tables[slot])

    def free_blocks(self) -> List[int]:
        """Ids of unreferenced blocks, in LRU reclaim order (a copy).

        Introspection for invariant checkers (``repro.serve.stress``):
        together with :meth:`ref_count` this exposes the free-list side of
        the refcount/free-list duality without touching private state.
        """
        return list(self._free_lru)

    def radix_entries(self) -> Dict[Tuple[int, bytes], int]:
        """The prefix index as ``{(parent, token-run bytes): block}`` (a copy).

        ``parent`` is the physical block anchoring the previous run of the
        chain, or ``-1`` at a prompt's first block.  Introspection for
        invariant checkers; mutating the copy has no effect on the pool.
        """
        return dict(self._prefix_index)

    def radix_children(self, block: int) -> Set[int]:
        """Published radix children of ``block`` (``-1`` for roots; a copy)."""
        return set(self._children.get(block, ()))

    def block_key_of(self, block: int) -> Optional[Tuple[int, bytes]]:
        """The radix key ``block`` is published under, or None if unpublished."""
        return self._block_key.get(block)

    # ------------------------------------------------------------------
    # Prefix identity (radix of chained block hashes)
    # ------------------------------------------------------------------
    def match_prefix(self, tokens: np.ndarray) -> List[int]:
        """Longest chain of published blocks covering a prefix of ``tokens``.

        Walks the radix index block by block: a block matches when its
        parent matched (chained identity, so two different prompts sharing a
        token run mid-sequence can never alias) and its token run equals the
        prompt's next ``block_size`` tokens.  Pure lookup — reference counts
        are only taken when the chain is passed to :meth:`reserve`.

        Parameters
        ----------
        tokens : ndarray
            Prompt token ids, shape ``(prompt_len,)``.

        Returns
        -------
        list of int
            Matched physical block ids, in position order (possibly empty).
        """
        tokens = np.ascontiguousarray(np.asarray(tokens, dtype=np.int64).reshape(-1))
        matched: List[int] = []
        parent = _ROOT
        full_blocks = len(tokens) // self.block_size
        for index in range(full_blocks):
            run = tokens[index * self.block_size : (index + 1) * self.block_size]
            block = self._prefix_index.get((parent, run.tobytes()))
            if block is None:
                break
            matched.append(block)
            parent = block
        if self.tracer is not None and matched:
            self.tracer.instant(
                "cache.prefix_hit",
                self.trace_track,
                blocks=len(matched),
                tokens=len(matched) * self.block_size,
            )
        return matched

    def publish_prefix(self, slot: int, tokens: np.ndarray) -> int:
        """Register ``slot``'s fully-covered prompt blocks in the radix index.

        Only blocks whose *entire* token run lies within ``tokens`` are
        published — their contents are a pure function of the token prefix
        and will never be written again by the owner (decode writes land at
        positions ``>= len(tokens)``).  A key that already maps to another
        block is left untouched (the first publisher wins; the duplicate
        block simply stays private).

        Parameters
        ----------
        slot : int
            The slot whose prefill just committed ``tokens``.
        tokens : ndarray
            The full prompt, shape ``(prompt_len,)``.

        Returns
        -------
        int
            Number of newly published blocks.
        """
        tokens = np.ascontiguousarray(np.asarray(tokens, dtype=np.int64).reshape(-1))
        table = self._tables[slot]
        parent = _ROOT
        published = 0
        for index in range(len(tokens) // self.block_size):
            run = tokens[index * self.block_size : (index + 1) * self.block_size]
            key = (parent, run.tobytes())
            existing = self._prefix_index.get(key)
            if existing is not None:
                parent = existing
                continue
            block = table[index]
            if block in self._block_key:  # already anchors a different chain
                parent = block
                continue
            self._prefix_index[key] = block
            self._block_key[block] = key
            self._children.setdefault(parent, set()).add(block)
            parent = block
            published += 1
        return published

    def _deindex(self, block: int) -> None:
        """Drop ``block`` and its radix descendants from the prefix index.

        Descendants necessarily have refcount 0 (any slot holding a block
        also holds its whole prefix chain), so they simply lose matchability
        and remain ordinary free blocks.
        """
        key = self._block_key.pop(block, None)
        if key is None:
            return
        if self._prefix_index.get(key) == block:
            del self._prefix_index[key]
        parent_children = self._children.get(key[0])
        if parent_children is not None:
            parent_children.discard(block)
        for child in list(self._children.get(block, ())):
            self._deindex(child)
        self._children.pop(block, None)

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def reserve(self, capacity: int, shared: Sequence[int] = (), private_tail: bool = False) -> int:
        """Reserve a fresh slot able to hold ``capacity`` token positions.

        The full block table is allocated here, so admission control happens
        exactly once per request: once reserved, every write within
        ``capacity`` is guaranteed to succeed — including the one
        copy-on-write fork a ``private_tail`` reservation may need.

        Parameters
        ----------
        capacity : int
            Maximum token positions the request will ever occupy.
        shared : sequence of int, optional
            A matched prefix chain from :meth:`match_prefix`; these blocks
            become the head of the new table with their reference counts
            incremented (revived from the free-list if unreferenced) instead
            of being recomputed.
        private_tail : bool
            Fork the last shared block eagerly when other slots still
            reference it.  The scheduler sets this when the prompt's final
            token lies inside the last matched block (it is always
            recomputed, so that block will be written).

        Returns
        -------
        int
            The new slot id.

        Raises
        ------
        ResourceExhaustedError
            If the pool does not currently hold enough free blocks.
        ConfigurationError
            If ``shared`` holds more blocks than ``capacity`` needs.
        """
        needed = self.blocks_needed(capacity)
        shared = [int(b) for b in shared]
        if len(shared) > needed:
            raise ConfigurationError(
                f"{len(shared)} shared prefix blocks exceed the {needed} needed "
                f"for {capacity} positions"
            )
        fork_needed = bool(private_tail and shared and self._refcounts[shared[-1]] >= 1)
        revivals = sum(1 for block in shared if self._refcounts[block] == 0)
        fresh_needed = needed - len(shared) + (1 if fork_needed else 0)
        if fresh_needed > len(self._free_lru) - revivals:
            raise ResourceExhaustedError(
                f"need {fresh_needed} free KV blocks for {capacity} positions "
                f"({len(shared)} reused) but only {len(self._free_lru) - revivals} "
                f"of {self.num_blocks} are free"
            )
        for block in shared:
            if self._refcounts[block] == 0:
                del self._free_lru[block]
            self._refcounts[block] += 1
        blocks = shared + [self._allocate_fresh() for _ in range(needed - len(shared))]
        slot = self._next_slot
        self._next_slot += 1
        self._tables[slot] = blocks
        self._lengths[slot] = 0
        self._table_version += 1
        if self.tracer is not None:
            self.tracer.instant(
                "cache.block_alloc",
                self.trace_track,
                slot=slot,
                fresh=needed - len(shared),
                shared=len(shared),
            )
        if fork_needed:
            self._copy_on_write(slot, len(shared) - 1)
        elif private_tail and shared:
            # Sole owner of the revived tail block: writing in place is safe
            # *now*, but the block must stop being matchable or a later
            # reservation could share it and force a copy-on-write fork no
            # admission ever budgeted a free block for.  De-indexing keeps
            # the write-within-capacity guarantee; the block is re-published
            # when this slot's prefill completes.
            self._deindex(shared[-1])
        return slot

    def _allocate_fresh(self, scrub: bool = True) -> int:
        """Claim the head of the LRU free-list for exclusive use.

        Reclaiming a published block removes it (and its now-unanchored
        radix descendants) from the prefix index; dirty blocks are zeroed
        here — and only here — so prefix-hit reservations never pay the
        memset (see the module docstring for why zeros matter).
        """
        if not self._free_lru:
            raise ResourceExhaustedError(
                f"all {self.num_blocks} KV blocks are referenced; none can be "
                f"reclaimed for a fresh allocation"
            )
        block = next(iter(self._free_lru))
        del self._free_lru[block]
        self._deindex(block)
        if scrub and self._dirty[block]:
            for layer in range(self.num_layers):
                self.key_blocks[layer][:, block] = 0.0
                self.value_blocks[layer][:, block] = 0.0
            self._dirty[block] = False
        self._refcounts[block] = 1
        return block

    def _release(self, block: int) -> None:
        """Put an unreferenced block on the LRU free-list.

        Published blocks keep their contents and index entry and are
        appended at the *back* (reclaimed last, least-recently-freed first
        among themselves); unpublished blocks carry nothing reusable and go
        to the front.
        """
        self._free_lru[block] = None
        self._free_lru.move_to_end(block, last=block in self._block_key)

    def free(self, slot: int) -> None:
        """Drop ``slot``'s references; unreferenced blocks join the free-list.

        Released in reverse position order so a published prefix chain lands
        on the LRU leaf-first: memory pressure then shrinks the cached
        prefix one tail block at a time instead of reclaiming the chain's
        radix root (which would de-index every descendant at once).
        """
        for block in reversed(self._tables.pop(slot)):
            self._refcounts[block] -= 1
            if self._refcounts[block] == 0:
                self._release(block)
        del self._lengths[slot]
        self._table_version += 1

    def truncate(self, slot: int, new_length: int, min_capacity: int = 0) -> int:
        """Roll ``slot`` back to ``new_length`` committed tokens.

        The rollback primitive of speculative decoding: a verification
        forward writes KV for every draft token optimistically, and the
        rejected tail must be withdrawn without disturbing anything the
        rollback does not cover.  Three cases compose:

        * **Tail blocks** no longer needed to cover ``new_length`` (nor
          ``min_capacity``) have their reference counts dropped; blocks that
          reach zero join the LRU free-list exactly as :meth:`free` releases
          them — published blocks stay matchable there, and ancestors of a
          released block are never de-indexed.
        * **Retained blocks** at or beyond the cut will be rewritten by this
          slot's future decode steps.  A sole-owner (refcount 1) published
          block there is de-indexed first — the same rule :meth:`reserve`
          applies to a revived ``private_tail`` — and its rolled-back
          positions are scrubbed to zero so the zeros-invariant dynamic
          attention statistics rely on (see the module docstring) survives
          speculation.  No copy-on-write happens here: a *shared*
          (refcount > 1) block is left byte-for-byte intact — the rollback
          only moves this slot's length, and any later write into it forks
          a private copy through the ordinary COW path.

        Parameters
        ----------
        slot : int
            The slot to roll back.
        new_length : int
            Committed tokens to keep; must not exceed the current length.
        min_capacity : int
            Keep enough blocks to cover this many positions even when
            ``new_length`` needs fewer.  The scheduler passes the slot's
            reserved capacity so a mid-decode rollback never surrenders
            blocks the admission-time reservation guaranteed.

        Returns
        -------
        int
            Number of block references released.

        Raises
        ------
        ConfigurationError
            If ``new_length`` is negative or exceeds the committed length.
        """
        length = self._lengths[slot]
        new_length = int(new_length)
        if new_length < 0 or new_length > length:
            raise ConfigurationError(
                f"truncate target {new_length} outside slot {slot}'s committed "
                f"length {length} (truncate only rolls back)"
            )
        table = self._tables[slot]
        keep = min(self.blocks_needed(max(new_length, min_capacity, 1)), len(table))
        released = len(table) - keep
        for block in reversed(table[keep:]):
            self._refcounts[block] -= 1
            if self._refcounts[block] == 0:
                self._release(block)
        if released:
            del table[keep:]
        # Invalidate unconditionally, not just when blocks were released: a
        # cached _BlockIndex built before the rollback must never keep
        # addressing rolled-back positions once the freed blocks regrow into
        # another slot's reservation, and a scrub-only rollback still
        # changes which positions of the retained blocks hold live data.
        self._table_version += 1
        first_cut = new_length // self.block_size if new_length < length else keep
        for index in range(first_cut, keep):
            block = table[index]
            if self._refcounts[block] != 1:
                continue  # shared: copy-on-write protects any later write
            if block in self._block_key:
                self._deindex(block)
            begin = max(new_length - index * self.block_size, 0)
            end = min(length - index * self.block_size, self.block_size)
            if begin < end:
                for layer in range(self.num_layers):
                    self.key_blocks[layer][:, block, begin:end] = 0.0
                    self.value_blocks[layer][:, block, begin:end] = 0.0
        self._lengths[slot] = new_length
        return released

    def set_length(self, slot: int, length: int) -> None:
        """Record that ``slot`` now holds ``length`` committed tokens."""
        if length > self.capacity_of(slot):
            raise ConfigurationError(
                f"length {length} exceeds slot {slot}'s reserved capacity "
                f"{self.capacity_of(slot)}"
            )
        self._lengths[slot] = int(length)

    # ------------------------------------------------------------------
    # Copy-on-write
    # ------------------------------------------------------------------
    def _copy_on_write(self, slot: int, block_index: int) -> int:
        """Give ``slot`` a private copy of its ``block_index``-th block."""
        source = self._tables[slot][block_index]
        copy = self._allocate_fresh(scrub=False)
        for layer in range(self.num_layers):
            self.key_blocks[layer][:, copy] = self.key_blocks[layer][:, source]
            self.value_blocks[layer][:, copy] = self.value_blocks[layer][:, source]
        self._dirty[copy] = True
        self._tables[slot][block_index] = copy
        self._refcounts[source] -= 1
        if self._refcounts[source] == 0:
            self._release(source)
        self._table_version += 1
        if self.tracer is not None:
            self.tracer.instant(
                "cache.cow", self.trace_track, slot=slot, source=source, copy=copy
            )
        return copy

    def _fork_shared_targets(self, index: _BlockIndex, block_rows: np.ndarray, shared: np.ndarray) -> None:
        """Copy-on-write every (row, block) write target shared with another slot."""
        seen = set()
        for row, column in zip(*np.nonzero(shared)):
            pair = (int(row), int(block_rows[row, column]))
            if pair in seen:
                continue
            seen.add(pair)
            slot = index.slot_ids[pair[0]]
            if self._refcounts[self._tables[slot][pair[1]]] > 1:
                self._copy_on_write(slot, pair[1])
        index.refresh(self)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def _fresh_index(self, slot_ids: Sequence[int], index: Optional[_BlockIndex]) -> _BlockIndex:
        """Return an up-to-date block index for ``slot_ids``."""
        if index is None:
            return _BlockIndex(self, slot_ids)
        if index.version != self._table_version:
            index.refresh(self)
        return index

    def write(
        self,
        layer: int,
        slot_ids: Sequence[int],
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        index: Optional[_BlockIndex] = None,
    ) -> None:
        """Scatter new head tensors into the blocks of the given slots.

        One vectorized scatter per call: positions are mapped through the
        precomputed block table to ``(physical block, in-block offset)``
        pairs, validated, and assigned in a single fancy-index.  Targets
        shared with another slot (reference count > 1) are forked first
        (copy-on-write), so a write can never leak into a prefix another
        request is still attending.

        Parameters
        ----------
        layer : int
            Layer whose pools receive the data.
        slot_ids : sequence of int
            One slot per batch row.
        keys, values : ndarray
            ``(len(slot_ids), num_heads, new_len, d_head)`` payloads.
        positions : ndarray
            ``(len(slot_ids), new_len)`` absolute token positions per row.
        index : _BlockIndex, optional
            A view's cached block table (rebuilt here only if stale).

        Raises
        ------
        ConfigurationError
            If any position lies beyond its slot's reserved capacity.
        """
        positions = np.asarray(positions, dtype=np.int64)
        index = self._fresh_index(slot_ids, index)
        block_rows = positions // self.block_size
        if (positions < 0).any() or (block_rows >= index.blocks_per_row[:, None]).any():
            bad = positions[(positions < 0) | (block_rows >= index.blocks_per_row[:, None])]
            raise ConfigurationError(
                f"position {int(bad[0])} outside the writing slot's reserved capacity"
            )
        rows = np.arange(len(index.slot_ids))[:, None]
        targets = index.tables[rows, block_rows]
        shared = self._refcounts[targets] > 1
        if shared.any():
            self._fork_shared_targets(index, block_rows, shared)
            targets = index.tables[rows, block_rows]
        # A sole-owner target can still sit in the prefix index: published,
        # truncated past while a sharer pinned its bytes, then orphaned when
        # that sharer freed.  Its content is about to change, so its entry —
        # and every chain built on it — must drop, or a later match_prefix
        # would surface stale bytes under the old key.
        for block in np.unique(targets):
            if self._block_key.get(int(block)) is not None:
                self._deindex(int(block))
        offsets = positions - block_rows * self.block_size
        self._dirty[targets] = True
        # Adjacent advanced indices on the block/position axes keep the head
        # axis leading in the indexed view, so payloads move it up front.
        self.key_blocks[layer][:, targets, offsets] = keys.transpose(1, 0, 2, 3)
        self.value_blocks[layer][:, targets, offsets] = values.transpose(1, 0, 2, 3)

    def gather(
        self,
        layer: int,
        slot_ids: Sequence[int],
        length: int,
        index: Optional[_BlockIndex] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble dense ``(len(slot_ids), num_heads, length, d_head)`` K/V.

        One fancy-index per layer over the precomputed block table — no
        per-row or per-block Python loop.  Positions beyond a slot's
        reserved capacity are zero-filled: they are only requested when a
        *longer* batch-mate pushes the dense view past a short slot's
        reservation, and the attention mask hides them from every query of
        that slot.

        Parameters
        ----------
        layer : int
            Layer to read.
        slot_ids : sequence of int
            Slots forming the dense batch, in row order.
        length : int
            Token positions to materialise per row.
        index : _BlockIndex, optional
            A view's cached block table (rebuilt here only if stale).

        Returns
        -------
        tuple of ndarray
            ``(keys, values)`` dense arrays.
        """
        index = self._fresh_index(slot_ids, index)
        rows = len(index.slot_ids)
        heads = self.key_blocks[layer].shape[0]
        d_head = self.key_blocks[layer].shape[3]
        num_blocks = self.blocks_needed(length) if length else 0
        width = index.tables.shape[1]
        if num_blocks <= width:
            blocks = index.tables[:, :num_blocks]
        else:
            blocks = np.full((rows, num_blocks), _ROOT, dtype=np.int64)
            blocks[:, :width] = index.tables
        missing = blocks < 0
        gathered_keys = self.key_blocks[layer][:, np.where(missing, 0, blocks)]
        gathered_values = self.value_blocks[layer][:, np.where(missing, 0, blocks)]
        if missing.any():
            gathered_keys[:, missing] = 0.0
            gathered_values[:, missing] = 0.0
        shape = (rows, heads, num_blocks * self.block_size, d_head)
        keys = np.ascontiguousarray(
            gathered_keys.transpose(1, 0, 2, 3, 4).reshape(shape)[:, :, :length]
        )
        values = np.ascontiguousarray(
            gathered_values.transpose(1, 0, 2, 3, 4).reshape(shape)[:, :, :length]
        )
        self.gather_bytes += keys.nbytes + values.nbytes
        return keys, values

    def view(self, slot_ids: Sequence[int]) -> "SlotBatchView":
        """Build a dense cache facade over ``slot_ids`` (see :class:`SlotBatchView`)."""
        return SlotBatchView(self, slot_ids)


class SlotBatchView:
    """Dense-cache facade over a subset of :class:`PagedKVCache` slots.

    Implements the interface :class:`~repro.models.inference.TransformerRunner`
    expects from a :class:`~repro.serve.kv_cache.KVCache` — ``write``,
    ``view``, ``ensure_capacity`` and a mutable ``lengths`` vector — so one
    batched ``prefill``/``decode_step`` call can run over exactly the slots
    the scheduler currently has active.  Length updates made by the runner
    stay local to the view until :meth:`commit` copies them back to the pool
    (the scheduler commits after every successful forward).

    The view owns a cached block-index table (see ``_BlockIndex``): the
    scheduler keeps one view alive across decode iterations while its slot
    set is unchanged, so neither ``lengths`` nor the index is rebuilt per
    step — the index refreshes itself only when the pool's block topology
    changes underneath it (copy-on-write, unrelated reserve/free).

    Attributes
    ----------
    slot_ids : list of int
        The slots backing each batch row, in row order.
    lengths : ndarray
        Per-row committed-token counts, advanced in place by the runner.
    """

    def __init__(self, paged: PagedKVCache, slot_ids: Sequence[int]) -> None:
        self._paged = paged
        self.slot_ids = [int(s) for s in slot_ids]
        if not self.slot_ids:
            raise ConfigurationError("a SlotBatchView needs at least one slot")
        self.lengths = np.array([paged.length_of(s) for s in self.slot_ids], dtype=np.int64)
        self._index = _BlockIndex(paged, self.slot_ids)

    @property
    def num_layers(self) -> int:
        """Number of layers of the backing pool."""
        return self._paged.num_layers

    @property
    def batch_size(self) -> int:
        """Number of slots (batch rows) in this view."""
        return len(self.slot_ids)

    @property
    def capacity(self) -> int:
        """Largest reserved token capacity among the viewed slots."""
        return max(self._paged.capacity_of(s) for s in self.slot_ids)

    def ensure_capacity(self, needed: int) -> None:
        """Validate that the *pool* could ever address ``needed`` positions.

        Unlike the dense cache, a paged pool never grows: every slot's blocks
        were reserved at admission, and per-slot bounds are enforced by
        ``write``.  This only rejects positions no slot could ever hold.
        """
        if needed > self._paged.num_blocks * self._paged.block_size:
            raise ConfigurationError(
                f"position {needed - 1} can never fit a pool of "
                f"{self._paged.num_blocks} x {self._paged.block_size} slots"
            )

    def write(self, layer: int, keys: np.ndarray, values: np.ndarray, slots: np.ndarray) -> None:
        """Scatter per-row payloads through to the backing pool."""
        self._paged.write(layer, self.slot_ids, keys, values, slots, index=self._index)

    def view(self, layer: int, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense (keys, values) over the first ``length`` positions of each slot."""
        return self._paged.gather(layer, self.slot_ids, length, index=self._index)

    #: The fused paged-attention path can read this view's KV straight from
    #: block storage (see :meth:`attention_operands`).
    supports_paged_attention = True

    def attention_operands(
        self, layer: int
    ) -> Tuple[np.ndarray, np.ndarray, List[List[Tuple[int, int, int]]], int]:
        """Block-table operands for gather-free attention over this view.

        Returns ``(key_pool, value_pool, runs, block_size)``: the layer's
        pool arrays (shape ``(num_heads, num_blocks, block_size, d_head)``,
        *not* copied) and each row's maximal consecutive-block runs as
        ``(first_block_index, first_physical_block, num_blocks)`` triples.
        The cached block index is freshness-checked first, so operands
        fetched after a ``write`` (which may have copy-on-write forked a
        block) always describe the current topology.
        """
        index = self._paged._fresh_index(self.slot_ids, self._index)
        return (
            self._paged.key_blocks[layer],
            self._paged.value_blocks[layer],
            index.runs,
            self._paged.block_size,
        )

    def commit(self) -> None:
        """Publish the view's per-row lengths back to the pool's slot table."""
        for row, slot in enumerate(self.slot_ids):
            self._paged.set_length(slot, int(self.lengths[row]))
