"""Block-allocated, slot-granular key/value cache for continuous batching.

The dense :class:`~repro.serve.kv_cache.KVCache` ties one batch *lane* to one
request for the lifetime of the whole batch: a lane's memory is only
reclaimed when the entire batch drains.  Under continuous batching, requests
finish (and new ones arrive) mid-flight, so the cache must be able to free
one request's memory the moment it completes and hand it to the next
arrival.  :class:`PagedKVCache` does exactly that, following the paging
design popularised by vLLM: physical storage is a pool of fixed-size
*blocks*, and each live request (a *slot*) owns a block table mapping its
token positions onto blocks in the pool.

Two pieces cooperate:

* :class:`PagedKVCache` — the physical pool plus per-slot block tables
  (``reserve`` / ``free`` / ``write`` / ``gather``), and
* :class:`SlotBatchView` — a dense, :class:`~repro.serve.kv_cache.KVCache`
  compatible facade over an arbitrary *subset* of slots, which is what lets
  :meth:`repro.models.inference.TransformerRunner.decode_step` run one
  batched iteration over whichever requests the scheduler has active without
  knowing anything about paging.

Freed blocks return to the pool dirty and are zeroed when next *reserved*.
Output isolation alone would already follow from the attention visibility
rule (a sequence only ever attends to slots at positions it has itself
written), but executors that quantize attention operands *dynamically*
(Tender ``quantize_attention=True``) take per-column statistics over the
whole attended window — stale values there would perturb quantization
scales even though they never reach an output, so reservation restores the
dense cache's zeros-never-widen-an-absmax invariant.
``tests/serve/test_scheduler.py`` pins both properties down with
dirty-block reuse tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ResourceExhaustedError


class PagedKVCache:
    """A pool of fixed-size KV blocks shared by all live requests.

    Storage is one ``(num_blocks, num_heads, block_size, d_head)`` key array
    and one value array per layer.  A *slot* (one live request) owns a list
    of block ids covering positions ``[0, capacity)``; :meth:`reserve`
    allocates the whole table up front so a request admitted by the
    scheduler can never run out of cache mid-decode.

    Parameters
    ----------
    num_layers : int
        Transformer layers (one key/value pool pair each).
    num_heads : int
        Attention heads per layer.
    d_head : int
        Head dimension.
    block_size : int
        Token positions per block.
    num_blocks : int
        Blocks in the pool, shared across all slots and layers (a block id
        addresses the same region in every layer's pool).

    Raises
    ------
    ConfigurationError
        If any dimension is < 1.
    """

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        d_head: int,
        block_size: int = 16,
        num_blocks: int = 64,
    ) -> None:
        if min(num_layers, num_heads, d_head, block_size, num_blocks) < 1:
            raise ConfigurationError("PagedKVCache dimensions must all be >= 1")
        shape = (num_blocks, num_heads, block_size, d_head)
        self.block_size = int(block_size)
        self.key_blocks: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        self.value_blocks: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        self._free_blocks: List[int] = list(range(num_blocks - 1, -1, -1))
        self._tables: Dict[int, List[int]] = {}
        self._lengths: Dict[int, int] = {}
        self._next_slot = 0

    @classmethod
    def for_model(cls, config, max_active: int, block_size: int = 16) -> "PagedKVCache":
        """Size a pool so ``max_active`` requests can each reach ``max_seq_len``.

        Parameters
        ----------
        config : TransformerConfig
            Model architecture (supplies layers/heads/head dim/max_seq_len).
        max_active : int
            Worst-case number of concurrently live slots.
        block_size : int
            Token positions per block.

        Returns
        -------
        PagedKVCache
        """
        blocks_per_request = -(-int(config.max_seq_len) // block_size)
        return cls(
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            d_head=config.d_head,
            block_size=block_size,
            num_blocks=max(1, int(max_active)) * blocks_per_request,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of transformer layers the pool covers."""
        return len(self.key_blocks)

    @property
    def num_blocks(self) -> int:
        """Total blocks in the pool."""
        return int(self.key_blocks[0].shape[0])

    @property
    def free_block_count(self) -> int:
        """Blocks currently available for :meth:`reserve`."""
        return len(self._free_blocks)

    @property
    def active_slots(self) -> List[int]:
        """Ids of currently reserved slots, in reservation order."""
        return list(self._tables)

    @property
    def memory_bytes(self) -> int:
        """Total bytes held by the block pools (allocated once, up front)."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self.key_blocks, self.value_blocks))

    def blocks_needed(self, capacity: int) -> int:
        """Blocks required to cover ``capacity`` token positions."""
        return -(-max(int(capacity), 1) // self.block_size)

    def length_of(self, slot: int) -> int:
        """Committed tokens of ``slot``."""
        return self._lengths[slot]

    def capacity_of(self, slot: int) -> int:
        """Reserved token positions of ``slot``."""
        return len(self._tables[slot]) * self.block_size

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def reserve(self, capacity: int) -> int:
        """Reserve a fresh slot able to hold ``capacity`` token positions.

        The full block table is allocated here, so admission control happens
        exactly once per request: once reserved, every write within
        ``capacity`` is guaranteed to succeed.  Each granted block is zeroed
        before use: the attention mask already keeps stale positions out of
        every *output*, but dynamically quantized attention operands (Tender
        ``quantize_attention=True``) derive per-column statistics over the
        whole attended window, and only zeros are guaranteed never to widen
        an absmax (see ``TransformerRunner._attention_cached``).

        Parameters
        ----------
        capacity : int
            Maximum token positions the request will ever occupy.

        Returns
        -------
        int
            The new slot id.

        Raises
        ------
        ResourceExhaustedError
            If the pool does not currently hold enough free blocks.
        """
        needed = self.blocks_needed(capacity)
        if needed > len(self._free_blocks):
            raise ResourceExhaustedError(
                f"need {needed} KV blocks for {capacity} positions but only "
                f"{len(self._free_blocks)} of {self.num_blocks} are free"
            )
        slot = self._next_slot
        self._next_slot += 1
        blocks = [self._free_blocks.pop() for _ in range(needed)]
        for layer in range(self.num_layers):
            self.key_blocks[layer][blocks] = 0.0
            self.value_blocks[layer][blocks] = 0.0
        self._tables[slot] = blocks
        self._lengths[slot] = 0
        return slot

    def free(self, slot: int) -> None:
        """Return ``slot``'s blocks to the pool (scrubbed at next reserve)."""
        self._free_blocks.extend(reversed(self._tables.pop(slot)))
        del self._lengths[slot]

    def set_length(self, slot: int, length: int) -> None:
        """Record that ``slot`` now holds ``length`` committed tokens."""
        if length > self.capacity_of(slot):
            raise ConfigurationError(
                f"length {length} exceeds slot {slot}'s reserved capacity "
                f"{self.capacity_of(slot)}"
            )
        self._lengths[slot] = int(length)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def _locate(self, slot: int, position: int) -> Tuple[int, int]:
        """Map a (slot, token position) to its (block id, in-block offset)."""
        table = self._tables[slot]
        block_index, offset = divmod(int(position), self.block_size)
        if position < 0 or block_index >= len(table):
            raise ConfigurationError(
                f"position {position} outside slot {slot}'s reserved capacity "
                f"{self.capacity_of(slot)}"
            )
        return table[block_index], offset

    def write(
        self,
        layer: int,
        slot_ids: Sequence[int],
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Scatter new head tensors into the blocks of the given slots.

        Parameters
        ----------
        layer : int
            Layer whose pools receive the data.
        slot_ids : sequence of int
            One slot per batch row.
        keys, values : ndarray
            ``(len(slot_ids), num_heads, new_len, d_head)`` payloads.
        positions : ndarray
            ``(len(slot_ids), new_len)`` absolute token positions per row.

        Raises
        ------
        ConfigurationError
            If any position lies beyond its slot's reserved capacity.
        """
        positions = np.asarray(positions, dtype=np.int64)
        new_len = positions.shape[1]
        for row, slot in enumerate(slot_ids):
            # Positions are written in contiguous runs per block (the serving
            # paths always write consecutive positions), so each run is one
            # slice assignment instead of a per-token Python loop.
            column = 0
            while column < new_len:
                block, offset = self._locate(slot, positions[row, column])
                run = int(min(new_len - column, self.block_size - offset))
                expected = positions[row, column] + np.arange(run)
                if not np.array_equal(positions[row, column : column + run], expected):
                    run = 1  # non-contiguous caller: fall back to one position
                self.key_blocks[layer][block, :, offset : offset + run] = keys[
                    row, :, column : column + run
                ]
                self.value_blocks[layer][block, :, offset : offset + run] = values[
                    row, :, column : column + run
                ]
                column += run

    def gather(self, layer: int, slot_ids: Sequence[int], length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble dense ``(len(slot_ids), num_heads, length, d_head)`` K/V.

        Positions beyond a slot's reserved capacity are zero-filled — they
        are only requested when a *longer* batch-mate pushes the dense view
        past a short slot's reservation, and the attention mask hides them
        from every query of that slot.

        Parameters
        ----------
        layer : int
            Layer to read.
        slot_ids : sequence of int
            Slots forming the dense batch, in row order.
        length : int
            Token positions to materialise per row.

        Returns
        -------
        tuple of ndarray
            ``(keys, values)`` dense arrays.
        """
        heads = self.key_blocks[layer].shape[1]
        d_head = self.key_blocks[layer].shape[3]
        keys = np.zeros((len(slot_ids), heads, length, d_head), dtype=np.float64)
        values = np.zeros_like(keys)
        for row, slot in enumerate(slot_ids):
            table = self._tables[slot]
            copied = min(length, len(table) * self.block_size)
            for block_index in range(self.blocks_needed(copied) if copied else 0):
                start = block_index * self.block_size
                stop = min(start + self.block_size, copied)
                block = table[block_index]
                keys[row, :, start:stop] = self.key_blocks[layer][block, :, : stop - start]
                values[row, :, start:stop] = self.value_blocks[layer][block, :, : stop - start]
        return keys, values

    def view(self, slot_ids: Sequence[int]) -> "SlotBatchView":
        """Build a dense cache facade over ``slot_ids`` (see :class:`SlotBatchView`)."""
        return SlotBatchView(self, slot_ids)


class SlotBatchView:
    """Dense-cache facade over a subset of :class:`PagedKVCache` slots.

    Implements the interface :class:`~repro.models.inference.TransformerRunner`
    expects from a :class:`~repro.serve.kv_cache.KVCache` — ``write``,
    ``view``, ``ensure_capacity`` and a mutable ``lengths`` vector — so one
    batched ``prefill``/``decode_step`` call can run over exactly the slots
    the scheduler currently has active.  Length updates made by the runner
    stay local to the view until :meth:`commit` copies them back to the pool
    (the scheduler commits after every successful forward).

    Attributes
    ----------
    slot_ids : list of int
        The slots backing each batch row, in row order.
    lengths : ndarray
        Per-row committed-token counts, advanced in place by the runner.
    """

    def __init__(self, paged: PagedKVCache, slot_ids: Sequence[int]) -> None:
        self._paged = paged
        self.slot_ids = [int(s) for s in slot_ids]
        if not self.slot_ids:
            raise ConfigurationError("a SlotBatchView needs at least one slot")
        self.lengths = np.array([paged.length_of(s) for s in self.slot_ids], dtype=np.int64)

    @property
    def num_layers(self) -> int:
        """Number of layers of the backing pool."""
        return self._paged.num_layers

    @property
    def batch_size(self) -> int:
        """Number of slots (batch rows) in this view."""
        return len(self.slot_ids)

    @property
    def capacity(self) -> int:
        """Largest reserved token capacity among the viewed slots."""
        return max(self._paged.capacity_of(s) for s in self.slot_ids)

    def ensure_capacity(self, needed: int) -> None:
        """Validate that the *pool* could ever address ``needed`` positions.

        Unlike the dense cache, a paged pool never grows: every slot's blocks
        were reserved at admission, and per-slot bounds are enforced by
        ``write``.  This only rejects positions no slot could ever hold.
        """
        if needed > self._paged.num_blocks * self._paged.block_size:
            raise ConfigurationError(
                f"position {needed - 1} can never fit a pool of "
                f"{self._paged.num_blocks} x {self._paged.block_size} slots"
            )

    def write(self, layer: int, keys: np.ndarray, values: np.ndarray, slots: np.ndarray) -> None:
        """Scatter per-row payloads through to the backing pool."""
        self._paged.write(layer, self.slot_ids, keys, values, slots)

    def view(self, layer: int, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense (keys, values) over the first ``length`` positions of each slot."""
        return self._paged.gather(layer, self.slot_ids, length)

    def commit(self) -> None:
        """Publish the view's per-row lengths back to the pool's slot table."""
        for row, slot in enumerate(self.slot_ids):
            self._paged.set_length(slot, int(self.lengths[row]))
