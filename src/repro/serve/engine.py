"""Batched generation as one policy over the continuous-batching scheduler.

Historically this module owned the whole serving loop; since the scheduler
landed, :class:`GenerationEngine` is a thin *policy* over
:class:`~repro.serve.scheduler.Scheduler`: every prompt is submitted at time
zero with a slot reserved for each (``max_batch_size = len(prompts)``), the
scheduler runs to completion, and the per-request outputs are reassembled
into the familiar rectangular :class:`GenerationResult`.  Because all
quantization schemes in this repository plug into the runner through the
executor interface, the same loop serves the FP baseline, Tender (implicit
or explicit requantization), and every registry baseline unchanged.

Properties that are load-bearing and covered by tests:

* a request's continuation is independent of what it was batched with — the
  scheduler prefills each prompt as its own batch-of-one forward and samples
  from a per-request seeded generator, so this now holds *bit-identically*
  for Tender's integer pipeline (and up to ~1e-15 BLAS row-blocking noise in
  the FP baseline's logits, which never changes its sampled tokens);
* greedy decoding through the KV-cache reproduces the full-sequence
  forward's logits step for step for every scheme with statically-determined
  matmul parameters.  Tender "all" (``quantize_attention=True``) quantizes
  attention operands with dynamic per-head statistics, so its decode steps
  form a deliberately different (per-step) quantization schedule than a full
  forward — the serving-time behavior the paper's runtime requantization
  targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models.inference import TransformerRunner
from repro.serve.scheduler import GenerationConfig, Request, Scheduler
from repro.serve.spec import SpecConfig

__all__ = ["GenerationConfig", "GenerationResult", "GenerationEngine", "generate"]


@dataclass
class GenerationResult:
    """Everything produced by one batched :meth:`GenerationEngine.generate`.

    Attributes
    ----------
    sequences : list of ndarray
        Per request: prompt followed by its generated continuation.
    generated : list of ndarray
        Per request: only the generated tokens (truncated at eos, inclusive).
    prompt_lengths : ndarray
        Prompt length of each request.
    step_logits : ndarray
        Logits that produced each generated token, ``(batch, steps, vocab)``.
        Rows whose request finished before ``num_steps`` (eos, or a budget
        capped by ``max_seq_len``) have their trailing entries zeroed.
    num_steps : int
        The largest number of decode steps any request took.
    """

    sequences: List[np.ndarray]
    generated: List[np.ndarray]
    prompt_lengths: np.ndarray
    step_logits: np.ndarray
    num_steps: int = 0

    def text_lengths(self) -> np.ndarray:
        """Total committed tokens per request (prompt + kept continuation)."""
        return np.array([len(s) for s in self.sequences], dtype=np.int64)


class GenerationEngine:
    """Fixed-batch generation: submit everything at once, run to completion.

    This is the ``max_batch_size = len(prompts)`` policy over the
    :class:`~repro.serve.scheduler.Scheduler` — every request is admitted at
    time zero and the engine returns when the last one finishes.  For
    arrival traces, mid-flight admission, or bounded batch sizes, drive the
    scheduler directly.

    Parameters
    ----------
    runner : TransformerRunner
        The executor-backed model to decode with (any quantization scheme).
    prefix_cache : bool
        Reuse KV blocks across requests sharing a prompt prefix (see
        :class:`~repro.serve.scheduler.Scheduler`); the pool is then sized
        with shared prefix blocks counted once.  For Tender's integer
        pipeline the generated tokens are bit-identical either way.
    prefill_chunk : int, optional
        Per-iteration prompt-token budget for chunked prefill (``None``
        prefills each prompt in one forward, as before).
    speculation : SpecConfig, optional
        Enable speculative decoding (see :mod:`repro.serve.spec`): the
        scheduler drafts and verifies multi-token runs per decode
        iteration.  Greedy outputs are bit-identical to non-speculative
        decoding for Tender implicit/explicit — only the forward count
        changes.

    Examples
    --------
    >>> engine = GenerationEngine(TransformerRunner(weights))
    >>> result = engine.generate([prompt_a, prompt_b], GenerationConfig(max_new_tokens=8))
    >>> result.sequences[0]
    array([...])
    """

    def __init__(
        self,
        runner: TransformerRunner,
        prefix_cache: bool = False,
        prefill_chunk: Optional[int] = None,
        speculation: Optional[SpecConfig] = None,
    ) -> None:
        self.runner = runner
        self.prefix_cache = bool(prefix_cache)
        self.prefill_chunk = prefill_chunk
        self.speculation = speculation

    def generate(
        self,
        prompts: Sequence[np.ndarray],
        config: Optional[GenerationConfig] = None,
    ) -> GenerationResult:
        """Generate continuations for a batch of (possibly ragged) prompts.

        Parameters
        ----------
        prompts : sequence of ndarray
            One token-id array per request; lengths may differ.
        config : GenerationConfig, optional
            Decoding parameters (default: greedy, 32 new tokens).

        Returns
        -------
        GenerationResult
            Sequences, continuations, and per-step logits, ordered like
            ``prompts``.

        Raises
        ------
        ConfigurationError
            If the batch is empty, a prompt is empty or out-of-vocabulary,
            or a prompt leaves no room below ``max_seq_len``.
        """
        config = config or GenerationConfig()
        prompts = [np.asarray(p, dtype=np.int64).reshape(-1) for p in prompts]
        if not prompts:
            raise ConfigurationError("generate() requires at least one prompt")
        # All requests are known up front, so size the KV pool to their exact
        # reservations instead of the scheduler's worst case (every slot at
        # max_seq_len) — the same memory profile the dense cache had.
        block_size = 16
        scheduler = Scheduler(
            self.runner,
            config=config,
            max_batch_size=len(prompts),
            block_size=block_size,
            num_blocks=Scheduler.blocks_for_requests(
                self.runner.config, prompts, config, block_size, prefix_cache=self.prefix_cache
            ),
            prefix_cache=self.prefix_cache,
            prefill_chunk=self.prefill_chunk,
            speculation=self.speculation,
        )
        for prompt in prompts:
            scheduler.submit(Request(prompt=prompt))
        outputs = {output.request_id: output for output in scheduler.run()}
        ordered = [outputs[request_id] for request_id in range(len(prompts))]

        num_steps = max(output.num_steps for output in ordered)
        vocab = self.runner.config.vocab_size
        step_logits = np.zeros((len(prompts), num_steps, vocab), dtype=np.float64)
        for row, output in enumerate(ordered):
            step_logits[row, : output.num_steps] = output.step_logits
        return GenerationResult(
            sequences=[output.sequence for output in ordered],
            generated=[output.generated for output in ordered],
            prompt_lengths=np.array([output.prompt_length for output in ordered], dtype=np.int64),
            step_logits=step_logits,
            num_steps=num_steps,
        )


def generate(
    runner: TransformerRunner,
    prompts: Sequence[np.ndarray],
    config: Optional[GenerationConfig] = None,
) -> GenerationResult:
    """Generate continuations for ``prompts`` in one call.

    Parameters
    ----------
    runner : TransformerRunner
        The executor-backed model to decode with.
    prompts : sequence of ndarray
        One token-id array per request.
    config : GenerationConfig, optional
        Decoding parameters (default: greedy, 32 new tokens).

    Returns
    -------
    GenerationResult
        See :class:`GenerationResult`.
    """
    return GenerationEngine(runner).generate(prompts, config)
