"""Batched autoregressive generation over any :class:`MatmulExecutor`.

The engine turns the one-shot :class:`~repro.models.inference.TransformerRunner`
into a serving loop: prompts are right-padded into a rectangular batch, a
:class:`~repro.serve.kv_cache.KVCache` is prefilled in one pass, and decoding
proceeds one token per sequence per step.  Because all quantization schemes in
this repository plug into the runner through the executor interface, the same
loop serves the FP baseline, Tender (implicit or explicit requantization), and
every registry baseline unchanged.

Two properties are load-bearing and covered by tests:

* for the FP baseline and every Tender variant, a sequence's logits are
  independent of what it was batched with (padding and ragged lengths never
  leak into valid positions — including into the dynamic
  attention-quantization statistics of Tender "all"; baselines that compute
  one dynamic activation scale per batched matmul, such as per-tensor INT8,
  pool batch statistics by construction), and
* greedy decoding through the KV-cache reproduces the full-sequence forward's
  logits step for step for every scheme with statically-determined matmul
  parameters (the FP baseline, Tender with attention left in FP, ...).
  Tender "all" quantizes attention operands with dynamic per-head statistics,
  so its decode steps form a deliberately different (per-step) quantization
  schedule than a full forward — the serving-time behavior the paper's
  runtime requantization targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models.inference import TransformerRunner
from repro.serve.kv_cache import KVCache


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding parameters shared by every request in a batch.

    ``top_k == 0`` selects greedy decoding; ``top_k > 0`` samples from the
    ``top_k`` highest-probability tokens after ``temperature`` scaling, using
    a generator seeded with ``seed`` so batches replay deterministically.
    Generation stops early for sequences that emit ``eos_token`` (when set).
    """

    max_new_tokens: int = 32
    top_k: int = 0
    temperature: float = 1.0
    seed: int = 0
    eos_token: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ConfigurationError("max_new_tokens must be >= 1")
        if self.top_k < 0:
            raise ConfigurationError("top_k must be >= 0 (0 = greedy)")
        if self.temperature <= 0.0:
            raise ConfigurationError("temperature must be > 0")


@dataclass
class GenerationResult:
    """Everything produced by one batched :meth:`GenerationEngine.generate`."""

    #: Per request: prompt followed by its generated continuation.
    sequences: List[np.ndarray]
    #: Per request: only the generated tokens (truncated at eos, inclusive).
    generated: List[np.ndarray]
    #: Prompt length of each request.
    prompt_lengths: np.ndarray
    #: Logits that produced each generated token: (batch, steps, vocab).
    #: Rows whose per-request budget (max_new_tokens capped by max_seq_len)
    #: ended before ``num_steps`` have their trailing entries zeroed.
    step_logits: np.ndarray
    #: Number of decode iterations actually executed (the largest per-request
    #: budget reached, or fewer when eos finished every request early).
    num_steps: int = 0

    def text_lengths(self) -> np.ndarray:
        """Total committed tokens per request (prompt + kept continuation)."""
        return np.array([len(s) for s in self.sequences], dtype=np.int64)


class GenerationEngine:
    """Request-batched greedy/top-k generation loop with a KV-cache."""

    def __init__(self, runner: TransformerRunner) -> None:
        self.runner = runner

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _greedy(logits: np.ndarray) -> np.ndarray:
        return np.argmax(logits, axis=-1)

    @staticmethod
    def _top_k(logits: np.ndarray, config: GenerationConfig, rng: np.random.Generator) -> np.ndarray:
        scaled = logits / config.temperature
        k = min(config.top_k, logits.shape[-1])
        top_indices = np.argpartition(scaled, -k, axis=-1)[:, -k:]
        top_scores = np.take_along_axis(scaled, top_indices, axis=-1)
        top_scores = top_scores - top_scores.max(axis=-1, keepdims=True)
        probabilities = np.exp(top_scores)
        probabilities /= probabilities.sum(axis=-1, keepdims=True)
        choices = np.array(
            [rng.choice(k, p=probabilities[row]) for row in range(logits.shape[0])]
        )
        return np.take_along_axis(top_indices, choices[:, None], axis=-1)[:, 0]

    def _sample(self, logits: np.ndarray, config: GenerationConfig, rng: np.random.Generator) -> np.ndarray:
        if config.top_k == 0:
            return self._greedy(logits)
        return self._top_k(logits, config, rng)

    # ------------------------------------------------------------------
    # Batched generation
    # ------------------------------------------------------------------
    def generate(
        self,
        prompts: Sequence[np.ndarray],
        config: Optional[GenerationConfig] = None,
        cache: Optional[KVCache] = None,
    ) -> GenerationResult:
        """Generate continuations for a batch of (possibly ragged) prompts."""
        config = config or GenerationConfig()
        model_config = self.runner.config
        prompts = [np.asarray(p, dtype=np.int64).reshape(-1) for p in prompts]
        if not prompts:
            raise ConfigurationError("generate() requires at least one prompt")
        for prompt in prompts:
            if prompt.size == 0:
                raise ConfigurationError("prompts must contain at least one token")
            if prompt.min() < 0 or prompt.max() >= model_config.vocab_size:
                raise ConfigurationError("prompt tokens must be valid vocabulary ids")

        batch = len(prompts)
        lengths = np.array([len(p) for p in prompts], dtype=np.int64)
        max_len = int(lengths.max())
        if max_len >= model_config.max_seq_len:
            raise ConfigurationError(
                f"longest prompt ({max_len}) leaves no room below max_seq_len "
                f"{model_config.max_seq_len}"
            )
        # Each request has its own step budget: shorter prompts keep their full
        # max_new_tokens even when batched with a near-max_seq_len prompt.  A
        # request that exhausts its budget stops contributing (its trailing
        # generated tokens and step logits are zeroed below).
        budgets = np.minimum(int(config.max_new_tokens), model_config.max_seq_len - lengths)
        num_steps = int(budgets.max())

        padded = np.zeros((batch, max_len), dtype=np.int64)
        for row, prompt in enumerate(prompts):
            padded[row, : len(prompt)] = prompt
        if cache is None:
            cache = KVCache.for_model(model_config, batch, capacity=max_len + num_steps)

        rng = np.random.default_rng(config.seed)
        logits = self.runner.prefill(padded, lengths, cache)

        generated = np.zeros((batch, num_steps), dtype=np.int64)
        step_logits = np.zeros((batch, num_steps, logits.shape[-1]), dtype=np.float64)
        finished = np.zeros(batch, dtype=bool)
        steps_taken = 0
        for step in range(num_steps):
            next_tokens = self._sample(logits, config, rng)
            step_logits[:, step] = logits
            generated[:, step] = next_tokens
            steps_taken = step + 1
            if config.eos_token is not None:
                finished |= next_tokens == config.eos_token
            if (finished | (budgets <= steps_taken)).all():
                break
            if step + 1 < num_steps:
                # Rows that hit max_seq_len keep re-writing their final cache
                # slot; their outputs are garbage but are discarded by the
                # per-row budget truncation below, and other rows are
                # unaffected (each sequence owns its batch lane).
                np.minimum(cache.lengths, model_config.max_seq_len - 1, out=cache.lengths)
                logits = self.runner.decode_step(next_tokens, cache)

        sequences: List[np.ndarray] = []
        kept: List[np.ndarray] = []
        for row, prompt in enumerate(prompts):
            row_steps = min(steps_taken, int(budgets[row]))
            generated[row, row_steps:] = 0
            step_logits[row, row_steps:] = 0.0
            continuation = generated[row, :row_steps]
            if config.eos_token is not None:
                eos_hits = np.nonzero(continuation == config.eos_token)[0]
                if eos_hits.size:
                    continuation = continuation[: eos_hits[0] + 1]
            kept.append(continuation.copy())
            sequences.append(np.concatenate([prompt, continuation]))
        return GenerationResult(
            sequences=sequences,
            generated=kept,
            prompt_lengths=lengths,
            step_logits=step_logits[:, :steps_taken],
            num_steps=steps_taken,
        )


def generate(
    runner: TransformerRunner,
    prompts: Sequence[np.ndarray],
    config: Optional[GenerationConfig] = None,
) -> GenerationResult:
    """Convenience wrapper: one-shot batched generation for ``runner``."""
    return GenerationEngine(runner).generate(prompts, config)
