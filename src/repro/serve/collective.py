"""Simulated collective transport for tensor-parallel shard groups.

A :class:`ShardedRunner <repro.serve.shard.ShardedRunner>` partitions one
model across N simulated shards that must meet at explicit collectives
(all-gather of attention context, FFN activations, LM-head logits).  On real
multi-GPU stacks those collectives ride NCCL over NVLink/PCIe — a transport
that loses, corrupts, delays, and duplicates messages, and whose robustness
(timeouts, retries, integrity checks) decides whether a shard group is a
usable serving unit.  This module reproduces that contract in simulation:

* :class:`CollectiveGroup` executes ``all_gather`` / ``all_reduce`` calls
  whose per-shard messages carry **sequence numbers** and **CRC32
  checksums**.  Every message delivery runs under a per-call timeout with
  bounded exponential-backoff retry; deliveries that arrive late trip the
  straggler detector, which either *hedges* (resends and takes the faster
  copy) or *waits*, governed by configuration.  Duplicate deliveries are
  deduplicated by sequence number.
* :class:`CollectiveFaultInjector` decides, per message attempt, whether the
  wire drops, corrupts, delays, or duplicates it — or kills the sending
  shard outright.  Like the replica-level ``FaultInjector`` it supports both
  scripted faults (exact collective sequence numbers, for deterministic
  gates) and seeded random rates (for chaos soaks), and logs every fired
  fault.

The fault semantics are chosen so that *numerics never degrade*: a corrupted
message is caught by its checksum and retried from the pristine payload, so
the value a collective returns is bit-identical to the fault-free run or the
call raises.  When retries are exhausted the group raises
:class:`repro.errors.CollectiveTransportError`, and a killed shard raises
:class:`repro.errors.ShardFailureError`; both subclass
``ReplicaFailureError`` so the replica pool's checkpoint-and-recover sweep
treats the whole shard group as one fault unit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import CollectiveTransportError, ConfigurationError, ShardFailureError

__all__ = [
    "CollectiveFaultEvent",
    "CollectiveFaultInjector",
    "CollectiveGroup",
    "CollectiveStats",
]


@dataclass(frozen=True)
class CollectiveFaultEvent:
    """One fired collective fault, for post-run audits.

    Attributes
    ----------
    seq:
        Sequence number of the collective whose message was hit.
    shard_id:
        The sending shard whose message (or life) was affected.
    kind:
        ``"drop"``, ``"corrupt"``, ``"delay"``, ``"duplicate"`` or ``"kill"``.
    attempt:
        Zero-based retry attempt the fault landed on.
    """

    seq: int
    shard_id: int
    kind: str
    attempt: int


class CollectiveFaultInjector:
    """Seeded scripted + randomized fault source for collective messages.

    Mirrors the replica-level ``FaultInjector``: scripted faults (exact
    ``{collective_seq: shard_id}`` maps) fire deterministically on a
    message's first attempt and win over random draws; random faults fire
    per attempt at the configured rates from one seeded generator, drawn in
    a fixed order so schedules replay deterministically.  ``max_kills``
    bounds shard kills across the injector's lifetime — shared across
    rebuilt groups, it guarantees chaos runs terminate.

    Parameters
    ----------
    seed:
        Seed for the random-rate generator.
    drop_rate, corrupt_rate, delay_rate, duplicate_rate, kill_rate:
        Per-message-attempt probabilities of each fault kind.
    max_kills:
        Lifetime cap on ``"kill"`` faults (scripted and random combined).
    drop_at, corrupt_at, delay_at, duplicate_at, kill_at:
        Scripted ``{collective_seq: shard_id}`` maps; each fires once, on
        the victim message's first attempt.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        kill_rate: float = 0.0,
        max_kills: int = 1,
        drop_at: Optional[Dict[int, int]] = None,
        corrupt_at: Optional[Dict[int, int]] = None,
        delay_at: Optional[Dict[int, int]] = None,
        duplicate_at: Optional[Dict[int, int]] = None,
        kill_at: Optional[Dict[int, int]] = None,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.delay_rate = delay_rate
        self.duplicate_rate = duplicate_rate
        self.kill_rate = kill_rate
        self.max_kills = max_kills
        self.drop_at = dict(drop_at or {})
        self.corrupt_at = dict(corrupt_at or {})
        self.delay_at = dict(delay_at or {})
        self.duplicate_at = dict(duplicate_at or {})
        self.kill_at = dict(kill_at or {})
        self.events: List[CollectiveFaultEvent] = []

    def _kills_fired(self) -> int:
        return sum(1 for event in self.events if event.kind == "kill")

    def draw(self, seq: int, shard_id: int, attempt: int) -> Optional[str]:
        """Decide the fate of one message attempt.

        Scripted faults fire only on ``attempt == 0`` (so the retry path can
        actually succeed); random rates apply to every attempt.  Exactly
        five random draws happen per call regardless of outcome, keeping the
        generator stream — and therefore the whole chaos schedule —
        deterministic for a given event sequence.
        """
        kind: Optional[str] = None
        if attempt == 0:
            if self.kill_at.get(seq) == shard_id and self._kills_fired() < self.max_kills:
                kind = "kill"
            elif self.drop_at.get(seq) == shard_id:
                kind = "drop"
            elif self.corrupt_at.get(seq) == shard_id:
                kind = "corrupt"
            elif self.delay_at.get(seq) == shard_id:
                kind = "delay"
            elif self.duplicate_at.get(seq) == shard_id:
                kind = "duplicate"
        draws = self.rng.random(5)
        if kind is None:
            if draws[0] < self.kill_rate and self._kills_fired() < self.max_kills:
                kind = "kill"
            elif draws[1] < self.drop_rate:
                kind = "drop"
            elif draws[2] < self.corrupt_rate:
                kind = "corrupt"
            elif draws[3] < self.delay_rate:
                kind = "delay"
            elif draws[4] < self.duplicate_rate:
                kind = "duplicate"
        if kind is not None:
            self.events.append(CollectiveFaultEvent(seq, shard_id, kind, attempt))
        return kind


@dataclass
class CollectiveStats:
    """Counters a :class:`CollectiveGroup` accumulates over its lifetime.

    Attributes
    ----------
    collectives:
        Completed collective calls (``all_gather`` + ``all_reduce``).
    messages:
        Successfully delivered per-shard messages (first copies only).
    bytes_moved:
        Simulated wire bytes: each shard's payload crosses the link once
        per *other* shard in a gather/reduce ring.
    retries:
        Resends after a timeout or checksum failure.
    timeouts:
        Per-message timeouts (dropped messages that never arrived).
    corruption_caught:
        Deliveries whose CRC32 checksum mismatched and were discarded.
    duplicates_ignored:
        Redundant copies discarded by sequence-number dedup.
    stragglers:
        Deliveries that exceeded the straggler threshold.
    hedges:
        Stragglers cut short by a hedged resend (``hedge=True``).
    simulated_ms:
        Total simulated transport time, the analytic model's counterpart.
    """

    collectives: int = 0
    messages: int = 0
    bytes_moved: int = 0
    retries: int = 0
    timeouts: int = 0
    corruption_caught: int = 0
    duplicates_ignored: int = 0
    stragglers: int = 0
    hedges: int = 0
    simulated_ms: float = 0.0

    def __iadd__(self, other: "CollectiveStats") -> "CollectiveStats":
        """Fold another group's counters in, field-wise.

        Shard-group stats aggregate into pool-level totals with plain
        ``total += group.stats`` — the same merge shape
        ``ReplicaPool._retired_stats`` uses for scheduler counters, so a
        rebuilt group's pre-crash transport work is never silently lost.
        """
        if not isinstance(other, CollectiveStats):
            return NotImplemented
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def publish(self, registry, prefix: str = "collective") -> None:
        """Publish transport counters into a :class:`repro.obs.MetricsRegistry`.

        Every field becomes a counter named ``<prefix>.<field>``.  Counters
        accumulate — snapshot/delta around each publish to diff phases.
        """
        for name in self.__dataclass_fields__:
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))


class CollectiveGroup:
    """A shard group's message transport with integrity and retry semantics.

    Every collective call assigns a fresh sequence number and moves one
    checksummed message per shard.  A message delivery may be dropped
    (timeout, then exponential-backoff retry), corrupted (CRC32 mismatch —
    caught, discarded, retried from the pristine payload), delayed (the
    straggler detector hedges or waits), or duplicated (deduplicated by
    sequence number).  Retries are bounded: a message that cannot be
    delivered within ``max_retries`` resends raises
    :class:`repro.errors.CollectiveTransportError`, and a killed shard
    raises :class:`repro.errors.ShardFailureError` and leaves the group
    unhealthy — both are ``ReplicaFailureError`` subclasses the replica
    pool recovers from by rebuilding the whole group.

    Parameters
    ----------
    num_shards:
        Number of shards meeting at every collective.
    fault_injector:
        Optional :class:`CollectiveFaultInjector`; ``None`` means a
        fault-free wire.
    latency_ms:
        Base per-message link latency (simulated milliseconds).
    bandwidth_gb_s:
        Simulated link bandwidth pricing each message's payload bytes.
    timeout_ms:
        How long a receiver waits before declaring a message dropped.
    max_retries:
        Resend budget per message beyond the first attempt.
    backoff_ms:
        Base of the exponential retry backoff (``backoff_ms * 2**attempt``).
    straggler_ms:
        Arrival-time threshold beyond which a delivery counts as a
        straggler.
    delay_ms:
        Extra arrival time a ``"delay"`` fault adds to a message.
    hedge:
        Straggler policy: ``True`` resends and takes the faster copy,
        ``False`` waits out the slow delivery.
    tracer:
        Opt-in :class:`repro.obs.Tracer`: every transport fault the group
        rides out (retry, caught corruption, straggler, duplicate, kill,
        exhausted budget) emits a ``collective.*`` instant carrying the
        collective's sequence number and the sending shard onto
        ``trace_track``.  ``None`` (default) emits nothing.
    trace_track:
        Trace track the events land on (default ``"collective"``); the
        sharded runner names one per shard group.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        fault_injector: Optional[CollectiveFaultInjector] = None,
        latency_ms: float = 0.05,
        bandwidth_gb_s: float = 100.0,
        timeout_ms: float = 0.5,
        max_retries: int = 3,
        backoff_ms: float = 0.1,
        straggler_ms: float = 0.3,
        delay_ms: float = 0.6,
        hedge: bool = True,
        tracer=None,
        trace_track: str = "collective",
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("a collective group needs at least one shard")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.num_shards = num_shards
        self.fault_injector = fault_injector
        self.latency_ms = latency_ms
        self.bandwidth_gb_s = bandwidth_gb_s
        self.timeout_ms = timeout_ms
        self.max_retries = max_retries
        self.backoff_ms = backoff_ms
        self.straggler_ms = straggler_ms
        self.delay_ms = delay_ms
        self.hedge = hedge
        self.tracer = tracer
        self.trace_track = trace_track
        self.stats = CollectiveStats()
        self.dead_shards: Set[int] = set()
        self._seq = 0
        self._delivered: Set[Tuple[int, int]] = set()

    @property
    def healthy(self) -> bool:
        """Whether every shard is alive; a dead shard fails the whole group."""
        return not self.dead_shards

    def fail_shard(self, shard_id: int) -> None:
        """Mark one shard dead, tripping the group unhealthy."""
        self.dead_shards.add(shard_id)

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _cost_ms(self, nbytes: int) -> float:
        return self.latency_ms + nbytes / (self.bandwidth_gb_s * 1e6)

    def _deliver(self, seq: int, shard_id: int, payload: np.ndarray) -> np.ndarray:
        """Move one shard's checksummed message, riding out injected faults.

        Returns the pristine payload on success (corrupted copies are
        discarded at the checksum, duplicates at the dedup set), raises
        ``ShardFailureError`` on a kill and ``CollectiveTransportError``
        when the retry budget runs dry.
        """
        wire_bytes = np.ascontiguousarray(payload).tobytes()
        checksum = zlib.crc32(wire_bytes)
        cost = self._cost_ms(len(wire_bytes))
        for attempt in range(self.max_retries + 1):
            fault = (
                self.fault_injector.draw(seq, shard_id, attempt)
                if self.fault_injector is not None
                else None
            )
            if fault == "kill":
                self.fail_shard(shard_id)
                if self.tracer is not None:
                    self.tracer.instant(
                        "collective.kill", self.trace_track, seq=seq, shard=shard_id
                    )
                raise ShardFailureError(
                    f"shard {shard_id} died during collective #{seq}"
                )
            if fault == "drop":
                self.stats.timeouts += 1
                self.stats.retries += 1
                self.stats.simulated_ms += self.timeout_ms + self.backoff_ms * 2**attempt
                if self.tracer is not None:
                    self.tracer.instant(
                        "collective.retry",
                        self.trace_track,
                        seq=seq,
                        shard=shard_id,
                        attempt=attempt,
                        cause="timeout",
                    )
                continue
            if fault == "corrupt":
                tampered = bytearray(wire_bytes)
                tampered[0] ^= 0xFF
                if zlib.crc32(bytes(tampered)) == checksum:  # pragma: no cover
                    raise CollectiveTransportError("checksum failed to catch corruption")
                self.stats.corruption_caught += 1
                self.stats.retries += 1
                self.stats.simulated_ms += cost + self.backoff_ms * 2**attempt
                if self.tracer is not None:
                    self.tracer.instant(
                        "collective.corruption",
                        self.trace_track,
                        seq=seq,
                        shard=shard_id,
                        attempt=attempt,
                    )
                continue
            if fault == "delay":
                self.stats.stragglers += 1
                if self.hedge:
                    # The hedged resend overtakes the slow copy: pay the
                    # straggler threshold plus a clean resend.
                    self.stats.hedges += 1
                    self.stats.simulated_ms += self.straggler_ms + cost
                else:
                    self.stats.simulated_ms += cost + self.delay_ms
                if self.tracer is not None:
                    self.tracer.instant(
                        "collective.straggler",
                        self.trace_track,
                        seq=seq,
                        shard=shard_id,
                        hedged=self.hedge,
                    )
            elif fault == "duplicate":
                # Two copies cross the wire; the second finds (seq, shard)
                # already in the dedup set and is discarded.
                self.stats.simulated_ms += 2 * cost
                self.stats.duplicates_ignored += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "collective.duplicate",
                        self.trace_track,
                        seq=seq,
                        shard=shard_id,
                    )
            else:
                self.stats.simulated_ms += cost
            self._delivered.add((seq, shard_id))
            self.stats.messages += 1
            self.stats.bytes_moved += len(wire_bytes) * max(1, self.num_shards - 1)
            return payload
        if self.tracer is not None:
            self.tracer.instant(
                "collective.exhausted", self.trace_track, seq=seq, shard=shard_id
            )
        raise CollectiveTransportError(
            f"collective #{seq} message from shard {shard_id} exceeded "
            f"{self.max_retries} retries"
        )

    def _exchange(self, payloads: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(payloads) != self.num_shards:
            raise ConfigurationError(
                f"collective expects {self.num_shards} payloads, got {len(payloads)}"
            )
        if not self.healthy:
            raise ShardFailureError(
                f"collective group has dead shards: {sorted(self.dead_shards)}"
            )
        seq = self._seq
        self._seq += 1
        delivered = [
            self._deliver(seq, shard_id, np.asarray(payload))
            for shard_id, payload in enumerate(payloads)
        ]
        self.stats.collectives += 1
        return delivered

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_gather(self, payloads: Sequence[np.ndarray], axis: int = -1) -> np.ndarray:
        """Concatenate every shard's payload along ``axis``, in shard order.

        The concatenation order is the shard order, so a column-partitioned
        tensor reassembles bit-identically to its unsharded original.
        """
        return np.concatenate(self._exchange(payloads), axis=axis)

    def all_reduce(self, payloads: Sequence[np.ndarray]) -> np.ndarray:
        """Sum every shard's payload elementwise, accumulated in shard order.

        The deterministic left-to-right accumulation keeps the result
        reproducible across runs, but floating-point partial-sum reduction
        is still order-sensitive relative to an unsharded matmul — which is
        why the sharded runner meets at :meth:`all_gather` points instead
        (see architecture.md); ``all_reduce`` serves the analytic model and
        non-bit-exact consumers.
        """
        delivered = self._exchange(payloads)
        total = np.array(delivered[0], dtype=np.result_type(*delivered), copy=True)
        for payload in delivered[1:]:
            total += payload
        return total
