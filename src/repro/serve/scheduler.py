"""Continuous-batching scheduler: the serving loop behind every policy.

PR 1's engine ran one fixed batch end to end: every request occupied its
batch lane until the *slowest* request finished, so a single long generation
stalled every already-finished slot.  The :class:`Scheduler` instead treats
the batch as a set of *slots* over a shared :class:`~repro.serve.paged_kv_cache.PagedKVCache`:

* requests are **admitted** from a FIFO queue the moment a slot and enough
  KV blocks are free (their prompt is prefilled right away),
* each **decode iteration** runs one batched
  :meth:`~repro.models.inference.TransformerRunner.decode_step` over exactly
  the currently active slots (ragged positions are fine — every slot sits at
  its own sequence position; for Tender runners this scattered-position
  batch is exactly the shape the fast Index-Buffer kernels of
  :mod:`repro.core.kernels` are built for, so the decode loop pays one
  packed-table gather per projection instead of a Python loop over row
  chunks), and
* finished requests are **evicted mid-flight**, their blocks are reclaimed
  immediately, and the freed slot is backfilled by the next waiting request
  on the following iteration.

Two scheduling policies share this loop (`policy=`):

* ``"continuous"`` — admit whenever capacity frees up (the default), and
* ``"gang"`` — classic static batching: only admit when the batch has fully
  drained.  It exists as the baseline the continuous policy is benchmarked
  against (``benchmarks/bench_generate_decode.py``).

Determinism and parity are load-bearing: each request samples from its *own*
``numpy`` generator seeded with :attr:`GenerationConfig.seed`, and each
prefill runs as its own batch-of-one forward, so a request's output is
independent of what it happens to share the batch with.  For Tender's
integer pipeline the per-request outputs are bit-identical to running the
request alone; the FP baseline's logits differ only by BLAS row-blocking
noise (~1e-15) while its sampled tokens stay identical
(``tests/serve/test_decode_parity.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models.inference import TransformerRunner
from repro.serve.paged_kv_cache import PagedKVCache


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding parameters shared by every request of a scheduler or batch.

    ``top_k == 0`` selects greedy decoding; ``top_k > 0`` samples from the
    ``top_k`` highest-probability tokens after ``temperature`` scaling.
    Sampling draws from a per-request generator seeded with ``seed``, so a
    request's continuation replays deterministically *and* is independent of
    how it was batched.  Generation stops early for requests that emit
    ``eos_token`` (when set).

    Parameters
    ----------
    max_new_tokens : int
        Token budget per request (capped by the model's ``max_seq_len``).
        Individual requests may lower it via ``Request.max_new_tokens``.
    top_k : int
        ``0`` for greedy argmax decoding, ``k > 0`` for top-k sampling.
    temperature : float
        Softmax temperature applied before top-k sampling.
    seed : int
        Seed of each request's private sampling generator.
    eos_token : int, optional
        Token id that terminates a request early (kept in the output).

    Raises
    ------
    ConfigurationError
        If any field is outside its valid range.
    """

    max_new_tokens: int = 32
    top_k: int = 0
    temperature: float = 1.0
    seed: int = 0
    eos_token: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ConfigurationError("max_new_tokens must be >= 1")
        if self.top_k < 0:
            raise ConfigurationError("top_k must be >= 0 (0 = greedy)")
        if self.temperature <= 0.0:
            raise ConfigurationError("temperature must be > 0")


@dataclass
class Request:
    """One generation request submitted to a :class:`Scheduler`.

    Parameters
    ----------
    prompt : ndarray
        Token ids, shape ``(prompt_len,)``.
    max_new_tokens : int, optional
        Per-request budget override of the scheduler's
        :attr:`GenerationConfig.max_new_tokens`.
    arrival_time : float
        Scheduler-clock tick at which the request becomes admissible (the
        clock advances by one per model forward pass).  ``0.0`` means
        "available immediately".
    request_id : int, optional
        Set on the scheduler's internal copy by :meth:`Scheduler.submit`
        (which also returns it); a caller-constructed request is never
        mutated and may be resubmitted freely.
    """

    prompt: np.ndarray
    max_new_tokens: Optional[int] = None
    arrival_time: float = 0.0
    request_id: Optional[int] = None


@dataclass
class RequestOutput:
    """Everything the scheduler produced for one finished request."""

    #: Id assigned at submission (submission order).
    request_id: int
    #: The request's prompt, as submitted.
    prompt: np.ndarray
    #: Prompt followed by the kept continuation.
    sequence: np.ndarray
    #: Only the generated tokens (truncated at eos, inclusive).
    generated: np.ndarray
    #: Number of prompt tokens.
    prompt_length: int
    #: Logits behind each generated token, ``(num_steps, vocab)`` — empty
    #: when the scheduler was built with ``record_logits=False``.
    step_logits: np.ndarray
    #: Decode steps this request took (``len(generated)``).
    num_steps: int
    #: ``"eos"`` or ``"length"``.
    finish_reason: str
    #: Scheduler-clock ticks at admission (prefill) and completion.
    admitted_at: float = 0.0
    finished_at: float = 0.0


@dataclass
class SchedulerStats:
    """Iteration accounting of one scheduler run (deterministic, not wall time)."""

    #: Prefill forward passes executed (one per admitted request).
    prefill_iterations: int = 0
    #: Batched decode forward passes executed.
    decode_iterations: int = 0
    #: Sum over decode iterations of the number of active slots.
    decode_slot_steps: int = 0
    #: Tokens sampled (across prefill and decode logits).
    generated_tokens: int = 0
    #: Requests completed.
    completed_requests: int = 0
    #: Largest number of concurrently active slots observed.
    peak_active: int = 0
    #: Clock ticks spent with an empty batch waiting for the next arrival.
    idle_time: float = 0.0

    @property
    def total_iterations(self) -> int:
        """Model forward passes executed (prefill + decode)."""
        return self.prefill_iterations + self.decode_iterations

    def tokens_per_iteration(self) -> float:
        """Generated tokens per forward pass — the batching-efficiency metric."""
        return self.generated_tokens / max(1, self.total_iterations)


class _ActiveRequest:
    """Book-keeping for one admitted, not-yet-finished request."""

    __slots__ = ("request", "slot", "budget", "rng", "generated", "logits", "next_token", "admitted_at")

    def __init__(self, request: Request, slot: int, budget: int, seed: int, admitted_at: float) -> None:
        self.request = request
        self.slot = slot
        self.budget = budget
        self.rng = np.random.default_rng(seed)
        self.generated: List[int] = []
        self.logits: List[np.ndarray] = []
        self.next_token = -1
        self.admitted_at = admitted_at


def _token_budget(prompt_len: int, max_new_tokens: int, max_seq_len: int) -> int:
    """Per-request token budget: the configured budget, clipped at max_seq_len."""
    return int(min(max_new_tokens, max_seq_len - prompt_len))


def _reserved_positions(prompt_len: int, budget: int) -> int:
    """Cache positions a request can ever write (prompt + budget - 1, >= 1)."""
    return max(prompt_len + budget - 1, 1)


def _sample_token(logits_row: np.ndarray, config: GenerationConfig, rng: np.random.Generator) -> int:
    """Draw one token for one request (greedy or seeded top-k)."""
    if config.top_k == 0:
        return int(np.argmax(logits_row))
    scaled = logits_row / config.temperature
    k = min(config.top_k, scaled.shape[-1])
    top_indices = np.argpartition(scaled, -k)[-k:]
    top_scores = scaled[top_indices] - scaled[top_indices].max()
    probabilities = np.exp(top_scores)
    probabilities /= probabilities.sum()
    return int(top_indices[rng.choice(k, p=probabilities)])


class Scheduler:
    """Continuous-batching serving loop over a paged KV cache.

    Parameters
    ----------
    runner : TransformerRunner
        The executor-backed model (any quantization scheme).
    config : GenerationConfig, optional
        Decoding parameters shared by all requests (default: greedy, 32
        tokens).
    max_batch_size : int
        Maximum concurrently active requests (slots).
    block_size : int
        Token positions per KV block (see :class:`PagedKVCache`).
    num_blocks : int, optional
        KV pool size; defaults to enough blocks for ``max_batch_size``
        requests at ``max_seq_len``.
    policy : {"continuous", "gang"}
        ``"continuous"`` backfills freed slots immediately; ``"gang"`` only
        admits into a fully drained batch (static batching).
    record_logits : bool
        Keep per-step logits in each :class:`RequestOutput` (disable for
        long benchmark traces to save memory).

    Raises
    ------
    ConfigurationError
        For invalid parameters or un-servable requests at :meth:`submit`.

    Examples
    --------
    >>> scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=16))
    >>> scheduler.submit(prompt_tokens)
    0
    >>> outputs = scheduler.run()
    >>> outputs[0].generated
    array([...])
    """

    def __init__(
        self,
        runner: TransformerRunner,
        config: Optional[GenerationConfig] = None,
        max_batch_size: int = 8,
        block_size: int = 16,
        num_blocks: Optional[int] = None,
        policy: str = "continuous",
        record_logits: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if policy not in ("continuous", "gang"):
            raise ConfigurationError(f"unknown scheduling policy {policy!r}")
        self.runner = runner
        self.config = config or GenerationConfig()
        self.max_batch_size = int(max_batch_size)
        self.policy = policy
        self.record_logits = record_logits
        model_config = runner.config
        if num_blocks is None:
            self.cache = PagedKVCache.for_model(model_config, max_batch_size, block_size)
        else:
            self.cache = PagedKVCache(
                num_layers=model_config.num_layers,
                num_heads=model_config.num_heads,
                d_head=model_config.d_head,
                block_size=block_size,
                num_blocks=num_blocks,
            )
        self.now = 0.0
        self.stats = SchedulerStats()
        #: Min-heap of (arrival_time, request_id, request): FIFO by arrival,
        #: submission order breaking ties, with O(log n) admission peeks.
        self._waiting: List[Tuple[float, int, Request]] = []
        self._active: Dict[int, _ActiveRequest] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Queue interface
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[Request, np.ndarray],
        *,
        max_new_tokens: Optional[int] = None,
        arrival_time: float = 0.0,
    ) -> int:
        """Enqueue a request (or a bare prompt) and return its request id.

        Parameters
        ----------
        request : Request or ndarray
            A full :class:`Request`, or just its prompt token array.
        max_new_tokens, arrival_time
            Conveniences for the bare-prompt form; passing either alongside
            a full :class:`Request` is rejected (set the fields on the
            request instead) so overrides can never be silently dropped.

        Returns
        -------
        int
            The request id (monotonically increasing submission order).

        Raises
        ------
        ConfigurationError
            If the prompt is empty, contains out-of-vocabulary ids, leaves
            no room below ``max_seq_len``, or can never fit the KV pool.
        """
        if isinstance(request, Request):
            if max_new_tokens is not None or arrival_time != 0.0:
                raise ConfigurationError(
                    "pass max_new_tokens/arrival_time on the Request itself, "
                    "not as submit() keywords alongside one"
                )
            max_new_tokens = request.max_new_tokens
            arrival_time = request.arrival_time
            request = request.prompt
        # The scheduler owns its queue entries: an internal Request is built
        # even from a full Request so the caller's object is never mutated
        # (it can be resubmitted, or submitted to several schedulers).
        prompt = np.asarray(request, dtype=np.int64).reshape(-1)
        admitted = Request(prompt=prompt, max_new_tokens=max_new_tokens, arrival_time=arrival_time)
        model_config = self.runner.config
        if prompt.size == 0:
            raise ConfigurationError("prompts must contain at least one token")
        if prompt.min() < 0 or prompt.max() >= model_config.vocab_size:
            raise ConfigurationError("prompt tokens must be valid vocabulary ids")
        if len(prompt) >= model_config.max_seq_len:
            raise ConfigurationError(
                f"prompt ({len(prompt)} tokens) leaves no room below "
                f"max_seq_len {model_config.max_seq_len}"
            )
        if max_new_tokens is not None and max_new_tokens < 1:
            raise ConfigurationError("max_new_tokens must be >= 1")
        needed = self.cache.blocks_needed(self._reserved_capacity(admitted))
        if needed > self.cache.num_blocks:
            raise ConfigurationError(
                f"request needs {needed} KV blocks but the pool only has "
                f"{self.cache.num_blocks}; enlarge num_blocks or block_size"
            )
        admitted.request_id = self._next_request_id
        self._next_request_id += 1
        heapq.heappush(self._waiting, (admitted.arrival_time, admitted.request_id, admitted))
        return admitted.request_id

    @property
    def has_pending(self) -> bool:
        """True while any request is waiting or active."""
        return bool(self._waiting or self._active)

    @property
    def num_active(self) -> int:
        """Requests currently holding a slot."""
        return len(self._active)

    @property
    def num_waiting(self) -> int:
        """Requests queued but not yet admitted."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def step(self) -> List[RequestOutput]:
        """Run one scheduler iteration: admit + prefill, then one decode.

        With an empty batch and every waiting arrival still in the future,
        the clock jumps to the next arrival (recorded as ``stats.idle_time``)
        so a ``while scheduler.has_pending: scheduler.step()`` loop always
        makes progress.

        Returns
        -------
        list of RequestOutput
            Requests that finished during this iteration (possibly empty).
        """
        if not self._active and self._waiting:
            next_arrival = self._waiting[0][0]
            if next_arrival > self.now:
                self.stats.idle_time += next_arrival - self.now
                self.now = next_arrival
        finished: List[RequestOutput] = []
        self._admit(finished)
        if self._active:
            self._decode_iteration(finished)
        return finished

    def run(self) -> List[RequestOutput]:
        """Serve until every submitted request has finished.

        When the batch is empty and the next arrival lies in the future,
        :meth:`step` jumps the clock forward (the gap is recorded as
        ``stats.idle_time``).

        Returns
        -------
        list of RequestOutput
            All outputs, in completion order (sort by ``request_id`` for
            submission order).
        """
        outputs: List[RequestOutput] = []
        while self.has_pending:
            before = (self.now, self.stats.total_iterations, len(self._waiting), len(self._active))
            outputs.extend(self.step())
            after = (self.now, self.stats.total_iterations, len(self._waiting), len(self._active))
            if before == after:  # pragma: no cover - defensive livelock guard
                raise ResourceExhaustedError(
                    "scheduler made no progress; the KV pool is too small for "
                    "the waiting request"
                )
        return outputs

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @classmethod
    def blocks_for_requests(
        cls,
        model_config,
        prompt_lengths,
        config: GenerationConfig,
        block_size: int = 16,
    ) -> int:
        """KV blocks an exactly-sized pool needs to hold all requests at once.

        Uses the same budget/reservation formulas as admission, so a pool of
        this size can never be under-provisioned for the given prompts.

        Parameters
        ----------
        model_config : TransformerConfig
            Supplies ``max_seq_len``.
        prompt_lengths : iterable of int
            One entry per request.
        config : GenerationConfig
            Supplies the shared ``max_new_tokens`` budget.
        block_size : int
            Token positions per block.

        Returns
        -------
        int
        """
        total = 0
        for prompt_len in prompt_lengths:
            budget = _token_budget(prompt_len, config.max_new_tokens, model_config.max_seq_len)
            total += -(-_reserved_positions(prompt_len, budget) // block_size)
        return max(total, 1)

    def _budget(self, request: Request) -> int:
        """Token budget: per-request override, clipped at max_seq_len."""
        configured = request.max_new_tokens or self.config.max_new_tokens
        return _token_budget(len(request.prompt), configured, self.runner.config.max_seq_len)

    def _reserved_capacity(self, request: Request) -> int:
        """Cache positions the request can ever write (prompt + budget - 1)."""
        return _reserved_positions(len(request.prompt), self._budget(request))

    def _admit(self, finished: List[RequestOutput]) -> None:
        """FIFO admission: prefill waiting requests into free slots.

        Admission is strictly in (arrival_time, request_id) order and stops
        at the first request that cannot start — a head-of-line request
        waiting for blocks is never overtaken by a cheaper later one, which
        is what makes starvation impossible.
        """
        if self.policy == "gang" and self._active:
            return
        while self._waiting and len(self._active) < self.max_batch_size:
            arrival, _, head = self._waiting[0]
            if arrival > self.now:
                break
            needed = self.cache.blocks_needed(self._reserved_capacity(head))
            if needed > self.cache.free_block_count:
                break
            heapq.heappop(self._waiting)
            self._prefill(head, finished)

    def _prefill(self, request: Request, finished: List[RequestOutput]) -> None:
        """Reserve a slot, prefill the prompt, and sample the first token."""
        slot = self.cache.reserve(self._reserved_capacity(request))
        state = _ActiveRequest(
            request, slot, self._budget(request), self.config.seed, admitted_at=self.now
        )
        prompt = request.prompt
        view = self.cache.view([slot])
        logits = self.runner.prefill(prompt[None, :], np.array([len(prompt)]), view)
        view.commit()
        self.stats.prefill_iterations += 1
        self.now += 1.0
        self._active[state.slot] = state
        self.stats.peak_active = max(self.stats.peak_active, len(self._active))
        self._consume_logits(state, logits[0], finished)

    def _decode_iteration(self, finished: List[RequestOutput]) -> None:
        """One batched decode step over every active slot."""
        slots = list(self._active)
        states = [self._active[slot] for slot in slots]
        tokens = np.array([state.next_token for state in states], dtype=np.int64)
        view = self.cache.view(slots)
        logits = self.runner.decode_step(tokens, view)
        view.commit()
        self.stats.decode_iterations += 1
        self.stats.decode_slot_steps += len(slots)
        self.now += 1.0
        for row, state in enumerate(states):
            self._consume_logits(state, logits[row], finished)

    def _consume_logits(
        self, state: _ActiveRequest, logits_row: np.ndarray, finished: List[RequestOutput]
    ) -> None:
        """Sample the next token for one request and retire it if done."""
        token = _sample_token(logits_row, self.config, state.rng)
        state.generated.append(token)
        if self.record_logits:
            state.logits.append(np.asarray(logits_row, dtype=np.float64).copy())
        state.next_token = token
        self.stats.generated_tokens += 1
        eos = self.config.eos_token
        if eos is not None and token == eos:
            self._finalize(state, "eos", finished)
        elif len(state.generated) >= state.budget:
            self._finalize(state, "length", finished)

    def _finalize(self, state: _ActiveRequest, reason: str, finished: List[RequestOutput]) -> None:
        """Evict a finished request: free its blocks, emit its output."""
        self._active.pop(state.slot, None)
        self.cache.free(state.slot)
        continuation = np.array(state.generated, dtype=np.int64)
        vocab = self.runner.config.vocab_size
        step_logits = (
            np.stack(state.logits)
            if state.logits
            else np.zeros((0, vocab), dtype=np.float64)
        )
        self.stats.completed_requests += 1
        finished.append(
            RequestOutput(
                request_id=int(state.request.request_id),
                prompt=state.request.prompt,
                sequence=np.concatenate([state.request.prompt, continuation]),
                generated=continuation,
                prompt_length=len(state.request.prompt),
                step_logits=step_logits,
                num_steps=len(continuation),
                finish_reason=reason,
                admitted_at=state.admitted_at,
                finished_at=self.now,
            )
        )
