"""Continuous-batching scheduler: the serving loop behind every policy.

PR 1's engine ran one fixed batch end to end: every request occupied its
batch lane until the *slowest* request finished, so a single long generation
stalled every already-finished slot.  The :class:`Scheduler` instead treats
the batch as a set of *slots* over a shared :class:`~repro.serve.paged_kv_cache.PagedKVCache`:

* requests are **admitted** from a FIFO queue the moment a slot and enough
  KV blocks are free,
* each **decode iteration** runs one batched
  :meth:`~repro.models.inference.TransformerRunner.decode_step` over exactly
  the currently active slots (ragged positions are fine — every slot sits at
  its own sequence position; for Tender runners this scattered-position
  batch is exactly the shape the fast Index-Buffer kernels of
  :mod:`repro.core.kernels` are built for, so the decode loop pays one
  packed-table gather per projection instead of a Python loop over row
  chunks), and
* finished requests are **evicted mid-flight**, their blocks are reclaimed
  immediately, and the freed slot is backfilled by the next waiting request
  on the following iteration.

Two serving-cost levers ride on top of that loop:

* ``prefix_cache=True`` — **shared-prompt KV reuse**.  At admission the
  prompt is matched against the pool's radix of published block identities
  (:meth:`PagedKVCache.match_prefix`); every fully matched block is mapped
  into the new slot by reference instead of being recomputed, and only the
  prompt *suffix* (always at least the final token, whose logits seed
  sampling) is prefilled.  Completed prefills publish their blocks back
  into the radix, freed requests leave them matchable on the LRU free-list,
  and writes into still-shared blocks fork a private copy (copy-on-write).
* ``prefill_chunk=N`` — **chunked prefill**.  Instead of running a newly
  admitted prompt's whole prefill in one forward (stalling every active
  decode behind it), each :meth:`step` spends at most ``N`` prompt tokens
  on the head-of-line prefilling request and then runs its decode iteration
  as usual — active requests advance every step while long prompts trickle
  in.

Two scheduling policies share this loop (`policy=`):

* ``"continuous"`` — admit whenever capacity frees up (the default), and
* ``"gang"`` — classic static batching: only admit when the batch has fully
  drained.  It exists as the baseline the continuous policy is benchmarked
  against (``benchmarks/bench_generate_decode.py``).

Determinism and parity are load-bearing: each request samples from its *own*
``numpy`` generator seeded with :attr:`GenerationConfig.seed`, and each
prefill chunk runs as its own batch-of-one forward, so a request's output is
independent of what it happens to share the batch with.  For Tender's
integer pipeline the per-request outputs are bit-identical to running the
request alone — *including* with ``prefix_cache=True``: cached KV blocks
hold exactly the values a cold prefill would recompute (integer kernels are
exact and row-independent), so hits, copy-on-write forks, and
evicted-then-recomputed prefixes all leave the token stream unchanged
(``tests/serve/test_prefix_cache.py``).  The FP baseline's logits differ
only by BLAS row-blocking noise (~1e-15) while its sampled tokens stay
identical; Tender ``quantize_attention=True`` derives *dynamic* attention
statistics whose operands legitimately depend on the prefill partitioning,
so under prefix hits or chunking it follows a (deliberately) different
per-chunk quantization schedule — the same scoped exception
``tests/serve/test_decode_parity.py`` documents for decode vs full forward.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models.inference import TransformerRunner
from repro.serve.paged_kv_cache import PagedKVCache, SlotBatchView
from repro.serve.spec import SpecConfig, _SpecState


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding parameters shared by every request of a scheduler or batch.

    ``top_k == 0`` selects greedy decoding; ``top_k > 0`` samples from the
    ``top_k`` highest-probability tokens after ``temperature`` scaling.
    Sampling draws from a per-request generator seeded with ``seed``, so a
    request's continuation replays deterministically *and* is independent of
    how it was batched.  Generation stops early for requests that emit
    ``eos_token`` (when set).

    Parameters
    ----------
    max_new_tokens : int
        Token budget per request (capped by the model's ``max_seq_len``).
        Individual requests may lower it via ``Request.max_new_tokens``.
    top_k : int
        ``0`` for greedy argmax decoding, ``k > 0`` for top-k sampling.
    temperature : float
        Softmax temperature applied before top-k sampling.
    seed : int
        Seed of each request's private sampling generator.
    eos_token : int, optional
        Token id that terminates a request early (kept in the output).

    Raises
    ------
    ConfigurationError
        If any field is outside its valid range.
    """

    max_new_tokens: int = 32
    top_k: int = 0
    temperature: float = 1.0
    seed: int = 0
    eos_token: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ConfigurationError("max_new_tokens must be >= 1")
        if self.top_k < 0:
            raise ConfigurationError("top_k must be >= 0 (0 = greedy)")
        if self.temperature <= 0.0:
            raise ConfigurationError("temperature must be > 0")


@dataclass
class Request:
    """One generation request submitted to a :class:`Scheduler`.

    Parameters
    ----------
    prompt : ndarray
        Token ids, shape ``(prompt_len,)``.
    max_new_tokens : int, optional
        Per-request budget override of the scheduler's
        :attr:`GenerationConfig.max_new_tokens`.
    arrival_time : float
        Scheduler-clock tick at which the request becomes admissible (the
        clock advances by one per model forward pass).  ``0.0`` means
        "available immediately".
    request_id : int, optional
        Set on the scheduler's internal copy by :meth:`Scheduler.submit`
        (which also returns it); a caller-constructed request is never
        mutated and may be resubmitted freely.
    priority : int
        Priority class: **lower values are more urgent**.  Admission is
        ordered by ``(priority, arrival_time, request_id)``, and with
        ``preemption=True`` an inadmissible head may evict a strictly
        lower-priority (higher-valued) victim.  Default ``0``.
    deadline : float, optional
        Absolute scheduler-clock tick by which admission must have begun.
        A request still waiting when the clock passes its deadline finishes
        with ``finish_reason="expired"`` and no generated tokens.  Deadlines
        never cancel a request that already started (or was preempted after
        starting) — its partial work is kept.  ``None`` (default) never
        expires.
    """

    prompt: np.ndarray
    max_new_tokens: Optional[int] = None
    arrival_time: float = 0.0
    request_id: Optional[int] = None
    priority: int = 0
    deadline: Optional[float] = None


@dataclass
class RequestOutput:
    """Everything the scheduler produced for one finished request."""

    #: Id assigned at submission (submission order).
    request_id: int
    #: The request's prompt, as submitted.
    prompt: np.ndarray
    #: Prompt followed by the kept continuation.
    sequence: np.ndarray
    #: Only the generated tokens (truncated at eos, inclusive).
    generated: np.ndarray
    #: Number of prompt tokens.
    prompt_length: int
    #: Logits behind each generated token, ``(num_steps, vocab)`` — empty
    #: when the scheduler was built with ``record_logits=False``.
    step_logits: np.ndarray
    #: Decode steps this request took (``len(generated)``).
    num_steps: int
    #: ``"eos"``, ``"length"``, ``"expired"`` (deadline passed while still
    #: waiting), ``"cancelled"`` (caller withdrew the request), or
    #: ``"degraded"`` (shed under resource pressure instead of crashing the
    #: serving loop — see :meth:`Scheduler.shed` and ``repro.serve.cluster``).
    finish_reason: str
    #: Scheduler-clock ticks at admission (prefill start) and completion.
    #: ``admitted_at`` is ``-1.0`` for requests that expired unadmitted.
    admitted_at: float = 0.0
    finished_at: float = 0.0
    #: Prompt tokens whose KV came from the prefix cache (0 when disabled).
    prefix_hit_tokens: int = 0
    #: Draft tokens proposed / accepted for this request (0 when speculation
    #: is disabled).
    spec_proposed_tokens: int = 0
    spec_accepted_tokens: int = 0
    #: Priority class the request was submitted with (lower = more urgent).
    priority: int = 0
    #: Scheduler-clock tick the request arrived, as submitted.
    arrival_time: float = 0.0
    #: Tick the first token was committed (``-1.0`` if none ever was).
    first_token_at: float = -1.0
    #: Times the request was preempted and replayed before finishing.
    preemptions: int = 0
    #: Structured terminal reason behind a ``"degraded"`` finish —
    #: ``"shed"`` (dropped under resource pressure),
    #: ``"retry_budget_exhausted"`` (recovery attempts ran out), or
    #: ``"no_healthy_replica"`` (nowhere left to recover to).  ``None`` for
    #: every healthy finish.
    failure_cause: Optional[str] = None
    #: Recovery attempts the request consumed before this output (pool
    #: replays after replica/shard failures; 0 on an undisturbed path).
    retries: int = 0


@dataclass
class SchedulerStats:
    """Iteration accounting of one scheduler run (deterministic, not wall time)."""

    #: Prefill forward passes executed (one per prefill chunk).
    prefill_iterations: int = 0
    #: Prompt tokens actually computed by prefill forwards.
    prefill_tokens: int = 0
    #: Prompt tokens served from the prefix cache instead of being computed.
    prefix_hit_tokens: int = 0
    #: Batched decode forward passes executed.
    decode_iterations: int = 0
    #: Sum over decode iterations of the number of active slots.
    decode_slot_steps: int = 0
    #: Tokens sampled (across prefill, decode, and verification logits).
    generated_tokens: int = 0
    #: Draft tokens proposed by the speculative drafter (0 when disabled).
    spec_proposed_tokens: int = 0
    #: Draft tokens the target model's sampling rule accepted.
    spec_accepted_tokens: int = 0
    #: Multi-token verification forwards executed (a subset of
    #: ``decode_iterations``).
    spec_verify_iterations: int = 0
    #: Requests completed (finish reason ``"eos"`` or ``"length"``).
    completed_requests: int = 0
    #: Largest number of concurrently admitted requests (prefilling + decoding).
    peak_active: int = 0
    #: Clock ticks spent with an empty batch waiting for the next arrival.
    idle_time: float = 0.0
    #: Requests evicted mid-flight to make room for a higher-priority head
    #: (each re-queued for prompt replay; counts evictions, not requests).
    preemptions: int = 0
    #: Requests that expired waiting (deadline passed before admission).
    expired_requests: int = 0
    #: Requests withdrawn via :meth:`Scheduler.cancel`.
    cancelled_requests: int = 0
    #: Requests shed under resource pressure via :meth:`Scheduler.shed`.
    degraded_requests: int = 0
    #: ``"degraded"`` finishes tallied by structured failure cause
    #: (``"shed"`` here; the replica pool adds its recovery causes).
    degraded_causes: Dict[str, int] = field(default_factory=dict)
    #: Per-priority-class time-to-first-token samples, in scheduler ticks
    #: (``first_token_at - arrival_time``), appended as requests finish.
    ttft_by_class: Dict[int, List[float]] = field(default_factory=dict)
    #: Per-priority-class time-per-output-token samples, in scheduler ticks
    #: (``(finished_at - first_token_at) / (num_steps - 1)``; single-token
    #: requests contribute no sample).
    tpot_by_class: Dict[int, List[float]] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        """Model forward passes executed (prefill + decode)."""
        return self.prefill_iterations + self.decode_iterations

    def tokens_per_iteration(self) -> float:
        """Generated tokens per forward pass — the batching-efficiency metric.

        A scheduler that has not run a forward yet reports ``0.0`` rather
        than dividing by zero, matching :meth:`prefix_hit_rate`.
        """
        if self.total_iterations == 0:
            return 0.0
        return self.generated_tokens / self.total_iterations

    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the prefix cache.

        A scheduler that has not prefilled anything yet (fresh, or idle
        between traces) reports ``0.0`` rather than dividing by zero.
        """
        looked_up = self.prefill_tokens + self.prefix_hit_tokens
        if looked_up == 0:
            return 0.0
        return self.prefix_hit_tokens / looked_up

    def spec_accept_rate(self) -> float:
        """Fraction of proposed draft tokens accepted (0.0 before any draft)."""
        if self.spec_proposed_tokens == 0:
            return 0.0
        return self.spec_accepted_tokens / self.spec_proposed_tokens

    def ttft_values(self, priority: Optional[int] = None) -> List[float]:
        """TTFT samples in scheduler ticks (one class, or all classes merged)."""
        if priority is not None:
            return list(self.ttft_by_class.get(int(priority), []))
        merged: List[float] = []
        for values in self.ttft_by_class.values():
            merged.extend(values)
        return merged

    def ttft_percentile(self, q: float, priority: Optional[int] = None) -> float:
        """The ``q``-th percentile TTFT of a class in ticks.

        ``q`` is a fraction in [0, 1] (0 = minimum, 0.5 = median, 1 =
        maximum, linear interpolation between samples).  Edge semantics are
        explicit rather than inherited from numpy quirks: with **no
        samples** — an empty class filter included — the result is ``0.0``
        (matching :meth:`mean_ttft`); with a **single sample** every ``q``
        returns that sample.

        Raises
        ------
        ValueError
            If ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction q must be in [0, 1], got {q}")
        values = self.ttft_values(priority)
        if not values:
            return 0.0
        if len(values) == 1:
            return float(values[0])
        return float(np.percentile(np.asarray(values, dtype=np.float64), 100.0 * q))

    def mean_ttft(self, priority: Optional[int] = None) -> float:
        """Mean TTFT of a class in scheduler ticks (0.0 if no samples)."""
        values = self.ttft_values(priority)
        if not values:
            return 0.0
        return float(np.mean(values))

    def mean_tpot(self, priority: Optional[int] = None) -> float:
        """Mean time-per-output-token of a class in ticks (0.0 if no samples)."""
        if priority is not None:
            values = self.tpot_by_class.get(int(priority), [])
        else:
            values = [v for samples in self.tpot_by_class.values() for v in samples]
        if not values:
            return 0.0
        return float(np.mean(values))

    #: Fixed TTFT histogram bounds (scheduler ticks) used by :meth:`publish`.
    #: Shared across replicas so per-replica histograms merge exactly.
    TTFT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

    def publish(self, registry, prefix: str = "scheduler") -> None:
        """Publish these counters into a :class:`repro.obs.MetricsRegistry`.

        Scalar fields become counters named ``<prefix>.<field>``, the
        per-cause degradation tally becomes ``<prefix>.degraded.<cause>``,
        and the TTFT samples feed a fixed-bucket ``<prefix>.ttft_ticks``
        histogram (bounds :attr:`TTFT_BUCKETS`) so per-replica registries
        merge into fleet totals without rebinning.  Counters accumulate:
        publishing twice doubles them — snapshot/delta around each publish
        (or use a fresh registry) when diffing phases.
        """
        for name in (
            "prefill_iterations",
            "prefill_tokens",
            "prefix_hit_tokens",
            "decode_iterations",
            "decode_slot_steps",
            "generated_tokens",
            "spec_proposed_tokens",
            "spec_accepted_tokens",
            "spec_verify_iterations",
            "completed_requests",
            "preemptions",
            "expired_requests",
            "cancelled_requests",
            "degraded_requests",
        ):
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.gauge(f"{prefix}.peak_active").set(self.peak_active)
        registry.gauge(f"{prefix}.idle_time").set(self.idle_time)
        for cause, count in sorted(self.degraded_causes.items()):
            registry.counter(f"{prefix}.degraded.{cause}").inc(count)
        histogram = registry.histogram(f"{prefix}.ttft_ticks", self.TTFT_BUCKETS)
        for value in self.ttft_values():
            histogram.observe(value)


@dataclass
class RequestCheckpoint:
    """Resumable snapshot of one in-flight request, exported at release time.

    A checkpoint is everything another :class:`Scheduler` needs to continue
    the request *bit-identically*: the prompt, the tokens committed so far,
    the recorded per-step logits behind them, and the exact state of the
    request's private sampling generator.  Re-admission
    (:meth:`Scheduler.submit_checkpoint`) rides the same free-then-replay
    path preemption uses — re-prefill ``prompt + generated[:-1]``, keep the
    final sampled token pending, never re-sample — so a request recovered
    onto a healthy replica after a crash produces exactly the tokens (and
    committed-position logits) an uninterrupted run would have.

    Checkpoints are the recovery primitive of ``repro.serve.cluster``; the
    fields mirror what :class:`Request` and :class:`_ActiveRequest` carry.
    """

    #: The prompt, as originally submitted.
    prompt: np.ndarray
    #: Tokens committed before the checkpoint (possibly empty).
    generated: List[int]
    #: Exported state of the per-request sampling generator
    #: (``rng.bit_generator.state``) at checkpoint time.
    rng_state: Dict[str, Any]
    #: Recorded logits behind each committed token (empty when the source
    #: scheduler ran with ``record_logits=False``).
    step_logits: List[np.ndarray]
    #: Per-request budget override carried from the original submission.
    max_new_tokens: Optional[int]
    #: Priority class, arrival tick, and admission deadline, as submitted.
    priority: int
    arrival_time: float
    deadline: Optional[float]
    #: Request id on the *source* scheduler (for caller-side bookkeeping;
    #: re-admission assigns a fresh id on the target).
    request_id: int
    #: Preemptions the request survived before the checkpoint.
    preemptions: int
    #: Prefix-cache hits accumulated before the checkpoint.
    prefix_hit_tokens: int = 0
    #: Tick the first token was committed on the source (-1.0 if none).
    first_token_at: float = -1.0
    #: Recovery attempts already spent on this request (bumped by the
    #: replica pool each time it re-admits the checkpoint after a failure).
    retries: int = 0

    @property
    def started(self) -> bool:
        """True once the request has committed at least one token."""
        return bool(self.generated)


class _ActiveRequest:
    """Book-keeping for one admitted, not-yet-finished request."""

    __slots__ = (
        "request",
        "slot",
        "budget",
        "rng",
        "generated",
        "logits",
        "next_token",
        "admitted_at",
        "first_token_at",
        "preemptions",
        "prefill_pos",
        "prefix_hit_tokens",
        "prefill_view",
        "replay",
        "spec",
    )

    def __init__(self, request: Request, slot: int, budget: int, seed: int, admitted_at: float) -> None:
        self.request = request
        self.slot = slot
        self.budget = budget
        self.rng = np.random.default_rng(seed)
        self.generated: List[int] = []
        self.logits: List[np.ndarray] = []
        self.next_token = -1
        self.admitted_at = admitted_at
        #: Tick the first token was committed (-1.0 until then); survives
        #: preemption so TTFT reflects the *first* admission.
        self.first_token_at = -1.0
        #: Times this request has been preempted and re-queued.
        self.preemptions = 0
        self.prefill_pos = 0
        self.prefix_hit_tokens = 0
        #: Batch-of-one view reused across this request's prefill chunks.
        self.prefill_view: Optional["SlotBatchView"] = None
        #: Tokens the current prefill must cover: the prompt, or — after a
        #: preemption mid-decode — prompt + generated[:-1] (the last sampled
        #: token was never fed to the model, so it stays pending).
        self.replay: Optional[np.ndarray] = None
        #: Per-request adaptive speculation state (None when disabled).
        self.spec: Optional[_SpecState] = None


class _QueueEntry:
    """One waiting-queue entry: the request plus optional preempted state."""

    __slots__ = ("request", "resume")

    def __init__(self, request: Request, resume: Optional[_ActiveRequest] = None) -> None:
        self.request = request
        #: Preserved book-keeping of a preempted request (None for fresh
        #: submissions): generated tokens, logits, RNG, spec state.
        self.resume = resume

    def replay_tokens(self) -> np.ndarray:
        """Tokens the next prefill must cover when this entry is admitted.

        A fresh request replays its prompt.  A request preempted after
        sampling ``G`` tokens replays ``prompt + generated[:G-1]``: the KV
        cache of an active request always trails its sampled stream by one
        token (the newest token is fed by the *next* decode step), so the
        final sampled token stays pending rather than being recomputed —
        resuming never re-samples, which is what keeps preempted outputs
        bit-identical to unpreempted runs.
        """
        if self.resume is None or not self.resume.generated:
            return self.request.prompt
        return np.concatenate(
            [
                self.request.prompt,
                np.asarray(self.resume.generated[:-1], dtype=np.int64),
            ]
        )


def _token_budget(prompt_len: int, max_new_tokens: int, max_seq_len: int) -> int:
    """Per-request token budget: the configured budget, clipped at max_seq_len."""
    return int(min(max_new_tokens, max_seq_len - prompt_len))


def _reserved_positions(prompt_len: int, budget: int) -> int:
    """Cache positions a request can ever write (prompt + budget - 1, >= 1)."""
    return max(prompt_len + budget - 1, 1)


def _sample_token(logits_row: np.ndarray, config: GenerationConfig, rng: np.random.Generator) -> int:
    """Draw one token for one request (greedy or seeded top-k).

    The top-k cut uses a stable descending sort (equal logits keep ascending
    token order), so which tokens sit at a tied k-boundary — and which token
    a given RNG draw yields — is a function of the logits alone, never of
    partition order.  Bit-identical-across-paths guarantees would otherwise
    silently depend on ties not happening.
    """
    if config.top_k == 0:
        return int(np.argmax(logits_row))
    scaled = logits_row / config.temperature
    k = min(config.top_k, scaled.shape[-1])
    top_indices = np.argsort(-scaled, kind="stable")[:k]
    top_scores = scaled[top_indices] - scaled[top_indices].max()
    probabilities = np.exp(top_scores)
    probabilities /= probabilities.sum()
    return int(top_indices[rng.choice(k, p=probabilities)])


class Scheduler:
    """Continuous-batching serving loop over a paged KV cache.

    Parameters
    ----------
    runner : TransformerRunner
        The executor-backed model (any quantization scheme).
    config : GenerationConfig, optional
        Decoding parameters shared by all requests (default: greedy, 32
        tokens).
    max_batch_size : int
        Maximum concurrently admitted requests (prefilling + decoding).
    block_size : int
        Token positions per KV block (see :class:`PagedKVCache`).
    num_blocks : int, optional
        KV pool size; defaults to enough blocks for ``max_batch_size``
        requests at ``max_seq_len``.
    policy : {"continuous", "gang"}
        ``"continuous"`` backfills freed slots immediately; ``"gang"`` only
        admits into a fully drained batch (static batching).
    record_logits : bool
        Keep per-step logits in each :class:`RequestOutput` (disable for
        long benchmark traces to save memory).
    prefix_cache : bool
        Reuse published KV blocks across requests that share a prompt
        prefix (see the module docstring).  Off by default; for Tender's
        integer pipeline outputs are bit-identical either way.
    prefill_chunk : int, optional
        Prompt-token budget each :meth:`step` may spend on prefilling
        before running its decode iteration.  ``None`` (default) prefills a
        whole admitted prompt in one forward, as before; a small value
        keeps active decodes advancing while long prompts trickle in.
    speculation : SpecConfig, optional
        Enable speculative decoding (see :mod:`repro.serve.spec`): each
        decode iteration consults the configured drafter per request and
        verifies whole draft runs in multi-token forwards, committing
        through the request's ordinary sampling rule so the token stream
        (and the logits behind every committed token) match non-speculative
        decoding exactly for Tender implicit/explicit.  Each iteration runs
        at most one verification forward: every capable request joins it at
        the depth of the longest proposal, shorter or absent proposals
        padded with repeated-token guesses; draft lengths adapt per request
        via an accept-rate EMA.  Chunked prefill interleaves unchanged —
        speculation only alters the decode half of each :meth:`step`.
    preemption : bool
        Allow admission to evict a strictly lower-priority victim when the
        head of the queue cannot start (no free slot, or
        :class:`ResourceExhaustedError` from the block pool).  The victim's
        blocks are released to the LRU free-list (published blocks stay
        matchable, so resume usually re-maps its prefix instead of
        recomputing it) and the victim is re-queued for prompt replay; its
        token stream is bit-identical to an unpreempted run because resume
        replays already-sampled tokens without re-sampling.  Incompatible
        with ``policy="gang"``.
    on_token : callable, optional
        ``on_token(request_id, token)`` invoked synchronously for every
        committed token, in commit order — the streaming hook
        :class:`~repro.serve.async_engine.AsyncEngine` feeds per-request
        iterators from.
    tracer : repro.obs.Tracer, optional
        Opt-in request-lifecycle tracing (see :mod:`repro.obs`).  When set,
        the scheduler emits ``request.*`` instants and ``prefill_chunk`` /
        ``decode_step`` / ``verify_step`` spans onto ``trace_track``, and
        shares the tracer with its :class:`PagedKVCache` for ``cache.*``
        events.  The default ``None`` disables tracing completely — every
        emit site is guarded, so the disabled path builds no spans and no
        attribute dicts (measured and gated in ``tools/check_perf_smoke.py``).
    trace_track : str, optional
        Trace track (Perfetto process row) this scheduler emits onto;
        defaults to ``"scheduler"``.  The replica pool names one track per
        replica so fleet traces keep replicas on separate rows.

    Raises
    ------
    ConfigurationError
        For invalid parameters or un-servable requests at :meth:`submit`.

    Examples
    --------
    >>> scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=16))
    >>> scheduler.submit(prompt_tokens)
    0
    >>> outputs = scheduler.run()
    >>> outputs[0].generated
    array([...])
    """

    def __init__(
        self,
        runner: TransformerRunner,
        config: Optional[GenerationConfig] = None,
        max_batch_size: int = 8,
        block_size: int = 16,
        num_blocks: Optional[int] = None,
        policy: str = "continuous",
        record_logits: bool = True,
        prefix_cache: bool = False,
        prefill_chunk: Optional[int] = None,
        speculation: Optional[SpecConfig] = None,
        preemption: bool = False,
        on_token: Optional[Callable[[int, int], None]] = None,
        tracer=None,
        trace_track: Optional[str] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if policy not in ("continuous", "gang"):
            raise ConfigurationError(f"unknown scheduling policy {policy!r}")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ConfigurationError("prefill_chunk must be >= 1 (or None to disable)")
        if speculation is not None and not isinstance(speculation, SpecConfig):
            raise ConfigurationError("speculation must be a SpecConfig (or None)")
        if preemption and policy == "gang":
            raise ConfigurationError(
                "preemption requires the continuous policy (gang batches "
                "drain fully before admitting, so there is nothing to preempt into)"
            )
        self.preemption = bool(preemption)
        self.on_token = on_token
        self.runner = runner
        self.config = config or GenerationConfig()
        self.max_batch_size = int(max_batch_size)
        self.policy = policy
        self.record_logits = record_logits
        self.prefix_cache = bool(prefix_cache)
        self.prefill_chunk = None if prefill_chunk is None else int(prefill_chunk)
        self.speculation = speculation
        model_config = runner.config
        if num_blocks is None:
            self.cache = PagedKVCache.for_model(model_config, max_batch_size, block_size)
        else:
            self.cache = PagedKVCache(
                num_layers=model_config.num_layers,
                num_heads=model_config.num_heads,
                d_head=model_config.d_head,
                block_size=block_size,
                num_blocks=num_blocks,
            )
        self.tracer = tracer
        self.trace_track = trace_track if trace_track is not None else "scheduler"
        #: Correlation ids by request id — populated only while tracing, so
        #: the disabled path never touches the dict.
        self._trace_corrs: Dict[int, str] = {}
        # The cache reports prefix hits and block allocations onto the same
        # track, so a replica's cache activity renders beside its requests.
        self.cache.tracer = tracer
        self.cache.trace_track = self.trace_track
        self.now = 0.0
        self.stats = SchedulerStats()
        #: Min-heap of (priority, arrival_time, request_id, entry) over
        #: *arrived* requests: most-urgent class first, FIFO by arrival
        #: within a class, submission order breaking ties.
        self._waiting: List[Tuple[int, float, int, _QueueEntry]] = []
        #: Min-heap of (arrival_time, request_id, entry) over requests whose
        #: arrival lies in the future; promoted into ``_waiting`` (and into
        #: priority order) once the clock reaches them.
        self._future: List[Tuple[float, int, _QueueEntry]] = []
        #: Admitted requests whose prompts are not fully prefilled yet, FIFO.
        self._prefilling: List[_ActiveRequest] = []
        self._active: Dict[int, _ActiveRequest] = {}
        #: Decode-batch view reused across iterations while the active slot
        #: set is unchanged (its lengths and block index persist in place).
        self._decode_view: Optional[SlotBatchView] = None
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Queue interface
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[Request, np.ndarray],
        *,
        max_new_tokens: Optional[int] = None,
        arrival_time: float = 0.0,
        priority: int = 0,
        deadline: Optional[float] = None,
        trace_corr: Optional[str] = None,
    ) -> int:
        """Enqueue a request (or a bare prompt) and return its request id.

        Parameters
        ----------
        request : Request or ndarray
            A full :class:`Request`, or just its prompt token array.
        max_new_tokens, arrival_time, priority, deadline
            Conveniences for the bare-prompt form; passing any alongside
            a full :class:`Request` is rejected (set the fields on the
            request instead) so overrides can never be silently dropped.
        trace_corr : str, optional
            Correlation id stamped on every trace event this request emits
            (default ``"r<request_id>"``).  The replica pool passes its
            pool-level id here so one request's lifecycle stays traceable
            across replica hops.  Ignored while tracing is disabled.

        Returns
        -------
        int
            The request id (monotonically increasing submission order).

        Raises
        ------
        ConfigurationError
            If the prompt is empty, contains out-of-vocabulary ids, leaves
            no room below ``max_seq_len``, can never fit the KV pool, or
            the deadline precedes the arrival.
        """
        if isinstance(request, Request):
            if (
                max_new_tokens is not None
                or arrival_time != 0.0
                or priority != 0
                or deadline is not None
            ):
                raise ConfigurationError(
                    "pass max_new_tokens/arrival_time/priority/deadline on the "
                    "Request itself, not as submit() keywords alongside one"
                )
            max_new_tokens = request.max_new_tokens
            arrival_time = request.arrival_time
            priority = request.priority
            deadline = request.deadline
            request = request.prompt
        # The scheduler owns its queue entries: an internal Request is built
        # even from a full Request so the caller's object is never mutated
        # (it can be resubmitted, or submitted to several schedulers).
        prompt = np.asarray(request, dtype=np.int64).reshape(-1)
        admitted = Request(
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            arrival_time=arrival_time,
            priority=int(priority),
            deadline=None if deadline is None else float(deadline),
        )
        model_config = self.runner.config
        if prompt.size == 0:
            raise ConfigurationError("prompts must contain at least one token")
        if prompt.min() < 0 or prompt.max() >= model_config.vocab_size:
            raise ConfigurationError("prompt tokens must be valid vocabulary ids")
        if len(prompt) >= model_config.max_seq_len:
            raise ConfigurationError(
                f"prompt ({len(prompt)} tokens) leaves no room below "
                f"max_seq_len {model_config.max_seq_len}"
            )
        if max_new_tokens is not None and max_new_tokens < 1:
            raise ConfigurationError("max_new_tokens must be >= 1")
        if admitted.deadline is not None and admitted.deadline < admitted.arrival_time:
            raise ConfigurationError("deadline must not precede arrival_time")
        needed = self.cache.blocks_needed(self._reserved_capacity(admitted))
        if needed > self.cache.num_blocks:
            raise ConfigurationError(
                f"request needs {needed} KV blocks but the pool only has "
                f"{self.cache.num_blocks}; enlarge num_blocks or block_size"
            )
        admitted.request_id = self._next_request_id
        self._next_request_id += 1
        if self.tracer is not None:
            corr = trace_corr if trace_corr is not None else f"r{admitted.request_id}"
            self._trace_corrs[admitted.request_id] = corr
            self.tracer.instant(
                "request.queued",
                self.trace_track,
                corr,
                priority=admitted.priority,
                prompt_len=int(prompt.size),
            )
        self._enqueue(_QueueEntry(admitted))
        return admitted.request_id

    def _corr_for(self, request_id: int) -> str:
        """The correlation id stamped on this request's trace events."""
        return self._trace_corrs.get(request_id, f"r{request_id}")

    def _enqueue(self, entry: _QueueEntry) -> None:
        """Push an entry onto the arrived or future queue, as appropriate."""
        request = entry.request
        if request.arrival_time > self.now:
            heapq.heappush(self._future, (request.arrival_time, request.request_id, entry))
        else:
            heapq.heappush(
                self._waiting,
                (request.priority, request.arrival_time, request.request_id, entry),
            )

    def _promote_arrivals(self) -> None:
        """Move future-queue entries whose arrival has come into priority order."""
        while self._future and self._future[0][0] <= self.now:
            _, _, entry = heapq.heappop(self._future)
            request = entry.request
            heapq.heappush(
                self._waiting,
                (request.priority, request.arrival_time, request.request_id, entry),
            )

    @property
    def has_pending(self) -> bool:
        """True while any request is waiting, prefilling, or decoding."""
        return bool(self._waiting or self._future or self._prefilling or self._active)

    @property
    def num_active(self) -> int:
        """Requests currently holding a slot (prefilling or decoding)."""
        return len(self._active) + len(self._prefilling)

    @property
    def num_waiting(self) -> int:
        """Requests queued (arrived or future) but not yet admitted."""
        return len(self._waiting) + len(self._future)

    def waiting_requests(self) -> List[Request]:
        """The queued (not yet admitted) requests, in submission order.

        A read-only snapshot for policy layers — the replica-pool router
        reads it to pick the lowest-priority victim when shedding load under
        memory pressure.  Mutate the queue only through :meth:`cancel`,
        :meth:`expire`, :meth:`shed`, or :meth:`checkpoint`.
        """
        entries = [item[-1].request for item in self._waiting] + [
            item[-1].request for item in self._future
        ]
        return sorted(entries, key=lambda request: request.request_id)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def step(self) -> List[RequestOutput]:
        """Run one scheduler iteration: admit, prefill, then one decode.

        With an empty batch and every waiting arrival still in the future,
        the clock jumps to the next arrival (recorded as ``stats.idle_time``)
        so a ``while scheduler.has_pending: scheduler.step()`` loop always
        makes progress.

        Returns
        -------
        list of RequestOutput
            Requests that finished during this iteration (possibly empty).
        """
        self._promote_arrivals()
        if not self._active and not self._prefilling and not self._waiting and self._future:
            next_arrival = self._future[0][0]
            self.stats.idle_time += next_arrival - self.now
            self.now = next_arrival
        finished: List[RequestOutput] = []
        self._admit(finished)
        if self.prefill_chunk is not None:
            self._prefill_iteration(finished)
        if self._active:
            self._decode_iteration(finished)
        return finished

    def run(self) -> List[RequestOutput]:
        """Serve until every submitted request has finished.

        When the batch is empty and the next arrival lies in the future,
        :meth:`step` jumps the clock forward (the gap is recorded as
        ``stats.idle_time``).

        Returns
        -------
        list of RequestOutput
            All outputs, in completion order (sort by ``request_id`` for
            submission order).
        """
        outputs: List[RequestOutput] = []
        while self.has_pending:
            before = (
                self.now,
                self.stats.total_iterations,
                len(self._waiting),
                len(self._future),
                len(self._prefilling),
                len(self._active),
            )
            outputs.extend(self.step())
            after = (
                self.now,
                self.stats.total_iterations,
                len(self._waiting),
                len(self._future),
                len(self._prefilling),
                len(self._active),
            )
            if before == after:  # pragma: no cover - defensive livelock guard
                raise ResourceExhaustedError(
                    "scheduler made no progress; the KV pool is too small for "
                    "the waiting request"
                )
        return outputs

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @classmethod
    def blocks_for_requests(
        cls,
        model_config,
        prompts,
        config: GenerationConfig,
        block_size: int = 16,
        prefix_cache: bool = False,
    ) -> int:
        """KV blocks an exactly-sized pool needs to hold all requests at once.

        Uses the same budget/reservation formulas as admission, so a pool of
        this size can never be under-provisioned for the given prompts.
        With ``prefix_cache=True`` (and actual token arrays in ``prompts``)
        blocks holding a shared, fully-covered prompt prefix are counted
        once — matching the sharing the scheduler achieves when requests are
        admitted in submission order — instead of being over-reserved per
        request.

        Parameters
        ----------
        model_config : TransformerConfig
            Supplies ``max_seq_len``.
        prompts : iterable of (int or ndarray)
            One prompt length — or, for prefix-cache sizing, the prompt
            token array itself — per request.
        config : GenerationConfig
            Supplies the shared ``max_new_tokens`` budget.
        block_size : int
            Token positions per block.
        prefix_cache : bool
            Deduplicate shared prompt-prefix blocks across requests.

        Returns
        -------
        int
        """
        total = 0
        seen: set = set()
        for prompt in prompts:
            tokens: Optional[np.ndarray] = None
            if np.ndim(prompt) == 0:
                prompt_len = int(prompt)
            else:
                tokens = np.ascontiguousarray(np.asarray(prompt, dtype=np.int64).reshape(-1))
                prompt_len = len(tokens)
            budget = _token_budget(prompt_len, config.max_new_tokens, model_config.max_seq_len)
            needed = -(-_reserved_positions(prompt_len, budget) // block_size)
            if prefix_cache and tokens is not None:
                # Blocks fully covered by the prompt *and* not holding its
                # final token (which is always recomputed, forcing a private
                # copy) are shared with any earlier identical prefix.
                for full in range(1, (prompt_len - 1) // block_size + 1):
                    key = tokens[: full * block_size].tobytes()
                    if key in seen:
                        needed -= 1
                    else:
                        seen.add(key)
            total += needed
        return max(total, 1)

    def _budget(self, request: Request) -> int:
        """Token budget: per-request override, clipped at max_seq_len."""
        configured = request.max_new_tokens or self.config.max_new_tokens
        return _token_budget(len(request.prompt), configured, self.runner.config.max_seq_len)

    def _reserved_capacity(self, request: Request) -> int:
        """Cache positions the request can ever write (prompt + budget - 1)."""
        return _reserved_positions(len(request.prompt), self._budget(request))

    def _admit(self, finished: List[RequestOutput]) -> None:
        """Priority-ordered admission: reserve and start waiting requests.

        Admission is strictly in (priority, arrival_time, request_id) order
        and stops at the first request that cannot start — a head-of-line
        request waiting for blocks is never overtaken by a cheaper
        same-priority later one, which is what makes starvation within a
        class impossible.  With ``prefix_cache`` the prompt is matched
        against the radix of published block identities first, so a request
        may need far fewer fresh blocks than its reservation suggests.
        With ``preemption=True`` a head that cannot start evicts strictly
        lower-priority victims (worst first) until it fits or none remain.
        """
        self._promote_arrivals()
        self._expire_deadlines(finished)
        if self.policy == "gang" and (self._active or self._prefilling):
            return
        block_size = self.cache.block_size
        while self._waiting:
            entry = self._waiting[0][3]
            head = entry.request
            if self.num_active >= self.max_batch_size:
                if not self._preempt_for(head):
                    break
                continue  # a slot freed; retry the same head
            tokens = entry.replay_tokens()
            matched = self.cache.match_prefix(tokens) if self.prefix_cache else []
            # The final replayed token is always recomputed — its logits (or,
            # on resume, its KV write position) seed the next step — so a hit
            # is capped at len(tokens) - 1 and a fully-matched final block
            # must become a private (COW) copy.
            start = min(len(matched) * block_size, len(tokens) - 1)
            try:
                slot = self.cache.reserve(
                    self._reserved_capacity(head),
                    shared=matched,
                    private_tail=start < len(matched) * block_size,
                )
            except ResourceExhaustedError:
                if self._preempt_for(head):
                    continue  # victim blocks went back to the pool; retry
                break
            heapq.heappop(self._waiting)
            self.cache.set_length(slot, start)
            if entry.resume is not None:
                state = entry.resume
                state.slot = slot
                if state.admitted_at < 0:
                    # A recovered checkpoint's first admission on this
                    # scheduler; preempted entries keep their original tick.
                    state.admitted_at = self.now
            else:
                state = _ActiveRequest(
                    head, slot, self._budget(head), self.config.seed, admitted_at=self.now
                )
                if self.speculation is not None:
                    state.spec = _SpecState(draft_len=self.speculation.draft_tokens)
            state.replay = tokens
            state.prefill_pos = start
            state.prefix_hit_tokens += start
            self.stats.prefix_hit_tokens += start
            if self.tracer is not None:
                self.tracer.instant(
                    "request.admitted",
                    self.trace_track,
                    self._corr_for(head.request_id),
                    slot=slot,
                    prefix_hit=start,
                    replay=entry.resume is not None,
                )
            self._prefilling.append(state)
            self.stats.peak_active = max(self.stats.peak_active, self.num_active)
            if self.prefill_chunk is None:
                # Unchunked serving: the whole remaining prompt is prefilled
                # in one forward at admission, exactly as before this PR.
                self._advance_prefill(state, len(tokens) - start, finished)

    def _expire_deadlines(self, finished: List[RequestOutput]) -> None:
        """Retire waiting requests whose admission deadline has passed.

        Only never-started requests expire (``now > deadline``): a preempted
        request already holds sampled tokens, and dropping them would turn a
        scheduling decision into data loss.  Expiry happens at admission
        time, so a request whose deadline tick is *reachable* is always
        offered admission at that tick before it can expire.
        """
        if not any(
            item[3].request.deadline is not None and item[3].resume is None
            for item in self._waiting
        ):
            return
        kept: List[Tuple[int, float, int, _QueueEntry]] = []
        for item in self._waiting:
            entry = item[3]
            request = entry.request
            if (
                entry.resume is None
                and request.deadline is not None
                and self.now > request.deadline
            ):
                self.stats.expired_requests += 1
                finished.append(self._unstarted_output(request, "expired"))
            else:
                kept.append(item)
        if len(kept) != len(self._waiting):
            self._waiting = kept
            heapq.heapify(self._waiting)

    def _preempt_for(self, head: Request) -> bool:
        """Evict one strictly lower-priority victim to make room for ``head``.

        The victim is the *worst* active request — highest priority value,
        then latest admission, then latest id — so repeated calls while one
        head retries its reservation peel victims in least-valuable-first
        order.  Returns False (and preempts nothing) when preemption is
        disabled or no strictly lower-priority victim exists; admission then
        stops exactly as without preemption.
        """
        if not self.preemption:
            return False
        candidates = [
            state
            for state in list(self._active.values()) + list(self._prefilling)
            if state.request.priority > head.priority
        ]
        if not candidates:
            return False
        victim = max(
            candidates,
            key=lambda state: (
                state.request.priority,
                state.admitted_at,
                state.request.request_id,
            ),
        )
        self._preempt(victim)
        return True

    def _preempt(self, state: _ActiveRequest) -> None:
        """Release one admitted request's slot and re-queue it for replay.

        The freed blocks go to the LRU free-list; published prefix blocks
        stay matchable there, so the replay usually re-maps its prefix
        instead of recomputing it.  All sampling state (generated tokens,
        recorded logits, RNG, speculation counters) rides along in the queue
        entry, which is what keeps the eventual output bit-identical to an
        unpreempted run.
        """
        request = state.request
        entry = _QueueEntry(request, state)
        if self.prefix_cache:
            # Publish every fully-committed block — including blocks the
            # victim *generated*, which ordinary serving never publishes —
            # right before freeing them.  They land at the matchable back of
            # the LRU, so the replay re-maps the victim's whole context (bar
            # the partial tail block) instead of re-prefilling it; the
            # content is a pure function of the tokens, so sharers and the
            # resumed victim alike read exactly the bytes a cold prefill
            # would produce.
            committed = self.cache.length_of(state.slot)
            if committed:
                self.cache.publish_prefix(state.slot, entry.replay_tokens()[:committed])
        self.release_request(request.request_id)
        state.prefill_pos = 0
        state.replay = None
        state.preemptions += 1
        self.stats.preemptions += 1
        if self.tracer is not None:
            self.tracer.instant(
                "request.preempted",
                self.trace_track,
                self._corr_for(request.request_id),
                committed=len(state.generated),
                preemptions=state.preemptions,
            )
        heapq.heappush(
            self._waiting,
            (request.priority, request.arrival_time, request.request_id, entry),
        )

    def release_request(self, request_id: int) -> _ActiveRequest:
        """Evict an admitted request from its slot, freeing all its KV blocks.

        The single eviction/backfill path shared by completion
        (:meth:`_finalize`), preemption, and cancellation: removes the
        request from the prefill queue or the active set, invalidates the
        cached batch views, returns its blocks to the pool (published blocks
        stay LRU-matchable), and releases any drafter state.  The freed slot
        is backfilled by ``_admit`` on the next step.

        Returns
        -------
        _ActiveRequest
            The request's book-keeping (its ``slot`` is reset to ``-1``).

        Raises
        ------
        ConfigurationError
            If the request is not currently admitted — already finished,
            already released (double release), still waiting, or unknown.
        """
        request_id = int(request_id)
        state: Optional[_ActiveRequest] = None
        for candidate in self._prefilling:
            if candidate.request.request_id == request_id:
                state = candidate
                self._prefilling.remove(candidate)
                break
        if state is None:
            for slot, candidate in self._active.items():
                if candidate.request.request_id == request_id:
                    state = candidate
                    del self._active[slot]
                    break
        if state is None:
            raise ConfigurationError(
                f"request {request_id} is not admitted (already finished, "
                "already released, still waiting, or never submitted)"
            )
        self._decode_view = None
        state.prefill_view = None
        self.cache.free(state.slot)
        state.slot = -1
        if self.speculation is not None:
            self.speculation.drafter.release(request_id)
        return state

    def cancel(self, request_id: int) -> RequestOutput:
        """Withdraw a request wherever it is and free everything it holds.

        A waiting request is removed from its queue; an admitted one is
        evicted via :meth:`release_request` (all KV blocks freed).  Either
        way the returned output carries ``finish_reason="cancelled"`` and
        whatever tokens were committed before the cancellation — cancelled
        outputs are returned here, never from :meth:`step`.

        Raises
        ------
        ConfigurationError
            If the request is unknown or already finished.
        """
        output = self._withdraw(request_id, "cancelled")
        self.stats.cancelled_requests += 1
        return output

    def expire(self, request_id: int) -> RequestOutput:
        """Retire a request through the deadline path, keeping partial work.

        The caller-side twin of the admission-deadline sweep: the returned
        output carries ``finish_reason="expired"`` plus whatever tokens were
        committed before the expiry.  :class:`~repro.serve.async_engine.RequestStream`
        uses it when a per-token ``timeout=`` elapses, so a stalled serving
        loop can never hang a consumer.

        Raises
        ------
        ConfigurationError
            If the request is unknown or already finished.
        """
        output = self._withdraw(request_id, "expired")
        self.stats.expired_requests += 1
        return output

    def shed(self, request_id: int, cause: str = "shed") -> RequestOutput:
        """Drop a request under resource pressure (``finish_reason="degraded"``).

        Graceful degradation: instead of crashing (or livelocking) when the
        pool cannot serve everyone, the caller — typically the replica-pool
        router — sheds the least valuable request.  Committed tokens are
        kept in the returned output, every block is freed, and the drop is
        tallied in ``stats.degraded_requests`` and, by structured ``cause``,
        in ``stats.degraded_causes``; the output carries the cause in its
        ``failure_cause`` field.

        Raises
        ------
        ConfigurationError
            If the request is unknown or already finished.
        """
        output = self._withdraw(request_id, "degraded")
        self.stats.degraded_requests += 1
        self.stats.degraded_causes[cause] = self.stats.degraded_causes.get(cause, 0) + 1
        return replace(output, failure_cause=cause)

    def _withdraw(self, request_id: int, reason: str) -> RequestOutput:
        """Remove a request wherever it is; shared by cancel/expire/shed."""
        request_id = int(request_id)
        for queue in (self._waiting, self._future):
            for index, item in enumerate(queue):
                entry = item[-1]
                if entry.request.request_id == request_id:
                    queue.pop(index)
                    heapq.heapify(queue)
                    if entry.resume is not None:
                        return self._build_output(entry.resume, reason)
                    return self._unstarted_output(entry.request, reason)
        state = self.release_request(request_id)
        return self._build_output(state, reason)

    # ------------------------------------------------------------------
    # Checkpoint / recovery interface
    # ------------------------------------------------------------------
    def checkpoint(self, request_id: int) -> RequestCheckpoint:
        """Extract one request as a resumable :class:`RequestCheckpoint`.

        An admitted request is released first (:meth:`release_request` — all
        its KV blocks return to the pool); a waiting one is removed from its
        queue.  The checkpoint carries the committed tokens, their recorded
        logits, and the sampling generator's exported state, so
        :meth:`submit_checkpoint` on *any* scheduler over the same model and
        :class:`GenerationConfig` continues the request bit-identically.

        Raises
        ------
        ConfigurationError
            If the request is unknown or already finished.
        """
        request_id = int(request_id)
        for queue in (self._waiting, self._future):
            for index, item in enumerate(queue):
                entry = item[-1]
                if entry.request.request_id == request_id:
                    queue.pop(index)
                    heapq.heapify(queue)
                    if entry.resume is not None:
                        return self._export_checkpoint(entry.resume)
                    return self._export_checkpoint(None, request=entry.request)
        return self._export_checkpoint(self.release_request(request_id))

    def checkpoint_all(self) -> List[RequestCheckpoint]:
        """Checkpoint every in-flight request, in submission (id) order.

        The replica pool's crash-recovery sweep: after this the scheduler
        holds no requests and every KV block is free, while each returned
        checkpoint can be re-admitted elsewhere via
        :meth:`submit_checkpoint`.
        """
        ids = sorted(
            [entry.request.request_id for *_, entry in self._waiting]
            + [entry.request.request_id for *_, entry in self._future]
            + [state.request.request_id for state in self._prefilling]
            + [state.request.request_id for state in self._active.values()]
        )
        return [self.checkpoint(request_id) for request_id in ids]

    def _export_checkpoint(
        self, state: Optional[_ActiveRequest], request: Optional[Request] = None
    ) -> RequestCheckpoint:
        """Build a checkpoint from released book-keeping (or a fresh request)."""
        if state is not None:
            request = state.request
        return RequestCheckpoint(
            prompt=request.prompt,
            generated=list(state.generated) if state is not None else [],
            rng_state=(
                copy.deepcopy(state.rng.bit_generator.state)
                if state is not None
                else {}
            ),
            step_logits=list(state.logits) if state is not None else [],
            max_new_tokens=request.max_new_tokens,
            priority=int(request.priority),
            arrival_time=float(request.arrival_time),
            deadline=request.deadline,
            request_id=int(request.request_id),
            preemptions=state.preemptions if state is not None else 0,
            prefix_hit_tokens=state.prefix_hit_tokens if state is not None else 0,
            first_token_at=state.first_token_at if state is not None else -1.0,
        )

    def submit_checkpoint(
        self,
        checkpoint: RequestCheckpoint,
        *,
        delay: float = 0.0,
        trace_corr: Optional[str] = None,
    ) -> int:
        """Re-admit a checkpointed request on this scheduler; return its new id.

        A started checkpoint is enqueued as a *resume* entry — admission
        re-prefills ``prompt + generated[:-1]`` (riding prefix-cache hits
        where templates overlap), restores the sampling generator to its
        exported state, and continues without re-sampling, so the finished
        output is bit-identical to an uninterrupted run.  An unstarted
        checkpoint is enqueued fresh with its original deadline (it can
        still expire — a crash does not extend an admission deadline).

        Parameters
        ----------
        checkpoint : RequestCheckpoint
            A snapshot from :meth:`checkpoint` on a compatible scheduler
            (same model shape and :class:`GenerationConfig`).
        delay : float
            Extra scheduler ticks before the re-admitted request becomes
            admissible — the replica pool's exponential-backoff knob.
        trace_corr : str, optional
            Correlation id for the re-admitted request's trace events (see
            :meth:`submit`) — the pool passes the original pool-level id so
            a recovery hop extends the request's existing lifecycle instead
            of starting a fresh one.

        Returns
        -------
        int
            The request id assigned on *this* scheduler.
        """
        if delay < 0.0:
            raise ConfigurationError("delay must be >= 0")
        arrival = self.now + float(delay)
        request = Request(
            prompt=np.asarray(checkpoint.prompt, dtype=np.int64).reshape(-1),
            max_new_tokens=checkpoint.max_new_tokens,
            arrival_time=max(checkpoint.arrival_time, arrival) if checkpoint.started else arrival,
            priority=int(checkpoint.priority),
            deadline=checkpoint.deadline if not checkpoint.started else None,
        )
        if not checkpoint.started:
            # Never-started requests re-enter the ordinary admission path
            # (including deadline expiry) via submit's full validation.
            restored = Request(
                prompt=request.prompt,
                max_new_tokens=request.max_new_tokens,
                arrival_time=request.arrival_time,
                priority=request.priority,
                deadline=(
                    None
                    if request.deadline is None
                    else max(request.deadline, request.arrival_time)
                ),
            )
            return self.submit(restored, trace_corr=trace_corr)
        request.request_id = self._next_request_id
        self._next_request_id += 1
        if self.tracer is not None:
            corr = trace_corr if trace_corr is not None else f"r{request.request_id}"
            self._trace_corrs[request.request_id] = corr
            self.tracer.instant(
                "request.queued",
                self.trace_track,
                corr,
                priority=request.priority,
                prompt_len=int(request.prompt.size),
                resumed=True,
            )
        state = _ActiveRequest(
            request,
            slot=-1,
            budget=self._budget(request),
            seed=self.config.seed,
            admitted_at=-1.0,
        )
        state.generated = list(checkpoint.generated)
        state.logits = [np.asarray(row, dtype=np.float64) for row in checkpoint.step_logits]
        if checkpoint.rng_state:
            state.rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
        state.next_token = state.generated[-1]
        state.preemptions = checkpoint.preemptions
        state.prefix_hit_tokens = checkpoint.prefix_hit_tokens
        state.first_token_at = checkpoint.first_token_at
        if self.speculation is not None:
            state.spec = _SpecState(draft_len=self.speculation.draft_tokens)
        self._enqueue(_QueueEntry(request, state))
        return request.request_id

    def _unstarted_output(self, request: Request, reason: str) -> RequestOutput:
        """Terminal output for a request that never produced a token."""
        if self.tracer is not None:
            self.tracer.instant(
                "request.finished",
                self.trace_track,
                self._trace_corrs.pop(request.request_id, f"r{request.request_id}"),
                reason=reason,
                tokens=0,
            )
        vocab = self.runner.config.vocab_size
        return RequestOutput(
            request_id=int(request.request_id),
            prompt=request.prompt,
            sequence=request.prompt,
            generated=np.zeros(0, dtype=np.int64),
            prompt_length=len(request.prompt),
            step_logits=np.zeros((0, vocab), dtype=np.float64),
            num_steps=0,
            finish_reason=reason,
            admitted_at=-1.0,
            finished_at=self.now,
            priority=request.priority,
            arrival_time=request.arrival_time,
        )

    def _advance_prefill(self, state: _ActiveRequest, budget: int, finished: List[RequestOutput]) -> int:
        """Prefill up to ``budget`` prompt tokens of one request (one forward).

        When the chunk reaches the end of the prompt the request's prefix
        blocks are published for future sharing, its first token is sampled
        from the chunk's final logits, and it joins the decode batch.

        Returns
        -------
        int
            Prompt tokens computed by this chunk.
        """
        tokens = state.replay if state.replay is not None else state.request.prompt
        begin = state.prefill_pos
        end = min(len(tokens), begin + budget)
        chunk = tokens[begin:end]
        if state.prefill_view is None:
            state.prefill_view = self.cache.view([state.slot])
        view = state.prefill_view
        # Only the final chunk of a *fresh* prompt needs logits (they seed
        # sampling); intermediate chunks — and every chunk of a preemption
        # replay, whose next token was sampled before the preemption — skip
        # the LM-head projection entirely.
        samples = end == len(tokens) and not state.generated
        tracer = self.tracer
        if tracer is not None:
            tracer.begin(
                "prefill_chunk",
                self.trace_track,
                self._corr_for(state.request.request_id),
                start=begin,
                tokens=int(end - begin),
            )
        try:
            logits = self.runner.prefill(
                chunk[None, :],
                np.array([len(chunk)]),
                view,
                start_positions=np.array([begin]),
                return_logits=samples,
            )
            view.commit()
        finally:
            if tracer is not None:
                tracer.end(self.trace_track)
        state.prefill_pos = end
        self.stats.prefill_iterations += 1
        self.stats.prefill_tokens += len(chunk)
        self.now += 1.0
        if end == len(tokens):
            self._prefilling.remove(state)
            state.prefill_view = None
            state.replay = None
            if self.prefix_cache:
                self.cache.publish_prefix(state.slot, tokens)
            self._active[state.slot] = state
            if samples:
                self._consume_logits(state, logits[0], finished)
            else:
                # Preemption replay: the last token sampled before the
                # preemption was never fed to the model; it becomes the next
                # decode step's input, exactly as in the unpreempted run.
                state.next_token = state.generated[-1]
        return len(chunk)

    def _prefill_iteration(self, finished: List[RequestOutput]) -> None:
        """Spend this step's ``prefill_chunk`` token budget, FIFO."""
        budget = self.prefill_chunk
        while budget > 0 and self._prefilling:
            budget -= self._advance_prefill(self._prefilling[0], budget, finished)

    def _decode_iteration(self, finished: List[RequestOutput]) -> None:
        """One batched decode step over every active slot."""
        if self.speculation is not None:
            self._speculative_iteration(finished)
            return
        self._plain_decode_step(list(self._active.values()), finished)

    def _plain_decode_step(
        self, states: List[_ActiveRequest], finished: List[RequestOutput], cached: bool = True
    ) -> None:
        """One ordinary one-token decode forward over ``states``.

        ``cached=False`` builds a throwaway view instead of touching the
        reusable decode view (for transient sub-batches like the
        final-budget-token rows of a speculative iteration).
        """
        slots = [state.slot for state in states]
        view = self._view_for(slots) if cached else self.cache.view(slots)
        tokens = np.array([state.next_token for state in states], dtype=np.int64)
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("decode_step", self.trace_track, batch=len(states))
        try:
            logits = self.runner.decode_step(tokens, view)
            view.commit()
        finally:
            if tracer is not None:
                tracer.end(self.trace_track)
        self.stats.decode_iterations += 1
        self.stats.decode_slot_steps += len(states)
        self.now += 1.0
        for row, state in enumerate(states):
            self._consume_logits(state, logits[row], finished)

    def _view_for(self, slots: List[int]) -> SlotBatchView:
        """The cached decode-batch view for ``slots`` (rebuilt on change)."""
        view = self._decode_view
        if view is None or view.slot_ids != slots:
            view = self.cache.view(slots)
            self._decode_view = view
        return view

    def _speculative_iteration(self, finished: List[RequestOutput]) -> None:
        """One draft-and-verify iteration over every active slot.

        Each request's drafter proposes up to ``draft_len`` tokens (capped
        by the remaining token budget — drafting past it could only produce
        tokens the budget would discard, and would write outside the
        admission-time block reservation).  The iteration then runs as
        *one* forward whenever it can:

        * **Nobody drafted** — one ordinary batched decode step over the
          whole batch, at exactly plain decode's cost.  Speculation never
          adds forwards on traffic the drafter cannot read.
        * **Somebody drafted** — one rectangular
          :meth:`TransformerRunner.verify` forward over every capable row,
          at the depth of the iteration's *longest* proposal (never deeper
          than any participating row's remaining budget allows).  Rows with
          shorter — or no — proposals of their own ride along on padding
          (their last known token repeated as a guess): a *wrong* pad is
          rejected exactly where the shorter draft would have stopped (a
          lucky pad commits like any verified token, it just never counts
          toward accept statistics), and even a fully-padded row still
          commits its bonus token — the same one token the decode step it
          replaced would have committed — so cold rows are never slowed
          while warm rows sprint.  Splitting
          the batch into separate verify and decode forwards instead would
          double the iteration's forward count, and a cold row backfilling
          a finished warm one makes that mixed state the steady state.

        Only genuinely proposed tokens feed the accept-rate EMA and the
        ``spec_*`` statistics — padding guesses are a batching artifact.
        Rows at their very last budgeted token cannot write a draft run and
        take a rare separate decode step.  Rejected positions are rolled
        back with :meth:`PagedKVCache.truncate` — blocks are kept
        (``min_capacity`` = the reservation) so the reserve-once guarantee
        survives, while the rolled-back positions are scrubbed to zeros.
        """
        spec = self.speculation
        states = list(self._active.values())
        # remaining - 1 caps the useful draft depth: accepting a drafts
        # plus the sampled bonus commits a + 1 <= remaining new tokens,
        # and capacity was reserved for exactly that many cache writes.
        caps = {
            state.slot: min(state.spec.draft_len, state.budget - len(state.generated) - 1)
            for state in states
        }
        capable = [state for state in states if caps[state.slot] >= 1]
        proposals: Dict[int, np.ndarray] = {}
        for state in capable:
            sequence = np.concatenate(
                [state.request.prompt, np.array(state.generated, dtype=np.int64)]
            )
            proposals[state.slot] = np.asarray(
                spec.drafter.propose(
                    state.request.request_id, sequence, caps[state.slot]
                ),
                dtype=np.int64,
            ).reshape(-1)[: caps[state.slot]]
        willing = {state.slot for state in capable if len(proposals[state.slot])}
        if not willing:
            self._plain_decode_step(states, finished)
            return
        final_token = [state for state in states if caps[state.slot] < 1]
        if final_token:
            self._plain_decode_step(final_token, finished, cached=False)
        # The iteration's depth follows its most confident proposer, clipped
        # only by what every participating row can still *write* (its
        # remaining budget) — another row's adaptive draft length caps that
        # row's own proposal, never the batch.
        depth = min(
            max(len(proposals[slot]) for slot in willing),
            min(state.budget - len(state.generated) - 1 for state in capable),
        )
        drafts = []
        for state in capable:
            draft = proposals[state.slot][:depth]
            if len(draft) < depth:
                # Extend to the iteration depth with repeated-token guesses;
                # a wrong pad is rejected exactly where the shorter draft
                # would have stopped, so deep rows never wait on short ones.
                filler = int(draft[-1]) if len(draft) else state.next_token
                draft = np.concatenate(
                    [draft, np.full(depth - len(draft), filler, dtype=np.int64)]
                )
            drafts.append(draft)
        slots = [state.slot for state in capable]
        view = self._view_for(slots)
        self.stats.decode_iterations += 1
        self.stats.decode_slot_steps += len(capable)
        self.stats.spec_verify_iterations += 1
        self.now += 1.0
        starts = view.lengths.copy()
        tokens = np.stack(
            [
                np.concatenate([[state.next_token], draft])
                for state, draft in zip(capable, drafts)
            ]
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("verify_step", self.trace_track, batch=len(capable), depth=depth)
        try:
            logits = self.runner.verify(tokens, view, starts)
            # The runner advanced every row to start + depth + 1; commit that
            # high-water mark first so truncate() knows how far the optimistic
            # writes reached, then roll each row back to what its sampling rule
            # actually committed.
            view.commit()
        finally:
            if tracer is not None:
                tracer.end(self.trace_track)
        outcomes = [
            self._commit_verified(
                state,
                draft,
                logits[row],
                proposed=min(len(proposals[state.slot]), depth),
            )
            for row, (state, draft) in enumerate(zip(capable, drafts))
        ]
        for row, (state, (committed, reason)) in enumerate(zip(capable, outcomes)):
            if reason is not None:
                self._finalize(state, reason, finished)
            else:
                self.cache.truncate(
                    state.slot,
                    int(starts[row]) + committed,
                    min_capacity=self.cache.capacity_of(state.slot),
                )
                view.lengths[row] = int(starts[row]) + committed

    def _commit_verified(
        self,
        state: _ActiveRequest,
        draft: np.ndarray,
        logits_rows: np.ndarray,
        proposed: Optional[int] = None,
    ) -> Tuple[int, Optional[str]]:
        """Commit verified tokens for one request, left to right.

        Position ``j``'s token is sampled from ``logits_rows[j]`` exactly as
        a sequential decode step would have sampled it (same logits, same
        per-request generator state) — so the committed stream is identical
        to non-speculative decoding, and the run simply stops at the first
        token the drafter failed to predict.  ``proposed`` is the number of
        leading draft positions the drafter genuinely proposed (the rest of
        ``draft`` being batching pads): only those feed the accept-rate EMA
        and the ``spec_*`` statistics.

        Returns
        -------
        tuple of (int, str or None)
            Committed token count and the finish reason (``None`` while the
            request stays active).
        """
        num_drafts = len(draft)
        if proposed is None:
            proposed = num_drafts
        committed = 0
        accepted = 0
        reason: Optional[str] = None
        eos = self.config.eos_token
        for position in range(num_drafts + 1):
            token = _sample_token(logits_rows[position], self.config, state.rng)
            self._commit_token(state, token)
            if self.record_logits:
                state.logits.append(np.asarray(logits_rows[position], dtype=np.float64).copy())
            committed += 1
            matched = position < num_drafts and token == int(draft[position])
            if matched and position < proposed:
                accepted += 1
            if eos is not None and token == eos:
                reason = "eos"
                break
            if len(state.generated) >= state.budget:
                reason = "length"
                break
            if not matched:
                break
        self.stats.spec_proposed_tokens += proposed
        self.stats.spec_accepted_tokens += accepted
        state.spec.observe(proposed, accepted, self.speculation)
        if self.tracer is not None and proposed:
            self.tracer.instant(
                "spec.accept",
                self.trace_track,
                self._corr_for(state.request.request_id),
                proposed=proposed,
                accepted=accepted,
            )
        return committed, reason

    def _commit_token(self, state: _ActiveRequest, token: int) -> None:
        """Record one committed token: stream it, stamp the first-token tick."""
        state.generated.append(token)
        state.next_token = token
        self.stats.generated_tokens += 1
        if state.first_token_at < 0:
            state.first_token_at = self.now
            if self.tracer is not None:
                self.tracer.instant(
                    "request.first_token",
                    self.trace_track,
                    self._corr_for(state.request.request_id),
                )
        if self.on_token is not None:
            self.on_token(int(state.request.request_id), int(token))

    def _consume_logits(
        self, state: _ActiveRequest, logits_row: np.ndarray, finished: List[RequestOutput]
    ) -> None:
        """Sample the next token for one request and retire it if done."""
        token = _sample_token(logits_row, self.config, state.rng)
        self._commit_token(state, token)
        if self.record_logits:
            state.logits.append(np.asarray(logits_row, dtype=np.float64).copy())
        eos = self.config.eos_token
        if eos is not None and token == eos:
            self._finalize(state, "eos", finished)
        elif len(state.generated) >= state.budget:
            self._finalize(state, "length", finished)

    def _finalize(self, state: _ActiveRequest, reason: str, finished: List[RequestOutput]) -> None:
        """Evict a finished request: free its blocks, emit its output."""
        self.release_request(state.request.request_id)
        self.stats.completed_requests += 1
        priority = int(state.request.priority)
        if state.first_token_at >= 0:
            self.stats.ttft_by_class.setdefault(priority, []).append(
                state.first_token_at - state.request.arrival_time
            )
            steps = len(state.generated)
            if steps > 1:
                self.stats.tpot_by_class.setdefault(priority, []).append(
                    (self.now - state.first_token_at) / (steps - 1)
                )
        finished.append(self._build_output(state, reason))

    def _build_output(self, state: _ActiveRequest, reason: str) -> RequestOutput:
        """Assemble the terminal :class:`RequestOutput` for one request."""
        request_id = state.request.request_id
        if self.tracer is not None:
            self.tracer.instant(
                "request.finished",
                self.trace_track,
                self._trace_corrs.pop(request_id, f"r{request_id}"),
                reason=reason,
                tokens=len(state.generated),
            )
        continuation = np.array(state.generated, dtype=np.int64)
        vocab = self.runner.config.vocab_size
        step_logits = (
            np.stack(state.logits)
            if state.logits
            else np.zeros((0, vocab), dtype=np.float64)
        )
        return RequestOutput(
            request_id=int(state.request.request_id),
            prompt=state.request.prompt,
            sequence=np.concatenate([state.request.prompt, continuation]),
            generated=continuation,
            prompt_length=len(state.request.prompt),
            step_logits=step_logits,
            num_steps=len(continuation),
            finish_reason=reason,
            admitted_at=state.admitted_at,
            finished_at=self.now,
            prefix_hit_tokens=state.prefix_hit_tokens,
            spec_proposed_tokens=state.spec.proposed_tokens if state.spec else 0,
            spec_accepted_tokens=state.spec.accepted_tokens if state.spec else 0,
            priority=int(state.request.priority),
            arrival_time=state.request.arrival_time,
            first_token_at=state.first_token_at,
            preemptions=state.preemptions,
        )
