"""Serving layer: KV-cached decoding, continuous batching, and generation.

This package opens the workload the paper's accelerator actually targets —
autoregressive decoding, where every step re-runs the activation-activation
matmuls against a growing KV history — on top of the executor-based
inference engine, so every quantization scheme in the repository can be
served and measured in the decode regime.

Three layers, bottom up:

* :class:`KVCache` / :class:`PagedKVCache` — dense per-batch-lane and
  block-allocated per-slot key/value storage (the paged pool is
  reference-counted, with prefix-block identity, copy-on-write, and an LRU
  free-list for cross-request KV reuse);
* :class:`Scheduler` — the continuous-batching serving loop (FIFO
  admission, chunked prefill interleaved with decode, shared-prompt prefix
  caching, speculative draft-and-verify decoding, mid-flight eviction);
* :class:`GenerationEngine` / :func:`generate` — the fixed-batch policy
  over the scheduler, returning a rectangular :class:`GenerationResult`;
* :class:`AsyncEngine` — the asyncio streaming frontend: per-token
  :class:`RequestStream` iterators, bounded-queue admission control with
  backpressure, priority classes with deadlines, and free-then-replay
  preemption whose resumed outputs stay bit-identical;
* :class:`ReplicaPool` (:mod:`repro.serve.cluster`) — N fault-isolated
  scheduler replicas behind a prefix-cache-aware sticky :class:`Router`,
  with seeded chaos injection (:class:`FaultInjector`), checkpoint/replay
  recovery (:class:`RequestCheckpoint`), a circuit breaker + zero-progress
  watchdog, and graceful ``"degraded"`` shedding under memory pressure;
* :class:`ShardedRunner` (:mod:`repro.serve.shard`) — column-parallel
  tensor sharding behind the ``TransformerRunner`` surface, meeting at
  checksummed, retrying :class:`CollectiveGroup` collectives
  (:mod:`repro.serve.collective`) with seeded message chaos
  (:class:`CollectiveFaultInjector`); a replica of the pool may be a whole
  shard group, recovered as one fault unit.

Speculative decoding (:mod:`repro.serve.spec`) plugs a
:class:`DraftProposer` — :class:`PromptLookupDraft` n-gram lookup or a
:class:`ModelDraft` small-model drafter — into the scheduler via
``Scheduler(speculation=SpecConfig(...))``; greedy outputs stay
bit-identical to non-speculative decoding for Tender implicit/explicit
while k sequential decode forwards collapse into one verification forward.
"""

from repro.serve.async_engine import AsyncEngine, RequestStream, serve_all
from repro.serve.cluster import ClusterStats, FaultInjector, ReplicaPool, Router
from repro.serve.collective import (
    CollectiveFaultInjector,
    CollectiveGroup,
    CollectiveStats,
)
from repro.serve.engine import GenerationEngine, GenerationResult, generate
from repro.serve.kv_cache import KVCache
from repro.serve.paged_kv_cache import PagedKVCache, SlotBatchView
from repro.serve.scheduler import (
    GenerationConfig,
    Request,
    RequestCheckpoint,
    RequestOutput,
    Scheduler,
    SchedulerStats,
)
from repro.serve.shard import ShardedRunner
from repro.serve.spec import DraftProposer, ModelDraft, PromptLookupDraft, SpecConfig
from repro.serve.stress import (
    InvariantViolation,
    ServingStressHarness,
    check_pool_invariants,
    shrink_ops,
)

__all__ = [
    "AsyncEngine",
    "ClusterStats",
    "CollectiveFaultInjector",
    "CollectiveGroup",
    "CollectiveStats",
    "FaultInjector",
    "KVCache",
    "PagedKVCache",
    "ReplicaPool",
    "RequestStream",
    "Router",
    "SlotBatchView",
    "DraftProposer",
    "serve_all",
    "GenerationConfig",
    "GenerationEngine",
    "GenerationResult",
    "InvariantViolation",
    "ModelDraft",
    "PromptLookupDraft",
    "Request",
    "RequestCheckpoint",
    "RequestOutput",
    "Scheduler",
    "SchedulerStats",
    "ServingStressHarness",
    "ShardedRunner",
    "SpecConfig",
    "check_pool_invariants",
    "generate",
    "shrink_ops",
]
