"""Serving layer: KV-cached incremental decoding and batched generation.

This package opens the workload the paper's accelerator actually targets —
autoregressive decoding, where every step re-runs the activation-activation
matmuls against a growing KV history — on top of the executor-based inference
engine, so every quantization scheme in the repository can be served and
measured in the decode regime.
"""

from repro.serve.engine import GenerationConfig, GenerationEngine, GenerationResult, generate
from repro.serve.kv_cache import KVCache

__all__ = [
    "KVCache",
    "GenerationConfig",
    "GenerationEngine",
    "GenerationResult",
    "generate",
]
