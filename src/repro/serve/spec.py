"""Speculative decoding: draft-and-verify serving over the paged KV cache.

Plain autoregressive decode advances one token per model forward — the
sequential bottleneck of serving.  Speculative decoding breaks it by
splitting each iteration into two asymmetric halves:

* a cheap **drafter** proposes ``k`` continuation tokens for a request, and
* the target model **verifies** the whole run in *one* forward
  (:meth:`repro.models.inference.TransformerRunner.verify`), scoring every
  draft position plus a *bonus* position after a fully accepted run.

Tokens are then committed left to right through the request's ordinary
sampling rule: position ``j``'s token is sampled (greedy or seeded top-k)
from the verified logits, and the run continues while the sampled token
equals the drafted one.  Because the verify forward reproduces the exact
per-position logits of the sequential decode steps it replaces (the same
position-calibrated partial-prefill machinery chunked prefill runs on), the
committed token stream — and the logits behind every committed token — is
*identical* to non-speculative decoding for executors with static matmul
parameters (Tender implicit/explicit); speculation only changes how many
forwards it takes.  Rejected draft positions are rolled back through
:meth:`repro.serve.paged_kv_cache.PagedKVCache.truncate`.

Two drafters ship here:

* :class:`PromptLookupDraft` — zero-cost n-gram lookup: the longest suffix
  n-gram of the request's prompt + generated tokens is searched for an
  earlier occurrence, and the tokens that followed it are proposed
  (vLLM-style prompt lookup).  Free to run, and extremely effective on
  extractive or repetitive generations.
* :class:`ModelDraft` — a smaller :class:`~repro.models.inference.TransformerRunner`
  (e.g. a truncated-layer copy, see :meth:`ModelDraft.truncated`) decodes
  the draft greedily over its own dense per-request KV cache, catching up
  on committed tokens and rolling back rejected ones automatically.

:class:`SpecConfig` wires a drafter into the
:class:`~repro.serve.scheduler.Scheduler`, which adapts each request's
draft length with a per-request accept-rate EMA and interleaves speculative
decode with chunked prefill unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.models.inference import TransformerRunner
from repro.models.weights import ModelWeights
from repro.serve.kv_cache import KVCache

__all__ = ["DraftProposer", "PromptLookupDraft", "ModelDraft", "SpecConfig"]


@runtime_checkable
class DraftProposer(Protocol):
    """What the scheduler needs from a speculative drafter.

    A drafter is consulted once per speculative decode iteration per
    request, with the request's full committed sequence (prompt followed by
    every sampled token, including the still-pending one), and returns up
    to ``max_tokens`` speculated continuations.  Returning an empty array
    is always legal — the request simply takes a plain decode step.
    Drafters may keep per-request state keyed by ``request_id``;
    :meth:`release` is called exactly once when the request retires.
    """

    def propose(self, request_id: int, tokens: np.ndarray, max_tokens: int) -> np.ndarray:
        """Return up to ``max_tokens`` draft tokens continuing ``tokens``."""
        ...

    def release(self, request_id: int) -> None:
        """Drop any per-request drafting state."""
        ...


class PromptLookupDraft:
    """N-gram prompt-lookup drafting: propose what followed the suffix before.

    The longest suffix n-gram of the sequence (``max_ngram`` down to
    ``min_ngram`` tokens) is searched for its most recent earlier
    occurrence; the tokens that followed that occurrence become the draft.
    Matching runs over the *whole* committed sequence — prompt and generated
    tokens alike — so both extractive prompts (the continuation copies
    prompt spans) and repetitive generations (the continuation re-enters its
    own earlier output) draft well.  Costs one vectorized scan, no model.

    Parameters
    ----------
    max_ngram : int
        Longest suffix n-gram tried first (longer matches give more
        trustworthy continuations).
    min_ngram : int
        Shortest n-gram worth matching before giving up.  The default of 2
        deliberately skips unigram matches: on non-repetitive text they
        fire constantly with near-zero accept rates, paying verification
        width for nothing, while any genuinely repeating run still matches
        at bigram length.

    Raises
    ------
    ConfigurationError
        If the n-gram bounds are not ``1 <= min_ngram <= max_ngram``.
    """

    def __init__(self, max_ngram: int = 3, min_ngram: int = 2) -> None:
        if not 1 <= min_ngram <= max_ngram:
            raise ConfigurationError("need 1 <= min_ngram <= max_ngram")
        self.max_ngram = int(max_ngram)
        self.min_ngram = int(min_ngram)

    def propose(self, request_id: int, tokens: np.ndarray, max_tokens: int) -> np.ndarray:
        """Draft the continuation of the most recent suffix n-gram match."""
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        length = len(tokens)
        if max_tokens < 1 or length < self.min_ngram + 1:
            return np.empty(0, dtype=np.int64)
        for ngram in range(min(self.max_ngram, length - 1), self.min_ngram - 1, -1):
            pattern = tokens[length - ngram :]
            windows = np.lib.stride_tricks.sliding_window_view(tokens, ngram)
            # The final window is the suffix itself; only earlier ones count.
            matches = np.nonzero((windows[:-1] == pattern).all(axis=1))[0]
            if len(matches):
                # Prefer the most recent occurrence that still has a full
                # draft's worth of continuation after it (recent context
                # drafts best); fall back to the earliest occurrence, whose
                # continuation is the longest available.
                starts = matches + ngram
                full = starts[length - starts >= max_tokens]
                start = int(full[-1]) if len(full) else int(starts[0])
                return tokens[start : start + max_tokens].copy()
        return np.empty(0, dtype=np.int64)

    def release(self, request_id: int) -> None:
        """No per-request state to drop (lookup is stateless)."""


class ModelDraft:
    """Draft with a smaller model decoding greedily over its own KV cache.

    Any :class:`~repro.models.inference.TransformerRunner` works as the
    drafter — typically a cheaper stand-in for the target such as a
    truncated-layer copy (:meth:`truncated`).  Per request the drafter keeps
    a dense batch-of-one :class:`~repro.serve.kv_cache.KVCache` plus the
    token history its cache covers; each :meth:`propose` call first
    reconciles that history against the committed sequence (rolling back
    drafts the target rejected, prefilling tokens the target added) and
    then greedily decodes the requested number of draft tokens.

    Draft *quality* only affects the accept rate, never correctness: the
    target's verification commits exactly the tokens its own sampling rule
    produces regardless of what was proposed.

    Parameters
    ----------
    runner : TransformerRunner
        The draft model (any executor/quantization scheme).
    """

    def __init__(self, runner: TransformerRunner) -> None:
        self.runner = runner
        self._states: Dict[int, Tuple[KVCache, np.ndarray]] = {}

    @classmethod
    def truncated(cls, runner: TransformerRunner, num_layers: int) -> "ModelDraft":
        """Build a drafter from the first ``num_layers`` layers of ``runner``.

        The classic self-speculation draft model: same embeddings, final
        LayerNorm and LM head, but only a prefix of the Transformer stack —
        roughly ``num_layers / total`` of the target's cost per token.  The
        truncated copy shares the target's weight arrays (no copy) and runs
        on its own executor-default FP path.

        Parameters
        ----------
        runner : TransformerRunner
            The target model to truncate.
        num_layers : int
            Layers to keep (``1 <= num_layers <= target layers``).

        Returns
        -------
        ModelDraft

        Raises
        ------
        ConfigurationError
            If ``num_layers`` is outside the target's layer count.
        """
        total = runner.config.num_layers
        if not 1 <= num_layers <= total:
            raise ConfigurationError(f"num_layers must lie in [1, {total}]")
        weights = runner.weights
        draft_weights = ModelWeights(
            config=replace(weights.config, num_layers=int(num_layers)),
            token_embedding=weights.token_embedding,
            position_embedding=weights.position_embedding,
            blocks=list(weights.blocks[:num_layers]),
            ln_final=weights.ln_final,
            lm_head=weights.lm_head,
            classifier_weight=weights.classifier_weight,
            classifier_bias=weights.classifier_bias,
        )
        return cls(TransformerRunner(draft_weights))

    def propose(self, request_id: int, tokens: np.ndarray, max_tokens: int) -> np.ndarray:
        """Greedily decode up to ``max_tokens`` draft tokens after ``tokens``."""
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        # Drafting past the draft model's own max_seq_len is impossible; the
        # written positions reach len(tokens) - 1 + max_tokens - 1.
        max_tokens = min(int(max_tokens), self.runner.config.max_seq_len - len(tokens))
        if max_tokens < 1 or len(tokens) < 2:
            return np.empty(0, dtype=np.int64)
        state = self._states.get(request_id)
        if state is None:
            cache = KVCache.for_model(self.runner.config, batch_size=1)
            history = np.empty(0, dtype=np.int64)
        else:
            cache, history = state
        # The cache must cover exactly tokens[:-1]; the shared prefix with
        # the previous call's history survives, everything after it (drafts
        # the target rejected) is rolled back by rewinding the length.
        context = tokens[:-1]
        agree = min(len(history), len(context))
        mismatch = np.nonzero(history[:agree] != context[:agree])[0]
        prefix = int(mismatch[0]) if len(mismatch) else agree
        cache.lengths[:] = prefix
        if prefix < len(context):
            chunk = context[prefix:]
            self.runner.prefill(
                chunk[None, :],
                np.array([len(chunk)]),
                cache,
                start_positions=np.array([prefix]),
                return_logits=False,
            )
        draft: List[int] = []
        next_token = int(tokens[-1])
        for _ in range(max_tokens):
            logits = self.runner.decode_step(np.array([next_token]), cache)
            next_token = int(np.argmax(logits[0]))
            draft.append(next_token)
        proposal = np.array(draft, dtype=np.int64)
        self._states[request_id] = (cache, np.concatenate([tokens, proposal[:-1]]))
        return proposal

    def release(self, request_id: int) -> None:
        """Drop the request's draft-model cache."""
        self._states.pop(request_id, None)


@dataclass(frozen=True)
class SpecConfig:
    """Speculation policy handed to ``Scheduler(speculation=...)``.

    Each request starts drafting ``draft_tokens`` per iteration and adapts
    within ``[min_draft, max_draft]`` by an exponential moving average of
    its own accept rate: a request whose drafts keep landing speculates
    deeper, one whose drafts keep missing falls back toward plain decode.
    Adaptation is per request and deterministic, so outputs never depend on
    what a request was batched with.

    Parameters
    ----------
    drafter : DraftProposer
        The draft source (:class:`PromptLookupDraft`, :class:`ModelDraft`,
        or anything satisfying the protocol).
    draft_tokens : int
        Initial draft length per request per iteration.
    min_draft, max_draft : int
        Bounds the adaptive draft length moves in.
    adaptive : bool
        Disable to pin every request at ``draft_tokens`` forever.
    ema_decay : float
        Weight of the newest accept rate in the EMA (``1.0`` = no memory).
    grow_threshold : float
        EMA at or above which the draft length grows by one.
    shrink_threshold : float
        EMA at or below which the draft length shrinks by one.

    Raises
    ------
    ConfigurationError
        If any bound or threshold is out of range.
    """

    drafter: DraftProposer
    draft_tokens: int = 4
    min_draft: int = 1
    max_draft: int = 8
    adaptive: bool = True
    ema_decay: float = 0.5
    grow_threshold: float = 0.6
    shrink_threshold: float = 0.3

    def __post_init__(self) -> None:
        if not 1 <= self.min_draft <= self.max_draft:
            raise ConfigurationError("need 1 <= min_draft <= max_draft")
        if not self.min_draft <= self.draft_tokens <= self.max_draft:
            raise ConfigurationError("draft_tokens must lie in [min_draft, max_draft]")
        if not 0.0 < self.ema_decay <= 1.0:
            raise ConfigurationError("ema_decay must lie in (0, 1]")
        if not 0.0 <= self.shrink_threshold < self.grow_threshold <= 1.0:
            raise ConfigurationError("need 0 <= shrink_threshold < grow_threshold <= 1")


@dataclass
class _SpecState:
    """Per-request adaptive speculation state (owned by the scheduler)."""

    draft_len: int
    accept_ema: float = 1.0
    proposed_tokens: int = 0
    accepted_tokens: int = 0

    def observe(self, proposed: int, accepted: int, config: SpecConfig) -> None:
        """Fold one verify outcome into the EMA and adapt the draft length."""
        if proposed < 1:
            return
        self.proposed_tokens += proposed
        self.accepted_tokens += accepted
        rate = accepted / proposed
        self.accept_ema += config.ema_decay * (rate - self.accept_ema)
        if not config.adaptive:
            return
        if self.accept_ema >= config.grow_threshold:
            self.draft_len = min(self.draft_len + 1, config.max_draft)
        elif self.accept_ema <= config.shrink_threshold:
            self.draft_len = max(self.draft_len - 1, config.min_draft)
