"""Per-layer key/value caches for incremental autoregressive decoding.

Full-sequence inference recomputes every key and value projection for every
token at every step — O(n^2) projection work over a generation of n tokens.
The KV-cache stores each layer's key/value head tensors once, so a decode step
only projects the *new* token and attends over the cached history.  This is
the serving regime in which Tender's runtime requantization matters most: the
activation-activation matmuls (``X_Q X_K^T`` and ``X_S X_V``) are recomputed
against the cache at every step, with operands that only exist at runtime
(Figures 12/13 of the paper).

The cache is batch-major and slot-addressed: slot ``s`` of sequence ``b``
holds the key/value of the token at absolute position ``s``.  Ragged batches
simply track a per-sequence ``lengths`` vector; slots past a sequence's length
may hold stale or padding data and are masked out by the attention visibility
rule (``slot <= query position``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class KVCache:
    """Cached key/value tensors for every layer of one batched generation.

    This is the *dense* cache: one fixed batch lane per sequence, grown (but
    never reclaimed) until the whole batch drains.  The continuous-batching
    scheduler uses the block-allocated
    :class:`~repro.serve.paged_kv_cache.PagedKVCache` instead, which frees a
    request's memory the moment it finishes and can share prefix blocks
    across requests; both expose the same
    ``write``/``view``/``ensure_capacity``/``lengths`` interface consumed by
    :class:`~repro.models.inference.TransformerRunner` — including the
    partial-prompt ``prefill(..., start_positions=...)`` contract, which
    simply appends a later chunk at the positions it names.

    Parameters
    ----------
    num_layers : int
        Transformer layers (one key/value array pair each).
    batch_size : int
        Batch lanes (one per concurrently decoded sequence).
    num_heads : int
        Attention heads per layer.
    d_head : int
        Head dimension.
    capacity : int
        Token slots per lane (grown on demand by :meth:`ensure_capacity`).

    Attributes
    ----------
    keys, values : list of ndarray
        One ``(batch, num_heads, capacity, d_head)`` array per layer.
    lengths : ndarray
        Number of committed tokens per sequence.  ``decode_step`` writes each
        sequence's new token at slot ``lengths[b]`` and then advances it.

    Raises
    ------
    ConfigurationError
        If any dimension is < 1.
    """

    def __init__(self, num_layers: int, batch_size: int, num_heads: int, d_head: int, capacity: int) -> None:
        if min(num_layers, batch_size, num_heads, d_head, capacity) < 1:
            raise ConfigurationError("KVCache dimensions must all be >= 1")
        shape = (batch_size, num_heads, capacity, d_head)
        self.keys: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        self.values: List[np.ndarray] = [np.zeros(shape, dtype=np.float64) for _ in range(num_layers)]
        self.lengths = np.zeros(batch_size, dtype=np.int64)

    @classmethod
    def for_model(cls, config, batch_size: int, capacity: int = 0) -> "KVCache":
        """Allocate a cache sized for a model architecture.

        Parameters
        ----------
        config : TransformerConfig
            Supplies layer count, head count, head dimension and the
            ``max_seq_len`` cap.
        batch_size : int
            Batch lanes to allocate.
        capacity : int, optional
            Initial token slots per lane; defaults to ``max_seq_len`` and is
            always capped there.

        Returns
        -------
        KVCache
        """
        capacity = capacity or config.max_seq_len
        return cls(
            num_layers=config.num_layers,
            batch_size=batch_size,
            num_heads=config.num_heads,
            d_head=config.d_head,
            capacity=min(capacity, config.max_seq_len),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of cached layers."""
        return len(self.keys)

    @property
    def batch_size(self) -> int:
        """Number of batch lanes."""
        return int(self.keys[0].shape[0])

    @property
    def capacity(self) -> int:
        """Token slots currently allocated per lane."""
        return int(self.keys[0].shape[2])

    @property
    def memory_bytes(self) -> int:
        """Total bytes held by the cached key/value arrays."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self.keys, self.values))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def ensure_capacity(self, needed: int) -> None:
        """Grow every layer (by at least doubling) to hold ``needed`` slots."""
        current = self.capacity
        if needed <= current:
            return
        new_capacity = max(needed, 2 * current)
        for layer in range(self.num_layers):
            for arrays in (self.keys, self.values):
                old = arrays[layer]
                grown = np.zeros(old.shape[:2] + (new_capacity, old.shape[3]), dtype=old.dtype)
                grown[:, :, :current] = old
                arrays[layer] = grown

    def write(self, layer: int, keys: np.ndarray, values: np.ndarray, slots: np.ndarray) -> None:
        """Store new head tensors at per-sequence slots.

        Parameters
        ----------
        layer : int
            Layer whose arrays receive the data.
        keys, values : ndarray
            ``(batch, num_heads, new_len, d_head)`` payloads.
        slots : ndarray
            ``(batch, new_len)`` token slots — different sequences of a
            ragged batch may write different slots in the same step.
        """
        batch = keys.shape[0]
        self.ensure_capacity(int(slots.max()) + 1)
        batch_index = np.arange(batch)[:, None]
        # Advanced indices on axes 0 and 2 with a slice between: the head axis
        # moves last in the indexed view, so the payload is transposed to match.
        self.keys[layer][batch_index, :, slots] = keys.transpose(0, 2, 1, 3)
        self.values[layer][batch_index, :, slots] = values.transpose(0, 2, 1, 3)

    def view(self, layer: int, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached key/value arrays truncated to the first ``length`` slots.

        Parameters
        ----------
        layer : int
            Layer to read.
        length : int
            Token slots to expose.

        Returns
        -------
        tuple of ndarray
            ``(keys, values)`` of shape ``(batch, num_heads, length, d_head)``.

        Raises
        ------
        ConfigurationError
            If ``length`` exceeds the current capacity.
        """
        if length > self.capacity:
            raise ConfigurationError(
                f"requested {length} cache slots but capacity is {self.capacity}"
            )
        return self.keys[layer][:, :, :length], self.values[layer][:, :, :length]
