"""Fault-tolerant replica-pool serving: routing, chaos, recovery, degradation.

PR 7's free-then-replay preemption proved that an in-flight request can be
torn down and resumed *bit-identically* — re-prefill
``prompt + generated[:-1]`` over prefix-cache hits, keep the final sampled
token pending, never re-sample.  This module promotes that mechanism from a
scheduling policy into the repo's **recovery primitive** and scales serving
past one engine:

* :class:`ReplicaPool` — N independent
  :class:`~repro.serve.scheduler.Scheduler` engines stepped in lockstep
  behind one submission surface with pool-level request ids.
* :class:`Router` — prefix-cache-aware *sticky-template* placement: the
  leading prompt block is hashed and rendezvous-ranked across healthy
  replicas, so requests sharing a template land on the same engine and keep
  their prefix-cache hit rates at fleet scale, while failover to the next
  healthy replica is deterministic.
* :class:`FaultInjector` — a seeded chaos harness in the spirit of
  :class:`~repro.serve.stress.ServingStressHarness`: kills replicas
  mid-iteration (:class:`~repro.errors.ReplicaFailureError`), injects
  :class:`~repro.errors.ResourceExhaustedError` at the admission/reserve
  site, and stalls a replica's step loop for a run of iterations.
* **Request-level recovery** — on replica failure every in-flight request
  is checkpointed as ``(prompt, generated tokens, sampling RNG state)``
  (:class:`~repro.serve.scheduler.RequestCheckpoint`) and re-admitted on a
  healthy replica via the replay path, governed by a per-request retry
  budget with exponential backoff (the backoff is a *future arrival tick*,
  so it is deterministic in scheduler time) and honoring existing admission
  deadlines — a crash never extends a deadline, and a request that already
  started never expires (matching the scheduler's own rule).
* **Circuit breaker + watchdog** — a replica is marked unhealthy after
  ``breaker_threshold`` consecutive failures and re-probed after an
  (exponentially growing) cooldown; a watchdog detects zero-progress
  iterations on a replica with pending work and triggers the same recovery
  path, so a stalled engine is drained exactly like a crashed one.
* **Graceful degradation** — under memory pressure the router sheds the
  lowest-priority waiting request with ``finish_reason="degraded"``
  (:meth:`Scheduler.shed`) instead of crashing the pool, and a request
  whose retry budget is exhausted degrades the same way.

Determinism is load-bearing, exactly as everywhere in ``repro.serve``: the
pool steps replicas in replica-id order, the injector's schedule is a pure
function of its seed, shedding picks victims by ``(priority, request_id)``,
and recovery replays rather than re-samples — so for Tender's integer
pipeline a chaos run's surviving outputs are bit-identical (tokens *and*
committed-position logits) to a fault-free run, which is what
``tools/check_perf_smoke.py`` gates on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ReplicaFailureError, ResourceExhaustedError
from repro.models.inference import TransformerRunner
from repro.serve.scheduler import (
    GenerationConfig,
    Request,
    RequestCheckpoint,
    RequestOutput,
    Scheduler,
)

#: SchedulerStats counters the pool aggregates (and retains across crash
#: rebuilds) for its merged ``stats`` view.
_POOL_STAT_KEYS = (
    "prefill_tokens",
    "prefix_hit_tokens",
    "generated_tokens",
    "decode_iterations",
    "prefill_iterations",
    "completed_requests",
    "preemptions",
    "degraded_requests",
)


@dataclass
class FaultEvent:
    """One chaos action the :class:`FaultInjector` fired (for audit logs)."""

    #: Pool iteration the event fired on.
    iteration: int
    #: Replica the event targeted.
    replica_id: int
    #: ``"kill"``, ``"exhaust"``, or ``"stall"``.
    kind: str


class FaultInjector:
    """Seeded chaos schedule over a replica pool: kills, exhaustion, stalls.

    Two modes compose:

    * **Scripted** — ``kill_at`` / ``exhaust_at`` / ``stall_at`` map pool
      iterations to replica ids, for deterministic gates that need a fault
      at an exact point in a trace.
    * **Randomized** — per (iteration, replica) the seeded generator draws
      each fault kind with the configured rate, for soak-style chaos runs.

    The injector is consulted once per replica per pool iteration *before*
    the replica steps, so a kill lands mid-flight: requests hold partial
    prefills and half-decoded continuations, exactly the state recovery
    must replay.  ``max_kills`` bounds scripted-plus-random kills so a
    high-rate schedule cannot exterminate the whole pool.

    Parameters
    ----------
    seed : int
        Seed of the randomized schedule (scripted events ignore it).
    kill_rate, exhaust_rate, stall_rate : float
        Per-(iteration, replica) probabilities of each fault kind.
    stall_steps : int
        Iterations a stalled replica skips before it resumes stepping.
    kill_at, exhaust_at, stall_at : dict, optional
        ``{pool_iteration: replica_id}`` scripted faults.
    max_kills : int, optional
        Ceiling on total kills (``None`` = unbounded).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kill_rate: float = 0.0,
        exhaust_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_steps: int = 3,
        kill_at: Optional[Dict[int, int]] = None,
        exhaust_at: Optional[Dict[int, int]] = None,
        stall_at: Optional[Dict[int, int]] = None,
        max_kills: Optional[int] = None,
    ) -> None:
        for name, rate in (
            ("kill_rate", kill_rate),
            ("exhaust_rate", exhaust_rate),
            ("stall_rate", stall_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        if stall_steps < 1:
            raise ConfigurationError("stall_steps must be >= 1")
        self.rng = np.random.default_rng(seed)
        self.kill_rate = float(kill_rate)
        self.exhaust_rate = float(exhaust_rate)
        self.stall_rate = float(stall_rate)
        self.stall_steps = int(stall_steps)
        self.kill_at = dict(kill_at or {})
        self.exhaust_at = dict(exhaust_at or {})
        self.stall_at = dict(stall_at or {})
        self.max_kills = max_kills
        #: Every event fired, in firing order (the chaos audit log).
        self.events: List[FaultEvent] = []

    def draw(self, iteration: int, replica_id: int) -> Optional[str]:
        """The fault (if any) to inject on this replica this iteration.

        Scripted events win over random draws; at most one fault fires per
        (iteration, replica).  Returns ``"kill"``, ``"exhaust"``,
        ``"stall"``, or ``None``.
        """
        kind = None
        if self.kill_at.get(iteration) == replica_id:
            kind = "kill"
        elif self.exhaust_at.get(iteration) == replica_id:
            kind = "exhaust"
        elif self.stall_at.get(iteration) == replica_id:
            kind = "stall"
        else:
            # One draw per fault kind, always consumed in the same order, so
            # the schedule is a pure function of (seed, call sequence).
            draws = self.rng.random(3)
            if draws[0] < self.kill_rate:
                kind = "kill"
            elif draws[1] < self.exhaust_rate:
                kind = "exhaust"
            elif draws[2] < self.stall_rate:
                kind = "stall"
        if kind == "kill" and self.max_kills is not None:
            fired = sum(1 for event in self.events if event.kind == "kill")
            if fired >= self.max_kills:
                kind = None
        if kind is not None:
            self.events.append(FaultEvent(iteration, replica_id, kind))
        return kind


class Router:
    """Prefix-cache-aware sticky-template placement over healthy replicas.

    The first ``template_window`` prompt tokens — the shared template a
    prefix cache can actually reuse — are hashed, and every replica is
    ranked by the rendezvous weight ``crc32(template_key || replica_id)``.
    The healthy replica with the highest weight wins, which gives the two
    properties fleet-scale prefix caching needs:

    * **Stickiness** — equal templates always land on the same replica
      while it is healthy, so hit rates survive scale-out;
    * **Deterministic failover** — when the winner is unhealthy the
      next-ranked healthy replica takes over (and *only* that template's
      traffic moves), with no rehash storm on recovery.
    """

    def __init__(self, num_replicas: int, template_window: int = 16) -> None:
        if num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if template_window < 1:
            raise ConfigurationError("template_window must be >= 1")
        self.num_replicas = int(num_replicas)
        self.template_window = int(template_window)

    def rank(self, prompt: np.ndarray) -> List[int]:
        """Replica ids in placement-preference order for ``prompt``."""
        key = np.ascontiguousarray(
            np.asarray(prompt, dtype=np.int64)[: self.template_window]
        ).tobytes()
        weights = [
            (zlib.crc32(key + bytes([replica_id % 256])), -replica_id)
            for replica_id in range(self.num_replicas)
        ]
        order = sorted(range(self.num_replicas), key=lambda r: weights[r], reverse=True)
        return order

    def place(self, prompt: np.ndarray, healthy: List[int]) -> int:
        """The sticky choice among ``healthy`` replica ids for ``prompt``.

        Raises
        ------
        ResourceExhaustedError
            If no replica is healthy.
        """
        if not healthy:
            raise ResourceExhaustedError("no healthy replica to route to")
        available = set(healthy)
        for replica_id in self.rank(prompt):
            if replica_id in available:
                return replica_id
        raise ResourceExhaustedError("no healthy replica to route to")


@dataclass
class ClusterStats:
    """Pool-level accounting of one :class:`ReplicaPool` run."""

    #: Pool iterations executed (each steps every healthy replica once).
    iterations: int = 0
    #: Replica failures handled (kills plus watchdog trips).
    failures: int = 0
    #: Checkpointed requests successfully re-admitted on a healthy replica.
    recoveries: int = 0
    #: Requests shed with ``finish_reason="degraded"`` (memory pressure or
    #: an exhausted retry budget).
    degraded_requests: int = 0
    #: Iterations replicas sat out while stalled or in breaker cooldown.
    stalled_iterations: int = 0
    #: Watchdog trips (zero-progress detections), a subset of ``failures``.
    watchdog_trips: int = 0
    #: Circuit-breaker opens (replica marked unhealthy for a cooldown).
    breaker_opens: int = 0
    #: ``"degraded"`` finishes tallied by structured failure cause
    #: (``"shed"``, ``"retry_budget_exhausted"``, ``"no_healthy_replica"``).
    degraded_causes: Dict[str, int] = field(default_factory=dict)

    def merged_generated_tokens(self, replicas: List["_Replica"]) -> int:
        """Total committed tokens across every replica's scheduler."""
        return sum(replica.scheduler.stats.generated_tokens for replica in replicas)

    def publish(self, registry, prefix: str = "pool") -> None:
        """Publish pool counters into a :class:`repro.obs.MetricsRegistry`.

        Scalar fields become counters named ``<prefix>.<field>``; the
        per-cause degradation tally becomes ``<prefix>.degraded.<cause>``.
        Counters accumulate — snapshot/delta around each publish to diff.
        """
        for name in (
            "iterations",
            "failures",
            "recoveries",
            "degraded_requests",
            "stalled_iterations",
            "watchdog_trips",
            "breaker_opens",
        ):
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        for cause, count in sorted(self.degraded_causes.items()):
            registry.counter(f"{prefix}.degraded.{cause}").inc(count)


class _Replica:
    """One pool member: a scheduler plus its health/progress book-keeping."""

    __slots__ = (
        "replica_id",
        "scheduler",
        "alive",
        "healthy",
        "consecutive_failures",
        "cooldown_until",
        "stall_remaining",
        "last_progress",
        "no_progress_steps",
    )

    def __init__(self, replica_id: int, scheduler: Scheduler) -> None:
        self.replica_id = replica_id
        self.scheduler = scheduler
        #: False once the engine object crashed (it must be rebuilt).
        self.alive = True
        #: False while the circuit breaker holds the replica out of rotation.
        self.healthy = True
        self.consecutive_failures = 0
        #: Pool iteration at which an unhealthy replica is re-probed.
        self.cooldown_until = 0
        #: Remaining iterations of an injected stall.
        self.stall_remaining = 0
        #: Progress signature after the last step (watchdog input).
        self.last_progress: Tuple[float, int, int] = (-1.0, -1, -1)
        self.no_progress_steps = 0

    def progress_signature(self) -> Tuple[float, int, int]:
        """A value that must change whenever the replica does useful work."""
        stats = self.scheduler.stats
        return (self.scheduler.now, stats.total_iterations, stats.generated_tokens)


class ReplicaPool:
    """N fault-isolated scheduler replicas behind one submission surface.

    The pool owns pool-level request ids (stable across recoveries — a
    request keeps its id no matter how many replicas it survives), steps
    every healthy replica once per :meth:`step` in replica-id order, and
    runs the whole robustness stack described in the module docstring.

    The pool deliberately mirrors the driving surface of
    :class:`~repro.serve.scheduler.Scheduler` (``submit`` / ``step`` /
    ``run`` / ``cancel`` / ``has_pending`` / ``num_waiting`` / ``stats``),
    so :class:`~repro.serve.async_engine.AsyncEngine` can serve from a pool
    exactly as it serves from a single engine (``AsyncEngine(pool=...)``).

    Parameters
    ----------
    runner : TransformerRunner
        The executor-backed model, shared by every replica (schedulers
        never mutate it; each replica owns a private KV pool).
    num_replicas : int
        Pool size.
    runner_factory : callable, optional
        ``replica_id -> TransformerRunner`` override used whenever a
        replica engine is (re)built.  This is how a replica becomes a
        *shard group*: pass a factory returning a fresh
        :class:`~repro.serve.shard.ShardedRunner` over a fresh
        :class:`~repro.serve.collective.CollectiveGroup`, and a dead shard
        or exhausted collective (both ``ReplicaFailureError`` subclasses)
        trips the whole group through the same checkpoint-and-recover
        sweep as a replica crash — the rebuild then gets a healthy group.
        ``runner`` stays the reference model (config/vocab lookups).
    seed : int
        Seed of the pool's deterministic backoff-jitter stream (see
        ``backoff_base``).
    config : GenerationConfig, optional
        Decoding parameters, shared by every replica — recovery replays a
        checkpoint under the *same* sampling rule, which is what keeps it
        bit-identical.
    fault_injector : FaultInjector, optional
        The chaos schedule (``None`` serves fault-free).
    max_retries : int
        Recovery attempts per request before it degrades.
    backoff_base : float
        First-retry backoff in scheduler ticks; retry ``k`` waits
        ``backoff_base * 2**(k-1)`` ticks (exponential), scaled by a
        deterministic jitter factor in ``[0.5, 1.5)`` drawn from the pool
        ``seed`` — simultaneous failures de-synchronize instead of
        retrying in lockstep, while runs stay reproducible.
    breaker_threshold : int
        Consecutive failures that open a replica's circuit breaker.
    breaker_cooldown : int
        Pool iterations an opened breaker holds the replica out; doubles
        with each consecutive open.
    watchdog_patience : int
        Zero-progress iterations (with pending work) before the watchdog
        declares the replica stalled and recovers its requests.
    template_window : int
        Prompt tokens the router hashes for sticky placement.
    record_logits : bool
        Forwarded to every replica (checkpoints carry recorded logits, so
        recovery preserves committed-position logits when enabled).
    max_batch_size, block_size, num_blocks, prefix_cache, prefill_chunk, \
speculation, preemption
        Forwarded to every replica's :class:`Scheduler` unchanged.
    tracer : repro.obs.Tracer, optional
        Opt-in fleet tracing (see :mod:`repro.obs`).  One shared tracer is
        handed to every replica scheduler (track ``"replica<i>"``, rebuilt
        engines included) while the pool emits failover events —
        ``replica.failed``, ``breaker.open``/``close``, ``replica.rebuilt``,
        ``watchdog.trip``, ``request.recovered``/``degraded`` — onto a
        ``"pool"`` track.  Requests carry their pool id (``"req<id>"``) as
        trace correlation id across replica hops, so one request's whole
        lifecycle is reconstructable from the export even when it migrates.
        If the tracer has a :class:`~repro.obs.FlightRecorder`, the pool
        snapshots the tape whenever a request degrades unrecovered.

    Examples
    --------
    >>> pool = ReplicaPool(runner, num_replicas=3,
    ...                    fault_injector=FaultInjector(seed=0, kill_at={4: 1}))
    >>> pool.submit(prompt)
    0
    >>> outputs = pool.run()
    >>> pool.cluster_stats.recoveries
    2
    """

    def __init__(
        self,
        runner: TransformerRunner,
        num_replicas: int = 2,
        config: Optional[GenerationConfig] = None,
        *,
        runner_factory: Optional[Callable[[int], TransformerRunner]] = None,
        seed: int = 0,
        fault_injector: Optional[FaultInjector] = None,
        max_retries: int = 3,
        backoff_base: float = 1.0,
        breaker_threshold: int = 2,
        breaker_cooldown: int = 4,
        watchdog_patience: int = 3,
        template_window: int = 16,
        max_batch_size: int = 8,
        block_size: int = 16,
        num_blocks: Optional[int] = None,
        record_logits: bool = True,
        prefix_cache: bool = True,
        prefill_chunk: Optional[int] = None,
        speculation=None,
        preemption: bool = False,
        on_token: Optional[Callable[[int, int], None]] = None,
        tracer=None,
    ) -> None:
        if num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if backoff_base < 0.0:
            raise ConfigurationError("backoff_base must be >= 0")
        if breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if breaker_cooldown < 1:
            raise ConfigurationError("breaker_cooldown must be >= 1")
        if watchdog_patience < 1:
            raise ConfigurationError("watchdog_patience must be >= 1")
        self.runner = runner
        self.runner_factory = runner_factory
        self.config = config or GenerationConfig()
        self.injector = fault_injector
        #: Deterministic jitter stream for retry backoff (satellite of the
        #: recovery path: lockstep retries re-collide without it).
        self._backoff_rng = np.random.default_rng(seed)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = int(breaker_cooldown)
        self.watchdog_patience = int(watchdog_patience)
        self.router = Router(num_replicas, template_window=template_window)
        self.on_token = on_token
        #: Opt-in request-lifecycle tracing (see :mod:`repro.obs`).  The
        #: pool emits failover events onto a ``"pool"`` track and gives each
        #: replica's scheduler its own ``"replica<i>"`` track; requests are
        #: correlated across replica hops by their pool id (``"req<id>"``).
        self.tracer = tracer
        self._pool_track = "pool"
        self.cluster_stats = ClusterStats()
        self._scheduler_kwargs = dict(
            max_batch_size=max_batch_size,
            block_size=block_size,
            num_blocks=num_blocks,
            record_logits=record_logits,
            prefix_cache=prefix_cache,
            prefill_chunk=prefill_chunk,
            speculation=speculation,
            preemption=preemption,
        )
        self.replicas: List[_Replica] = [
            _Replica(replica_id, self._build_scheduler(replica_id))
            for replica_id in range(num_replicas)
        ]
        #: Pool request id -> (replica_id, local request id).
        self._placements: Dict[int, Tuple[int, int]] = {}
        #: (replica_id, local id) -> pool id (outputs/tokens translate back).
        self._local_to_pool: Dict[Tuple[int, int], int] = {}
        #: Retries already spent per pool id.
        self._retries: Dict[int, int] = {}
        self._next_pool_id = 0
        #: Counters folded in from schedulers discarded by crash rebuilds,
        #: so pool totals never silently lose pre-crash work.
        self._retired_stats: Dict[str, int] = dict.fromkeys(_POOL_STAT_KEYS, 0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_scheduler(self, replica_id: int) -> Scheduler:
        """A fresh replica engine wired into the pool's token hook.

        With a ``runner_factory`` every (re)build gets a *fresh* runner —
        for shard groups that means a new :class:`CollectiveGroup` with no
        dead shards, which is what makes shard-kill recovery converge.
        """
        runner = (
            self.runner_factory(replica_id)
            if self.runner_factory is not None
            else self.runner
        )
        return Scheduler(
            runner,
            self.config,
            on_token=lambda local_id, token, rid=replica_id: self._route_token(
                rid, local_id, token
            ),
            tracer=self.tracer,
            trace_track=f"replica{replica_id}",
            **self._scheduler_kwargs,
        )

    def _route_token(self, replica_id: int, local_id: int, token: int) -> None:
        """Translate a replica-local token event to the pool id space."""
        if self.on_token is None:
            return
        pool_id = self._local_to_pool.get((replica_id, local_id))
        if pool_id is not None:
            self.on_token(pool_id, token)

    # ------------------------------------------------------------------
    # Submission surface (Scheduler-shaped)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The pool clock: the furthest-ahead live replica's tick."""
        live = [r.scheduler.now for r in self.replicas if r.alive]
        return max(live) if live else 0.0

    @property
    def has_pending(self) -> bool:
        """True while any replica holds waiting, prefilling, or active work."""
        return any(
            replica.alive and replica.scheduler.has_pending for replica in self.replicas
        )

    @property
    def num_waiting(self) -> int:
        """Queued-but-unadmitted requests across the pool."""
        return sum(
            replica.scheduler.num_waiting for replica in self.replicas if replica.alive
        )

    @property
    def stats(self):
        """Scheduler stats of replica 0 plus pool totals — see ``replica_stats``.

        :class:`~repro.serve.async_engine.AsyncEngine` exposes
        ``engine.stats`` for a single engine; for a pool the per-replica
        breakdown is ``replica_stats`` and the robustness accounting is
        :attr:`cluster_stats`.  This property returns the merged view used
        by benchmarks: a dict of aggregate counters, including the work of
        schedulers that were discarded by crash rebuilds (pre-crash tokens
        are part of what the trace paid for, so they stay in the totals).
        """
        totals = dict(self._retired_stats)
        for replica in self.replicas:
            stats = replica.scheduler.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        return totals

    def replica_stats(self) -> List:
        """Each replica's :class:`~repro.serve.scheduler.SchedulerStats`."""
        return [replica.scheduler.stats for replica in self.replicas]

    def healthy_ids(self) -> List[int]:
        """Replica ids currently accepting traffic."""
        return [
            replica.replica_id
            for replica in self.replicas
            if replica.alive and replica.healthy
        ]

    def submit(
        self,
        request: Union[Request, np.ndarray],
        *,
        max_new_tokens: Optional[int] = None,
        arrival_time: float = 0.0,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> int:
        """Route one request to its sticky replica; return its *pool* id.

        The signature mirrors :meth:`Scheduler.submit` so callers (and
        :class:`AsyncEngine`) can treat a pool as a bigger scheduler.
        ``arrival_time`` and ``deadline`` are in scheduler ticks, applied on
        the routed replica's clock.

        Raises
        ------
        ResourceExhaustedError
            If no replica is healthy.
        ConfigurationError
            Anything :meth:`Scheduler.submit` rejects.
        """
        if isinstance(request, Request):
            prompt = request.prompt
            if (
                max_new_tokens is not None
                or arrival_time != 0.0
                or priority != 0
                or deadline is not None
            ):
                raise ConfigurationError(
                    "pass max_new_tokens/arrival_time/priority/deadline on the "
                    "Request itself, not as submit() keywords alongside one"
                )
            max_new_tokens = request.max_new_tokens
            arrival_time = request.arrival_time
            priority = request.priority
            deadline = request.deadline
        else:
            prompt = np.asarray(request, dtype=np.int64).reshape(-1)
        replica_id = self.router.place(prompt, self.healthy_ids())
        # The pool id is claimed *before* the local submit so the replica's
        # trace events carry the pool-level correlation id from the start.
        pool_id = self._next_pool_id
        local_id = self.replicas[replica_id].scheduler.submit(
            prompt,
            max_new_tokens=max_new_tokens,
            arrival_time=arrival_time,
            priority=priority,
            deadline=deadline,
            trace_corr=f"req{pool_id}" if self.tracer is not None else None,
        )
        self._next_pool_id += 1
        self._placements[pool_id] = (replica_id, local_id)
        self._local_to_pool[(replica_id, local_id)] = pool_id
        self._retries[pool_id] = 0
        return pool_id

    def cancel(self, request_id: int) -> RequestOutput:
        """Withdraw a pool request wherever it lives (pool-id output).

        Raises
        ------
        ConfigurationError
            If the pool id is unknown or already finished.
        """
        placement = self._placements.get(int(request_id))
        if placement is None:
            raise ConfigurationError(
                f"request {request_id} is not in flight (already finished, "
                "or never submitted to this pool)"
            )
        replica_id, local_id = placement
        output = self.replicas[replica_id].scheduler.cancel(local_id)
        return self._translate(replica_id, output)

    def expire(self, request_id: int) -> RequestOutput:
        """Expire a pool request through the deadline path (pool-id output).

        Raises
        ------
        ConfigurationError
            If the pool id is unknown or already finished.
        """
        placement = self._placements.get(int(request_id))
        if placement is None:
            raise ConfigurationError(
                f"request {request_id} is not in flight (already finished, "
                "or never submitted to this pool)"
            )
        replica_id, local_id = placement
        output = self.replicas[replica_id].scheduler.expire(local_id)
        return self._translate(replica_id, output)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def step(self) -> List[RequestOutput]:
        """One pool iteration: chaos, recovery, health, then replica steps.

        Per healthy replica, in replica-id order: consult the injector (a
        kill fails the replica before it can step — its in-flight requests
        are checkpointed mid-state; an exhaust sheds under memory pressure;
        a stall makes the step loop skip), step the scheduler, and feed the
        watchdog.  Breaker cooldowns are re-probed first, so a recovered
        replica serves in the same iteration it re-enters rotation.

        Returns
        -------
        list of RequestOutput
            Requests that finished this iteration, with pool-level ids.
        """
        iteration = self.cluster_stats.iterations
        self.cluster_stats.iterations += 1
        finished: List[RequestOutput] = []
        self._reprobe(iteration)
        for replica in self.replicas:
            if not (replica.alive and replica.healthy):
                self.cluster_stats.stalled_iterations += 1
                continue
            action = (
                self.injector.draw(iteration, replica.replica_id)
                if self.injector is not None
                else None
            )
            if action == "kill":
                self._fail_replica(
                    replica,
                    iteration,
                    finished,
                    error=ReplicaFailureError(
                        f"replica {replica.replica_id} chaos-killed at pool "
                        f"iteration {iteration}"
                    ),
                )
                continue
            if action == "exhaust":
                self._shed_lowest_priority(replica, finished)
            if action == "stall":
                replica.stall_remaining = self.injector.stall_steps
            if replica.stall_remaining > 0:
                replica.stall_remaining -= 1
                self.cluster_stats.stalled_iterations += 1
                self._watch(replica, iteration, finished, stepped=False)
                continue
            if not replica.scheduler.has_pending:
                replica.no_progress_steps = 0
                continue
            try:
                outputs = replica.scheduler.step()
            except ReplicaFailureError as error:
                self._fail_replica(replica, iteration, finished, error=error)
                continue
            replica.consecutive_failures = 0
            for output in outputs:
                finished.append(self._translate(replica.replica_id, output))
            self._watch(replica, iteration, finished, stepped=True)
        return finished

    def run(self) -> List[RequestOutput]:
        """Serve until every surviving request finished; outputs carry pool ids.

        Raises
        ------
        ResourceExhaustedError
            If the pool stops making progress with work still pending and
            no replica left to recover onto (the cluster-level livelock
            guard, mirroring :meth:`Scheduler.run`).
        """
        outputs: List[RequestOutput] = []
        idle_iterations = 0
        while self.has_pending:
            before = self._pool_signature()
            outputs.extend(self.step())
            if self._pool_signature() == before:
                idle_iterations += 1
                # Breaker cooldowns legitimately idle the pool for a bounded
                # run of iterations; anything longer is a livelock.
                limit = 2 * self.breaker_cooldown * max(1, len(self.replicas)) + 8
                if idle_iterations > limit:  # pragma: no cover - defensive
                    raise ResourceExhaustedError(
                        "replica pool made no progress; all replicas are "
                        "unhealthy or the KV pools are too small"
                    )
            else:
                idle_iterations = 0
        return outputs

    def _pool_signature(self) -> Tuple:
        """Progress signature of the whole pool (for the livelock guard)."""
        return tuple(
            (replica.alive, replica.healthy, replica.stall_remaining)
            + replica.progress_signature()
            for replica in self.replicas
        )

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _translate(self, replica_id: int, output: RequestOutput) -> RequestOutput:
        """Rewrite a replica-local output into the pool id space.

        Also stamps the pool-level retry count: a request that survived
        recoveries reports how many it consumed, whatever its finish reason.
        """
        pool_id = self._local_to_pool.pop((replica_id, output.request_id), None)
        if pool_id is None:  # pragma: no cover - defensive
            return output
        self._placements.pop(pool_id, None)
        retries = self._retries.pop(pool_id, 0)
        return replace(output, request_id=pool_id, retries=retries)

    def _fail_replica(
        self,
        replica: _Replica,
        iteration: int,
        finished: List[RequestOutput],
        *,
        error: Exception,
        rebuild: bool = True,
    ) -> None:
        """Checkpoint a failed replica's requests and re-admit them elsewhere.

        The recovery sweep: every in-flight request is exported as a
        :class:`RequestCheckpoint` (tokens + logits + RNG state), the
        replica's breaker accounting is bumped (opening it when
        ``breaker_threshold`` consecutive failures accumulate), and each
        checkpoint is re-routed to a healthy replica with exponential
        backoff — or degraded when its retry budget is spent.  ``rebuild``
        replaces a crashed engine with a fresh scheduler (a watchdog-tripped
        engine is intact and keeps its object, only its requests move).
        """
        self.cluster_stats.failures += 1
        checkpoints = replica.scheduler.checkpoint_all()
        replica.consecutive_failures += 1
        replica.healthy = False
        replica.no_progress_steps = 0
        replica.stall_remaining = 0
        opens = max(0, replica.consecutive_failures - self.breaker_threshold + 1)
        cooldown = self.breaker_cooldown * (2 ** max(0, opens - 1))
        replica.cooldown_until = iteration + 1 + cooldown
        self.cluster_stats.breaker_opens += 1
        if self.tracer is not None:
            self.tracer.instant(
                "replica.failed",
                self._pool_track,
                replica=replica.replica_id,
                iteration=iteration,
                error=str(error),
                checkpoints=len(checkpoints),
            )
            self.tracer.instant(
                "breaker.open",
                self._pool_track,
                replica=replica.replica_id,
                cooldown=cooldown,
            )
        if rebuild:
            replica.alive = False
        for checkpoint in checkpoints:
            self._recover(replica.replica_id, checkpoint, finished, error)

    def _recover(
        self,
        failed_id: int,
        checkpoint: RequestCheckpoint,
        finished: List[RequestOutput],
        error: Exception,
    ) -> None:
        """Re-admit one checkpoint on a healthy replica (or degrade it)."""
        pool_id = self._local_to_pool.pop((failed_id, checkpoint.request_id), None)
        if pool_id is None:  # pragma: no cover - defensive
            return
        self._placements.pop(pool_id, None)
        retries = self._retries.get(pool_id, 0)
        healthy = self.healthy_ids()
        if retries >= self.max_retries or not healthy:
            cause = (
                "retry_budget_exhausted" if retries >= self.max_retries
                else "no_healthy_replica"
            )
            finished.append(
                replace(
                    self._checkpoint_output(checkpoint, cause=cause, retries=retries),
                    request_id=pool_id,
                )
            )
            self._retries.pop(pool_id, None)
            self.cluster_stats.degraded_requests += 1
            self.cluster_stats.degraded_causes[cause] = (
                self.cluster_stats.degraded_causes.get(cause, 0) + 1
            )
            if self.tracer is not None:
                self.tracer.instant(
                    "request.degraded",
                    self._pool_track,
                    f"req{pool_id}",
                    cause=cause,
                    retries=retries,
                )
                if self.tracer.recorder is not None:
                    # An unrecovered request is the incident the flight
                    # recorder exists for: snapshot the tape at the moment
                    # of degradation, before later traffic overwrites it.
                    self.tracer.recorder.mark_incident(
                        f"request req{pool_id} degraded: {cause}"
                    )
            return
        self._retries[pool_id] = retries + 1
        delay = self.backoff_base * (2**retries) if retries else 0.0
        if delay:
            # Deterministic jitter in [0.5, 1.5): simultaneous failures fan
            # out instead of retrying in lockstep, reproducibly per pool seed.
            delay *= 0.5 + self._backoff_rng.random()
        target_id = self.router.place(np.asarray(checkpoint.prompt), healthy)
        local_id = self.replicas[target_id].scheduler.submit_checkpoint(
            checkpoint,
            delay=delay,
            trace_corr=f"req{pool_id}" if self.tracer is not None else None,
        )
        self._placements[pool_id] = (target_id, local_id)
        self._local_to_pool[(target_id, local_id)] = pool_id
        self.cluster_stats.recoveries += 1
        if self.tracer is not None:
            self.tracer.instant(
                "request.recovered",
                self._pool_track,
                f"req{pool_id}",
                source=failed_id,
                target=target_id,
                retry=retries + 1,
            )

    def _checkpoint_output(
        self,
        checkpoint: RequestCheckpoint,
        *,
        cause: str = "retry_budget_exhausted",
        retries: int = 0,
    ) -> RequestOutput:
        """Terminal ``"degraded"`` output for an unrecoverable checkpoint."""
        generated = np.asarray(checkpoint.generated, dtype=np.int64)
        vocab = self.runner.config.vocab_size
        step_logits = (
            np.stack([np.asarray(row, dtype=np.float64) for row in checkpoint.step_logits])
            if checkpoint.step_logits
            else np.zeros((0, vocab), dtype=np.float64)
        )
        return RequestOutput(
            request_id=int(checkpoint.request_id),
            prompt=checkpoint.prompt,
            sequence=np.concatenate(
                [np.asarray(checkpoint.prompt, dtype=np.int64), generated]
            ),
            generated=generated,
            prompt_length=len(checkpoint.prompt),
            step_logits=step_logits,
            num_steps=len(generated),
            finish_reason="degraded",
            admitted_at=-1.0,
            finished_at=self.now,
            prefix_hit_tokens=checkpoint.prefix_hit_tokens,
            priority=checkpoint.priority,
            arrival_time=checkpoint.arrival_time,
            first_token_at=checkpoint.first_token_at,
            preemptions=checkpoint.preemptions,
            failure_cause=cause,
            retries=retries,
        )

    def _shed_lowest_priority(
        self, replica: _Replica, finished: List[RequestOutput]
    ) -> None:
        """Degrade the least valuable *waiting* request under memory pressure.

        The victim is the highest priority value (least urgent), latest
        submission — mirroring the preemption victim rule — and only
        waiting requests are shed: admitted requests hold committed work
        the degradation policy must not destroy.  With nothing waiting the
        pressure event is a no-op (there is nothing to shed).
        """
        waiting = replica.scheduler.waiting_requests()
        if not waiting:
            return
        victim = max(waiting, key=lambda request: (request.priority, request.request_id))
        output = replica.scheduler.shed(victim.request_id)
        self.cluster_stats.degraded_requests += 1
        self.cluster_stats.degraded_causes["shed"] = (
            self.cluster_stats.degraded_causes.get("shed", 0) + 1
        )
        finished.append(self._translate(replica.replica_id, output))

    def _watch(
        self,
        replica: _Replica,
        iteration: int,
        finished: List[RequestOutput],
        *,
        stepped: bool,
    ) -> None:
        """Feed the zero-progress watchdog; trip it past the patience bound."""
        signature = replica.progress_signature()
        if not replica.scheduler.has_pending:
            replica.no_progress_steps = 0
            replica.last_progress = signature
            return
        if signature == replica.last_progress:
            replica.no_progress_steps += 1
        else:
            replica.no_progress_steps = 0
            replica.last_progress = signature
        if replica.no_progress_steps >= self.watchdog_patience:
            self.cluster_stats.watchdog_trips += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "watchdog.trip",
                    self._pool_track,
                    replica=replica.replica_id,
                    stalled=replica.no_progress_steps,
                )
            # The engine object is intact (merely stalled), so its requests
            # are checkpointed and moved without rebuilding the scheduler.
            self._fail_replica(
                replica,
                iteration,
                finished,
                error=ReplicaFailureError(
                    f"replica {replica.replica_id} made no progress for "
                    f"{replica.no_progress_steps} iterations"
                ),
                rebuild=False,
            )

    def _reprobe(self, iteration: int) -> None:
        """Return cooled-down replicas to rotation (fresh engine if crashed)."""
        for replica in self.replicas:
            if replica.healthy or iteration < replica.cooldown_until:
                continue
            if not replica.alive:
                for key in _POOL_STAT_KEYS:
                    self._retired_stats[key] += getattr(replica.scheduler.stats, key)
                replica.scheduler = self._build_scheduler(replica.replica_id)
                replica.alive = True
                if self.tracer is not None:
                    self.tracer.instant(
                        "replica.rebuilt",
                        self._pool_track,
                        replica=replica.replica_id,
                        iteration=iteration,
                    )
            replica.healthy = True
            replica.no_progress_steps = 0
            if self.tracer is not None:
                self.tracer.instant(
                    "breaker.close",
                    self._pool_track,
                    replica=replica.replica_id,
                    iteration=iteration,
                )
            replica.last_progress = (-1.0, -1, -1)
