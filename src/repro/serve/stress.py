"""Randomized stress/property harness for the paged KV cache invariant web.

The :class:`~repro.serve.paged_kv_cache.PagedKVCache` correctness story now
spans reference counts, a radix prefix index, copy-on-write forks, an LRU
free-list whose published blocks stay matchable, lazy dirty-bit scrubbing,
and speculative-rollback truncation.  Example-based tests pin each feature
in isolation; this module drives *mixed* schedules of the operations the
scheduler actually issues — admit (with prefix matching and the
``private_tail`` rule), decode writes, prefix forks, truncation, preemption
(free-then-replay), eviction, and the cluster fault vocabulary
(``replica_kill``/``shard_kill``: every live slot torn down at once —
exactly the checkpoint-and-recover sweep a crashed replica or a dead
tensor-parallel shard triggers, a shard group being one fault unit;
``replica_stall``/``shard_stall``: a zero-progress iteration the invariants
must survive unchanged; ``link_drop``: a collective message lost on the
wire, retried inside the transport with a checksummed pristine payload, so
the pool must be bit-for-bit indifferent) — and asserts the global
invariants after every single operation:

* **Refcount duality** — every block's reference count equals its number of
  occurrences across live slot tables, and a block is on the LRU free-list
  exactly when that count is zero.
* **Radix consistency** — the prefix index, reverse key map, and children
  sets agree; every indexed block is live or LRU-matchable; every non-root
  parent is itself indexed.
* **Version monotonicity** — ``table_version`` never moves backwards.
* **Content** — a *shadow model* predicts the exact value of every reserved
  position of every live slot.  Payloads are a pure function of the
  token prefix and position (mirroring the scheduler contract that KV is a
  function of the tokens that produced it), so prefix hits must surface
  byte-identical content, copy-on-write must preserve it, freshly allocated
  blocks must read zero (the dirty-bit scrub rule), and truncation must
  scrub exactly the sole-owner positions it rolls back.

Every run records an explicit op log (plain dicts, no hidden RNG), so a
failure is replayable with :meth:`ServingStressHarness.replay` and
shrinkable with :func:`shrink_ops` — delta-debugging deletes ops while the
failure reproduces, leaving a minimal schedule.  Ops reference slots by
harness-level handles, not pool slot ids, so deleting an op never
re-numbers the survivors; an op whose handle is dead (or whose
preconditions no longer hold) replays as a no-op.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ResourceExhaustedError
from repro.serve.paged_kv_cache import _ROOT, PagedKVCache


class InvariantViolation(AssertionError):
    """A global pool invariant failed after an operation."""


def _base_value(tokens: np.ndarray, position: int) -> float:
    """Deterministic per-(token-prefix, position) payload base in ``[1, 2)``.

    The value written at ``position`` is a pure function of the tokens up to
    and including it — exactly the property real KV has — so two slots
    agreeing on a prefix must hold bit-identical content there, and a wrong
    radix match surfaces as a content mismatch.  The dyadic mantissa keeps
    every derived float exactly representable, so checks use ``==``.
    """
    prefix = np.ascontiguousarray(tokens[: position + 1], dtype=np.int64)
    return 1.0 + (zlib.crc32(prefix.tobytes()) % 2**20) / 2**20


def check_pool_invariants(cache: PagedKVCache, last_version: Optional[int] = None) -> int:
    """Assert the structural invariant web of one pool; return its version.

    Parameters
    ----------
    cache : PagedKVCache
        The pool to audit.
    last_version : int, optional
        A previously observed ``table_version``; the current version must
        not be smaller (monotonicity).

    Returns
    -------
    int
        The pool's current ``table_version`` (pass it back next call).

    Raises
    ------
    InvariantViolation
        On any refcount, free-list, radix, or version inconsistency.
    """
    occurrences: Dict[int, int] = {}
    for slot in cache.active_slots:
        for block in cache.block_table(slot):
            occurrences[block] = occurrences.get(block, 0) + 1
    free = cache.free_blocks()
    free_set = set(free)
    if len(free) != len(free_set):
        raise InvariantViolation("free-list holds a duplicate block")
    for block in range(cache.num_blocks):
        refs = cache.ref_count(block)
        if refs != occurrences.get(block, 0):
            raise InvariantViolation(
                f"block {block} refcount {refs} != {occurrences.get(block, 0)} "
                "occurrences across live slot tables"
            )
        if (refs == 0) != (block in free_set):
            raise InvariantViolation(
                f"block {block} (refcount {refs}) and the free-list disagree"
            )
    entries = cache.radix_entries()
    for (parent, run), block in entries.items():
        if cache.block_key_of(block) != (parent, run):
            raise InvariantViolation(f"radix reverse map disagrees for block {block}")
        if cache.ref_count(block) == 0 and block not in free_set:
            raise InvariantViolation(
                f"indexed block {block} is neither live nor LRU-matchable"
            )
        if parent != _ROOT:
            if cache.block_key_of(parent) is None:
                raise InvariantViolation(
                    f"indexed block {block} has unindexed parent {parent}"
                )
            if block not in cache.radix_children(parent):
                raise InvariantViolation(
                    f"block {block} missing from parent {parent}'s children"
                )
    indexed = set(entries.values())
    if len(indexed) != len(entries):
        raise InvariantViolation("two radix keys map to the same block")
    for parent in list(indexed) + [_ROOT]:
        for child in cache.radix_children(parent):
            key = cache.block_key_of(child)
            if key is None or key[0] != parent:
                raise InvariantViolation(
                    f"children set of {parent} lists {child}, whose key is {key}"
                )
    version = cache.table_version
    if last_version is not None and version < last_version:
        raise InvariantViolation(
            f"table_version moved backwards: {last_version} -> {version}"
        )
    return version


class _SlotModel:
    """Shadow of one live slot: its tokens and expected pool content."""

    __slots__ = ("slot", "tokens", "expected")

    def __init__(self, slot: int, tokens: List[int], capacity: int) -> None:
        self.slot = slot
        self.tokens = list(tokens)
        #: Expected payload base per reserved position (0.0 = must read zero).
        self.expected = np.zeros(capacity, dtype=np.float64)


class ServingStressHarness:
    """Seeded random schedules of scheduler-shaped ops against one pool.

    The harness issues exactly the call sequences the scheduler issues —
    ``match_prefix`` → ``reserve`` (with the final-token ``private_tail``
    rule) → ``set_length`` → chunked ``write`` → ``publish_prefix`` for
    admission, per-token writes for decode, ``truncate`` for rollback,
    ``free`` for eviction/preemption, an all-slots ``replica_kill`` crash
    sweep, and a no-op ``replica_stall`` — and audits every invariant
    after each op (see the module docstring).

    Parameters
    ----------
    seed : int
        Seed of the op-generation RNG (each seed is one schedule).
    num_layers, num_heads, d_head, block_size, num_blocks
        Pool geometry; deliberately tiny so block exhaustion, LRU
        reclamation, and COW forks all trigger within a short schedule.
    max_slots : int
        Live-slot ceiling (mirrors the scheduler's ``max_batch_size``).
    vocab : int
        Token alphabet size; small, so prompts collide and prefixes match.
    tracer : repro.obs.Tracer, optional
        Opt-in tracing: the cache's ``cache.*`` events are routed through
        this tracer, and when it carries a
        :class:`~repro.obs.FlightRecorder` an
        :class:`InvariantViolation` snapshots the tape
        (``mark_incident``) — the last N cache events before the violated
        invariant, readable without replaying the schedule.

    Examples
    --------
    >>> harness = ServingStressHarness(seed=0)
    >>> ops = harness.run(200)            # raises InvariantViolation on bugs
    >>> ServingStressHarness.replay(ops)  # deterministic re-run
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        num_layers: int = 2,
        num_heads: int = 2,
        d_head: int = 3,
        block_size: int = 4,
        num_blocks: int = 24,
        max_slots: int = 5,
        vocab: int = 12,
        tracer=None,
    ) -> None:
        self.cache = PagedKVCache(
            num_layers=num_layers,
            num_heads=num_heads,
            d_head=d_head,
            block_size=block_size,
            num_blocks=num_blocks,
        )
        self.tracer = tracer
        if tracer is not None:
            self.cache.tracer = tracer
            self.cache.trace_track = "stress"
        self.rng = np.random.default_rng(seed)
        self.block_size = block_size
        self.max_slots = max_slots
        self.vocab = vocab
        #: Live slots by harness handle ("r0", "r1", ...).
        self.live: Dict[str, _SlotModel] = {}
        #: Token sequences admissions draw prefixes from; preempted
        #: sequences are appended so replays re-match their published blocks.
        self.templates: List[np.ndarray] = [
            self.rng.integers(0, vocab, size=int(self.rng.integers(block_size, 4 * block_size)))
            for _ in range(3)
        ]
        self.op_log: List[dict] = []
        self._next_handle = 0
        self._version = self.cache.table_version

    # ------------------------------------------------------------------
    # Schedule generation
    # ------------------------------------------------------------------
    def random_op(self) -> dict:
        """Draw the next op (explicit, replayable — no RNG needed to apply)."""
        rng = self.rng
        choices: List[str] = []
        if len(self.live) < self.max_slots:
            choices += ["admit"] * 3
            if self.live:
                choices += ["fork"] * 2
        if self.live:
            choices += ["decode"] * 6 + ["truncate"] * 2 + ["evict", "preempt"]
            choices += ["replica_kill", "shard_kill"]
        choices += ["replica_stall", "link_drop", "shard_stall"]
        kind = choices[int(rng.integers(len(choices)))]
        if kind in ("replica_kill", "replica_stall", "shard_kill", "link_drop", "shard_stall"):
            return {"kind": kind}
        if kind in ("admit", "fork"):
            if kind == "fork":
                source = self._pick_handle()
                base = np.asarray(self.live[source].tokens, dtype=np.int64)
            else:
                base = self.templates[int(rng.integers(len(self.templates)))]
            prefix_len = int(rng.integers(1, len(base) + 1))
            suffix = rng.integers(0, self.vocab, size=int(rng.integers(0, self.block_size + 2)))
            tokens = np.concatenate([base[:prefix_len], suffix]).tolist()
            handle = f"r{self._next_handle}"
            self._next_handle += 1
            return {
                "kind": kind,
                "handle": handle,
                "tokens": [int(t) for t in tokens],
                "budget": int(rng.integers(1, 2 * self.block_size)),
                "publish": bool(rng.random() < 0.8),
            }
        handle = self._pick_handle()
        if kind == "decode":
            return {"kind": "decode", "handle": handle, "token": int(rng.integers(self.vocab))}
        if kind == "truncate":
            length = len(self.live[handle].tokens)
            return {
                "kind": "truncate",
                "handle": handle,
                "new_length": int(rng.integers(1, length + 1)),
                "keep_capacity": bool(rng.random() < 0.5),
            }
        return {"kind": kind, "handle": handle}

    def _pick_handle(self) -> str:
        """Uniformly pick a live handle (insertion order is deterministic)."""
        handles = list(self.live)
        return handles[int(self.rng.integers(len(handles)))]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, num_ops: int) -> List[dict]:
        """Generate and apply ``num_ops`` random ops; return the op log."""
        for _ in range(num_ops):
            self.apply(self.random_op())
        return self.op_log

    @classmethod
    def replay(cls, ops: List[dict], **kwargs) -> "ServingStressHarness":
        """Re-apply a recorded op log on a fresh pool (same geometry).

        Deterministic: the ops are explicit, so no RNG state is needed.
        Raises :class:`InvariantViolation` exactly where the original run
        would.
        """
        harness = cls(**kwargs)
        for op in ops:
            harness.apply(op)
        return harness

    def apply(self, op: dict) -> None:
        """Apply one op, record it, and audit every invariant.

        Ops whose preconditions fail (dead handle, over-long truncate,
        exhausted pool) are applied as no-ops — that is what makes a
        recorded log robust under shrinking deletions.
        """
        self.op_log.append(op)
        kind = op["kind"]
        if kind in ("admit", "fork"):
            self._apply_admit(op)
        elif kind == "decode":
            self._apply_decode(op)
        elif kind == "truncate":
            self._apply_truncate(op)
        elif kind in ("evict", "preempt"):
            self._apply_release(op)
        elif kind in ("replica_kill", "shard_kill"):
            # A shard death fails its whole group — one fault unit — so the
            # pool-side sweep is identical to a whole-replica crash.
            self._apply_replica_kill(op)
        elif kind in ("replica_stall", "link_drop", "shard_stall"):
            # A stalled step loop touches nothing; a dropped or delayed
            # collective message is retried/hedged inside the transport and
            # the delivered payload is pristine (checksummed), so the KV
            # pool must be bit-for-bit indifferent to all three — the audit
            # below asserts exactly that.
            pass
        else:
            raise InvariantViolation(f"unknown op kind {kind!r}")
        self.check()

    def _apply_admit(self, op: dict) -> None:
        """Admission exactly as the scheduler performs it."""
        cache = self.cache
        tokens = np.asarray(op["tokens"], dtype=np.int64)
        capacity = len(tokens) + op["budget"] - 1
        if len(self.live) >= self.max_slots or cache.blocks_needed(capacity) > cache.num_blocks:
            return
        matched = cache.match_prefix(tokens)
        start = min(len(matched) * self.block_size, len(tokens) - 1)
        try:
            slot = cache.reserve(
                capacity,
                shared=matched,
                private_tail=start < len(matched) * self.block_size,
            )
        except ResourceExhaustedError:
            return
        cache.set_length(slot, start)
        model = _SlotModel(slot, op["tokens"], cache.capacity_of(slot))
        # Matched blocks carry the publisher's payloads, which chained block
        # identity guarantees equal this prompt's own function values.
        for position in range(len(tokens)):
            model.expected[position] = _base_value(tokens, position)
        self._write_range(model, start, len(tokens))
        cache.set_length(slot, len(tokens))
        if op["publish"]:
            cache.publish_prefix(slot, tokens)
        self.live[op["handle"]] = model

    def _write_range(self, model: _SlotModel, begin: int, end: int) -> None:
        """Write payloads for positions ``[begin, end)`` of one slot."""
        if begin >= end:
            return
        cache = self.cache
        heads = cache.key_blocks[0].shape[0]
        d_head = cache.key_blocks[0].shape[3]
        positions = np.arange(begin, end, dtype=np.int64)
        tokens = np.asarray(model.tokens, dtype=np.int64)
        bases = np.array([_base_value(tokens, int(p)) for p in positions])
        for layer in range(cache.num_layers):
            keys = np.broadcast_to(
                bases[None, None, :, None] + layer * 0.125,
                (1, heads, len(positions), d_head),
            )
            values = keys + 0.0625
            cache.write(layer, [model.slot], keys, values, positions[None, :])

    def _apply_decode(self, op: dict) -> None:
        """One decode-step write: append a token at the slot's length."""
        model = self.live.get(op["handle"])
        if model is None:
            return
        cache = self.cache
        length = cache.length_of(model.slot)
        if length >= cache.capacity_of(model.slot):
            return
        # Writing into a shared block copy-on-write-forks it, which needs a
        # free (or reclaimable) block; with none available the scheduler
        # would have evicted someone first — here the op degrades to a no-op
        # so tight-pool schedules keep running instead of dying mid-write.
        target = cache.block_table(model.slot)[length // self.block_size]
        if cache.ref_count(target) > 1 and cache.free_block_count == 0:
            return
        model.tokens = model.tokens[:length] + [op["token"]]
        self._write_range(model, length, length + 1)
        model.expected[length] = _base_value(
            np.asarray(model.tokens, dtype=np.int64), length
        )
        cache.set_length(model.slot, length + 1)

    def _apply_truncate(self, op: dict) -> None:
        """Speculative-style rollback, mirroring the pool's scrub rule."""
        model = self.live.get(op["handle"])
        if model is None:
            return
        cache = self.cache
        length = cache.length_of(model.slot)
        new_length = op["new_length"]
        if new_length > length or length == 0:
            return
        table = cache.block_table(model.slot)
        min_capacity = cache.capacity_of(model.slot) if op["keep_capacity"] else 0
        cache.truncate(model.slot, new_length, min_capacity=min_capacity)
        keep = len(cache.block_table(model.slot))
        model.expected = model.expected[: keep * self.block_size].copy()
        # Sole-owner retained blocks are scrubbed over the rolled-back
        # window; shared blocks keep their bytes (COW protects later writes).
        first_cut = new_length // self.block_size if new_length < length else keep
        for index in range(first_cut, keep):
            if cache.ref_count(table[index]) != 1:
                continue
            begin = max(new_length, index * self.block_size)
            end = min(length, (index + 1) * self.block_size)
            if begin < end:
                model.expected[begin:end] = 0.0
        model.tokens = model.tokens[:new_length]

    def _apply_release(self, op: dict) -> None:
        """Eviction or preemption: free the slot (and remember the replay)."""
        model = self.live.pop(op["handle"], None)
        if model is None:
            return
        if op["kind"] == "preempt" and model.tokens:
            # A preempted request replays its tokens later; keeping them in
            # the template pool makes future admissions retrace the replay
            # path (and hit the LRU-matchable published blocks).
            self.templates.append(np.asarray(model.tokens, dtype=np.int64))
        self.cache.free(model.slot)

    def _apply_replica_kill(self, op: dict) -> None:
        """Crash sweep: every live slot is torn down in one op.

        Mirrors :meth:`Scheduler.checkpoint_all` on a chaos-killed replica —
        all slots free at once (published blocks stay LRU-matchable), and
        every sequence joins the template pool so later admissions replay
        the recovered requests over prefix hits.  With nothing live the op
        degrades to a no-op, keeping shrunk logs valid.
        """
        for handle in list(self.live):
            model = self.live.pop(handle)
            if model.tokens:
                self.templates.append(np.asarray(model.tokens, dtype=np.int64))
            self.cache.free(model.slot)

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Audit structural invariants plus exact content of every slot."""
        try:
            self._version = check_pool_invariants(self.cache, self._version)
            self._check_content()
        except InvariantViolation as error:
            if self.tracer is not None and self.tracer.recorder is not None:
                self.tracer.recorder.mark_incident(
                    f"invariant violation after op {len(self.op_log)}: {error}"
                )
            raise InvariantViolation(
                f"{error} — after op {len(self.op_log)}: {self.op_log[-1]!r}"
            ) from error

    def _check_content(self) -> None:
        """Compare every reserved position of every slot to the shadow."""
        cache = self.cache
        for handle, model in self.live.items():
            capacity = cache.capacity_of(model.slot)
            for layer in range(cache.num_layers):
                keys, values = cache.gather(layer, [model.slot], capacity)
                expected_k = np.where(
                    model.expected > 0.0, model.expected + layer * 0.125, 0.0
                )
                expected_v = np.where(
                    model.expected > 0.0, model.expected + layer * 0.125 + 0.0625, 0.0
                )
                for name, got, want in (
                    ("key", keys, expected_k),
                    ("value", values, expected_v),
                ):
                    if not (got == want[None, None, :, None]).all():
                        position = int(
                            np.nonzero((got != want[None, None, :, None]).any(axis=(0, 1, 3)))[0][0]
                        )
                        raise InvariantViolation(
                            f"{handle} layer {layer} {name} mismatch at position "
                            f"{position}: got {got[0, 0, position, 0]!r}, want "
                            f"{want[position]!r}"
                        )


def shrink_ops(ops: List[dict], fails: Callable[[List[dict]], bool]) -> List[dict]:
    """Delta-debug an op log down to a minimal still-failing schedule.

    Greedily deletes one op at a time (re-testing the remainder with
    ``fails``) until no single deletion preserves the failure.  Because ops
    reference harness handles — never raw slot ids — a log with deletions
    is always a valid schedule: orphaned ops degrade to no-ops.

    Parameters
    ----------
    ops : list of dict
        The recorded failing op log.
    fails : callable
        ``fails(candidate_ops) -> bool`` — True when the candidate still
        reproduces the failure (e.g. "replay raises InvariantViolation").

    Returns
    -------
    list of dict
        A 1-minimal failing sub-schedule (every remaining op is necessary).
    """
    ops = list(ops)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(ops):
            candidate = ops[:index] + ops[index + 1 :]
            if fails(candidate):
                ops = candidate
                changed = True
            else:
                index += 1
    return ops
