"""Analytical GPU GEMM latency model (Figure 12)."""

from repro.gpu.devices import GPU_SPECS, GPUSpec, get_gpu
from repro.gpu.latency import (
    GemmLatency,
    figure12_latencies,
    fp16_latency_ms,
    int8_latency_ms,
    per_channel_latency_ms,
    tender_software_latency_ms,
)

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "get_gpu",
    "GemmLatency",
    "fp16_latency_ms",
    "int8_latency_ms",
    "per_channel_latency_ms",
    "tender_software_latency_ms",
    "figure12_latencies",
]
