"""Analytical GPU latency models: Figure 12 GEMMs, decode steps, serving.

``figure12_latencies`` reproduces the paper's Figure 12;
:class:`DecodeWorkload` extends the same roofline to one KV-cached decode
step, :class:`ContinuousBatchWorkload` to a whole serving trace
(continuous vs static batching under Poisson arrivals),
:class:`PrefixCacheWorkload` to shared-prompt serving (prefix-cache hit
rate → request throughput), :class:`SpeculativeWorkload` to
draft-and-verify decoding (accept rate → decode throughput), and
:class:`PagedAttentionWorkload` to gather-free paged attention (the dense
KV copy the fused kernel avoids, versus context length),
:class:`PreemptionWorkload` to priority preemption (the urgent-TTFT gain
of evicting a victim versus the recompute its resume pays), and
:class:`FaultToleranceWorkload` to replica-pool fault tolerance (the
goodput kept under failures when recovery replays checkpoints over
prefix-cache hits instead of recomputing whole contexts), and
:class:`TensorParallelWorkload` to column-parallel tensor sharding (the
compute divided across shards versus the per-layer all-gathers added
back, and the goodput a shard group keeps when any shard's death fails
the whole group), and :class:`ObservabilityOverheadWorkload` to
request-lifecycle tracing (the per-step emit tax with tracing enabled
versus the guard-branch residue of the disabled path).
"""

from repro.gpu.devices import GPU_SPECS, GPUSpec, get_gpu
from repro.gpu.latency import (
    ContinuousBatchWorkload,
    DecodeWorkload,
    FaultToleranceWorkload,
    GemmLatency,
    ObservabilityOverheadWorkload,
    PagedAttentionWorkload,
    PreemptionWorkload,
    PrefixCacheWorkload,
    SpeculativeWorkload,
    TensorParallelWorkload,
    continuous_batch_throughput,
    decode_step_latencies,
    decode_throughput_tokens_per_s,
    fault_tolerance_goodput,
    figure12_latencies,
    fp16_latency_ms,
    int8_latency_ms,
    observability_overhead,
    paged_attention_throughput,
    per_channel_latency_ms,
    preemption_tradeoff,
    prefix_cache_throughput,
    speculative_throughput,
    tender_software_latency_ms,
    tensor_parallel_speedup,
)

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "get_gpu",
    "GemmLatency",
    "DecodeWorkload",
    "ContinuousBatchWorkload",
    "FaultToleranceWorkload",
    "ObservabilityOverheadWorkload",
    "PagedAttentionWorkload",
    "PreemptionWorkload",
    "PrefixCacheWorkload",
    "SpeculativeWorkload",
    "TensorParallelWorkload",
    "continuous_batch_throughput",
    "fault_tolerance_goodput",
    "observability_overhead",
    "paged_attention_throughput",
    "preemption_tradeoff",
    "prefix_cache_throughput",
    "speculative_throughput",
    "tensor_parallel_speedup",
    "fp16_latency_ms",
    "int8_latency_ms",
    "per_channel_latency_ms",
    "tender_software_latency_ms",
    "figure12_latencies",
    "decode_step_latencies",
    "decode_throughput_tokens_per_s",
]
