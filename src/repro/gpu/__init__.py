"""Analytical GPU GEMM latency model (Figure 12)."""

from repro.gpu.devices import GPU_SPECS, GPUSpec, get_gpu
from repro.gpu.latency import (
    DecodeWorkload,
    GemmLatency,
    decode_step_latencies,
    decode_throughput_tokens_per_s,
    figure12_latencies,
    fp16_latency_ms,
    int8_latency_ms,
    per_channel_latency_ms,
    tender_software_latency_ms,
)

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "get_gpu",
    "GemmLatency",
    "DecodeWorkload",
    "fp16_latency_ms",
    "int8_latency_ms",
    "per_channel_latency_ms",
    "tender_software_latency_ms",
    "figure12_latencies",
    "decode_step_latencies",
    "decode_throughput_tokens_per_s",
]
