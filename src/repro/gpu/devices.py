"""GPU device specifications shared by all latency models in this package.

Originally introduced for the Figure 12 reproduction; the decode-step and
continuous-batching serving models (``repro.gpu.latency``) price their GEMMs
against the same specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """Throughput/bandwidth envelope of a GPU for GEMM kernels."""

    name: str
    fp16_tflops: float
    int8_tops: float
    memory_bandwidth_gbps: float
    #: Fixed per-kernel launch/epilogue overhead (microseconds).
    kernel_launch_us: float
    #: GEMM FLOP count below which the device is underutilized; kernels of
    #: this size or smaller achieve roughly half of peak (captures the paper's
    #: observation that small-model INT8 GEMMs on A100 show no gain over FP16).
    saturation_gflop: float


#: Published peak numbers for the two GPUs used in Figure 12.
GPU_SPECS: Dict[str, GPUSpec] = {
    "rtx3090": GPUSpec(
        name="RTX 3090",
        fp16_tflops=71.0,
        int8_tops=142.0,
        memory_bandwidth_gbps=936.0,
        kernel_launch_us=8.0,
        saturation_gflop=15.0,
    ),
    "a100": GPUSpec(
        name="A100 80GB",
        fp16_tflops=312.0,
        int8_tops=624.0,
        memory_bandwidth_gbps=2039.0,
        kernel_launch_us=8.0,
        saturation_gflop=120.0,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by short name ('rtx3090' or 'a100')."""
    key = name.lower()
    if key not in GPU_SPECS:
        raise ConfigurationError(f"unknown GPU {name!r}; expected one of {sorted(GPU_SPECS)}")
    return GPU_SPECS[key]
