"""Analytical GPU GEMM latency model: Figure 12, decode steps, and serving.

Four layers of modelling share one roofline:

* :func:`figure12_latencies` — the paper's Figure 12 (one prefill-shaped
  query-projection GEMM per scheme);
* :class:`DecodeWorkload` / :func:`decode_step_latencies` — all GEMMs of one
  KV-cached decode step (the skinny-GEMM serving regime);
* :class:`ContinuousBatchWorkload` / :func:`continuous_batch_throughput` —
  token throughput of a decode *service* under Poisson arrivals, comparing
  continuous batching against static (gang) batching;
* :class:`PrefixCacheWorkload` / :func:`prefix_cache_throughput` — request
  throughput as a function of the *prefix-cache hit rate*: cached prompt
  blocks skip their prefill GEMMs entirely, so the serving speedup is the
  ratio of cold to suffix-only request latency;
* :class:`SpeculativeWorkload` / :func:`speculative_throughput` — decode
  throughput as a function of the *draft accept rate*: one multi-token
  verification forward replaces an expected run of sequential decode
  steps, so the speedup is the expected committed tokens discounted by the
  wider verify GEMMs and the drafting cost.

Figure 12 measures, for one query-projection GEMM, the latency of:

* FP16 (cuBLAS-style half-precision GEMM),
* INT8 per-tensor and per-row quantization (a single CUTLASS INT8 GEMM plus a
  cheap epilogue),
* INT8 per-channel quantization (impracticable on tensor cores: realised as a
  floating-point GEMM after elementwise dequantization),
* Tender SW (the Tender algorithm without hardware support: one INT8 GEMM per
  channel group, each padded to a multiple of 16 columns for the tensor-core
  alignment requirement, with explicit FP dequantize/accumulate between
  groups).

The model is a roofline with a per-kernel launch overhead and an
underutilization penalty for small GEMMs, which reproduces the paper's
qualitative findings: per-tensor/per-row INT8 is the fastest, Tender SW sits
slightly below FP16, per-channel costs the most, and on the A100 the gains of
INT8 over FP16 shrink because the small-model GEMM does not saturate the
device.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.gpu.devices import GPUSpec, get_gpu

#: Tensor-core INT8 kernels require operand tiles aligned to 16 elements
#: (128-bit vectors), so each channel-group submatrix is padded up to this.
TENSOR_CORE_ALIGNMENT = 16


@dataclass
class GemmLatency:
    """Latency of one scheme on one GEMM."""

    scheme: str
    milliseconds: float
    normalized_to_fp16: float = 0.0


def _roofline_ms(
    m: int,
    k: int,
    n: int,
    device: GPUSpec,
    precision: str,
    num_kernels: int = 1,
    extra_bytes: int = 0,
) -> float:
    """Roofline latency (ms) of a GEMM at the given precision."""
    macs = m * k * n
    flops = 2.0 * macs
    if precision == "fp16":
        peak = device.fp16_tflops * 1e12
        bytes_per_element = 2
    elif precision == "int8":
        peak = device.int8_tops * 1e12
        bytes_per_element = 1
    elif precision == "fp32":
        peak = device.fp16_tflops * 1e12 / 2.0
        bytes_per_element = 4
    else:
        raise ConfigurationError(f"unknown precision {precision!r}")
    # Underutilization: small GEMMs reach roughly half of peak throughput.
    utilization = min(1.0, 0.5 + 0.5 * (flops / 1e9) / device.saturation_gflop)
    compute_s = flops / (peak * utilization)
    data_bytes = (m * k + k * n + m * n) * bytes_per_element + extra_bytes
    memory_s = data_bytes / (device.memory_bandwidth_gbps * 1e9)
    launch_s = num_kernels * device.kernel_launch_us * 1e-6
    return (max(compute_s, memory_s) + launch_s) * 1e3


def fp16_latency_ms(m: int, k: int, n: int, device: GPUSpec) -> float:
    """Baseline FP16 GEMM latency."""
    return _roofline_ms(m, k, n, device, "fp16")


def int8_latency_ms(m: int, k: int, n: int, device: GPUSpec) -> float:
    """Per-tensor / per-row INT8 GEMM latency (single kernel + epilogue)."""
    epilogue_bytes = m * n * 4  # INT32 accumulators rescaled in the epilogue
    return _roofline_ms(m, k, n, device, "int8", extra_bytes=epilogue_bytes)


def per_channel_latency_ms(m: int, k: int, n: int, device: GPUSpec) -> float:
    """Per-channel INT8 activation quantization.

    Each element needs its own scale during the reduction, which tensor cores
    cannot do; the practical realisation dequantizes the activation to FP16
    and runs the FP16 GEMM, paying an extra elementwise pass over the operand.
    """
    dequant_bytes = m * k * 3  # read int8, write fp16
    return _roofline_ms(m, k, n, device, "fp16", num_kernels=2, extra_bytes=dequant_bytes)


def tender_software_latency_ms(
    m: int,
    k: int,
    n: int,
    device: GPUSpec,
    num_groups: int = 8,
    group_fractions: List[float] | None = None,
) -> float:
    """Tender implemented in software on a GPU (no hardware rescaler).

    The activation is split into ``num_groups`` column groups; each group runs
    its own INT8 GEMM (padded to the tensor-core alignment), and the partial
    results are dequantized and accumulated in FP32 — the explicit
    requantization path of Figure 5(a).
    """
    if group_fractions is None:
        # Channel groups are heavily skewed: the outlier groups are tiny and
        # the final (normal-value) group holds most channels.
        remaining = 1.0
        group_fractions = []
        for _ in range(num_groups - 1):
            fraction = remaining * 0.15
            group_fractions.append(fraction)
            remaining -= fraction
        group_fractions.append(remaining)
    total_ms = 0.0
    for fraction in group_fractions:
        group_k = max(int(round(k * fraction)), 1)
        padded_k = ceil(group_k / TENSOR_CORE_ALIGNMENT) * TENSOR_CORE_ALIGNMENT
        accumulate_bytes = m * n * 8  # read + write the FP32 accumulator
        total_ms += _roofline_ms(m, padded_k, n, device, "int8", extra_bytes=accumulate_bytes)
    return total_ms


#: Per-row INT8 pays a slightly costlier epilogue than per-tensor (the rescale
#: reads a scale vector instead of a scalar).
PER_ROW_EPILOGUE_FACTOR = 1.02


def _scheme_latencies_ms(m: int, k: int, n: int, device: GPUSpec, num_groups: int) -> Dict[str, float]:
    """Latency of every Figure 12 scheme on one GEMM (the shared scheme table)."""
    int8 = int8_latency_ms(m, k, n, device)
    return {
        "FP16": fp16_latency_ms(m, k, n, device),
        "INT8 (per-tensor)": int8,
        "INT8 (per-row)": int8 * PER_ROW_EPILOGUE_FACTOR,
        "INT8 (per-channel)": per_channel_latency_ms(m, k, n, device),
        "Tender SW": tender_software_latency_ms(m, k, n, device, num_groups),
    }


def _normalized_to_fp16(totals: Dict[str, float]) -> Dict[str, GemmLatency]:
    fp16 = totals["FP16"]
    return {
        scheme: GemmLatency(scheme=scheme, milliseconds=value, normalized_to_fp16=value / fp16)
        for scheme, value in totals.items()
    }


def figure12_latencies(
    m: int,
    k: int,
    n: int,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, GemmLatency]:
    """All Figure 12 schemes on one GEMM, normalized to FP16."""
    device = get_gpu(device_name)
    return _normalized_to_fp16(_scheme_latencies_ms(m, k, n, device, num_groups))


# ----------------------------------------------------------------------
# Autoregressive decode workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecodeWorkload:
    """The GEMMs of one KV-cached decode step of a decoder-only model.

    Unlike the prefill GEMMs of Figure 12, decode GEMMs are skinny — the row
    dimension is the *batch size*, not ``batch x sequence`` — and the
    activation-activation matmuls grow with the attended ``context`` length.
    This is the regime where per-kernel overheads and underutilization
    dominate, which is exactly why Tender's software fallback (one GEMM per
    channel group) is disproportionately expensive during serving.
    """

    batch: int
    context: int
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    #: Include the LM-head GEMM when > 0 (applied once, outside the layers).
    vocab: int = 0

    def __post_init__(self) -> None:
        if min(self.batch, self.context, self.d_model, self.d_ff, self.num_heads, self.num_layers) < 1:
            raise ConfigurationError("DecodeWorkload dimensions must be >= 1")
        if self.d_model % self.num_heads:
            raise ConfigurationError("d_model must be divisible by num_heads")

    @property
    def d_head(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.num_heads

    def layer_gemms(self) -> List[tuple]:
        """(m, k, n) of every GEMM in one Transformer layer's decode step."""
        rows = self.batch
        head_rows = self.batch * self.num_heads
        return [
            (rows, self.d_model, self.d_model),        # Q projection
            (rows, self.d_model, self.d_model),        # K projection
            (rows, self.d_model, self.d_model),        # V projection
            (head_rows, self.d_head, self.context),    # X_Q @ X_K^T over the cache
            (head_rows, self.context, self.d_head),    # X_S @ X_V over the cache
            (rows, self.d_model, self.d_model),        # output projection
            (rows, self.d_model, self.d_ff),           # FC1
            (rows, self.d_ff, self.d_model),           # FC2
        ]

    def step_gemms(self) -> List[tuple]:
        """All GEMMs of one decode step (layers plus optional LM head)."""
        gemms = self.layer_gemms() * self.num_layers
        if self.vocab:
            gemms.append((self.batch, self.d_model, self.vocab))
        return gemms


def decode_step_latencies(
    workload: DecodeWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, GemmLatency]:
    """Per-scheme latency of one full decode step, normalized to FP16."""
    device = get_gpu(device_name)
    totals: Dict[str, float] = {}
    for m, k, n in workload.step_gemms():
        for scheme, latency in _scheme_latencies_ms(m, k, n, device, num_groups).items():
            totals[scheme] = totals.get(scheme, 0.0) + latency
    return _normalized_to_fp16(totals)


def decode_throughput_tokens_per_s(
    workload: DecodeWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, float]:
    """Generated tokens per second per scheme (batch / step latency)."""
    latencies = decode_step_latencies(workload, device_name, num_groups)
    return {
        scheme: workload.batch / (latency.milliseconds * 1e-3)
        for scheme, latency in latencies.items()
    }


# ----------------------------------------------------------------------
# Continuous-batching serving workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContinuousBatchWorkload:
    """A decode *service* under request arrivals, not just one decode step.

    Models the serving loop of ``repro.serve.Scheduler``: requests arrive as
    a Poisson process, each generating a geometrically distributed number of
    tokens with mean ``mean_new_tokens``, and the engine runs batched decode
    steps over up to ``max_batch`` concurrently live requests.

    Two batching disciplines are compared on identical hardware and GEMMs:

    * **continuous** — a finished request's slot is backfilled immediately,
      so under saturation every decode step carries ``max_batch`` useful
      tokens;
    * **static (gang)** — the batch is admitted together and drains
      together, so a gang's step count is the *maximum* of its members'
      lengths.  With memoryless lengths the expected maximum of ``B`` draws
      of mean ``L`` is ``L * H(B)`` (the ``B``-th harmonic number), while the
      useful work is ``B * L`` token-slots — an expected occupancy of only
      ``B / H(B)`` slots per step.

    The resulting analytic speedup of continuous over static batching under
    saturation is exactly ``H(max_batch)`` — independent of scheme and
    device, because both disciplines execute the same per-step GEMMs.  Under
    light load both disciplines serve the offered tokens and the speedup
    collapses toward 1.

    Parameters
    ----------
    max_batch : int
        Slot count of the serving batch.
    mean_new_tokens : float
        Mean generated tokens per request (geometric / memoryless).
    context : int
        Representative attended context length of a decode step (prompt
        plus in-flight generation).
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    offered_load : float
        Offered token demand as a fraction of the full-batch decode
        capacity; ``>= 1`` means saturation (the default).
    """

    max_batch: int
    mean_new_tokens: float
    context: int
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    offered_load: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.mean_new_tokens < 1.0:
            raise ConfigurationError("mean_new_tokens must be >= 1")
        if self.offered_load <= 0.0:
            raise ConfigurationError("offered_load must be > 0")
        # Delegate the remaining dimension checks to DecodeWorkload.
        self.decode_workload()

    @staticmethod
    def harmonic(n: int) -> float:
        """The n-th harmonic number ``H(n) = 1 + 1/2 + ... + 1/n``."""
        return sum(1.0 / i for i in range(1, n + 1))

    def decode_workload(self, batch: int = 0) -> DecodeWorkload:
        """The per-step GEMM workload at a given (default: full) batch size."""
        return DecodeWorkload(
            batch=batch or self.max_batch,
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def continuous_occupancy(self) -> float:
        """Expected useful slots per decode step under continuous batching."""
        return self.max_batch * min(1.0, self.offered_load)

    def static_occupancy(self) -> float:
        """Expected useful slots per decode step under gang scheduling.

        A gang of ``B`` memoryless requests decodes for ``mean * H(B)``
        expected steps to deliver ``B * mean`` useful token-slots.
        """
        return min(
            self.max_batch / self.harmonic(self.max_batch),
            self.max_batch * self.offered_load,
        )

    def speedup_over_static(self) -> float:
        """Continuous-over-static token-throughput ratio (``H(B)`` saturated)."""
        return self.continuous_occupancy() / self.static_occupancy()


# ----------------------------------------------------------------------
# Prefix-cached serving workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrefixCacheWorkload:
    """A decode service where prompts share cached KV prefixes.

    Models the serving behavior of ``repro.serve.Scheduler`` with
    ``prefix_cache=True``: a fraction ``hit_rate`` of each request's prompt
    tokens is served straight from previously published KV blocks, so only
    the remaining suffix pays prefill GEMMs.  Decode work is unchanged —
    every generated token still runs its skinny per-step GEMMs — which is
    why the speedup saturates at ``(prefill + decode) / decode`` as the hit
    rate approaches 1, and why prefix caching compounds with (rather than
    replaces) continuous batching.

    Parameters
    ----------
    prompt_tokens : int
        Prompt length of a representative request.
    mean_new_tokens : float
        Mean generated tokens per request.
    hit_rate : float
        Fraction of prompt tokens whose KV comes from the cache (``0`` =
        cold, disjoint prompts; ``0.8`` = the benchmark's shared-template
        trace).
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    batch : int
        Decode batch size sharing each decode step's cost.
    """

    prompt_tokens: int
    mean_new_tokens: float
    hit_rate: float
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    batch: int = 1

    def __post_init__(self) -> None:
        if self.prompt_tokens < 2:
            raise ConfigurationError("prompt_tokens must be >= 2 (the final token is always computed)")
        if self.mean_new_tokens < 1.0:
            raise ConfigurationError("mean_new_tokens must be >= 1")
        if not 0.0 <= self.hit_rate <= 1.0:
            raise ConfigurationError("hit_rate must lie in [0, 1]")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        self.decode_workload()

    def suffix_tokens(self, hit_rate: Optional[float] = None) -> int:
        """Prompt tokens actually prefilled (at least the final one).

        Parameters
        ----------
        hit_rate : float, optional
            Override of the workload's configured hit rate (used to price
            the cold baseline).
        """
        rate = self.hit_rate if hit_rate is None else hit_rate
        return max(1, int(round(self.prompt_tokens * (1.0 - rate))))

    def prefill_workload(self, rows: int) -> DecodeWorkload:
        """The GEMMs of prefilling ``rows`` prompt tokens in one forward.

        Reuses :class:`DecodeWorkload` with the row count as the batch
        dimension: projections become ``(rows, d, d)`` GEMMs and the
        attention products attend the full prompt context.
        """
        return DecodeWorkload(
            batch=max(1, rows),
            context=self.prompt_tokens,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def decode_workload(self) -> DecodeWorkload:
        """The per-step GEMM workload of the decode batch."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.prompt_tokens + int(self.mean_new_tokens),
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def request_latency_ms(self, device_name: str, hit_rate: float, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme latency of one request at a given hit rate.

        One request pays the prefill of its uncached suffix plus its share
        (``1 / batch``) of ``mean_new_tokens`` batched decode steps.
        """
        prefill = decode_step_latencies(
            self.prefill_workload(self.suffix_tokens(hit_rate)), device_name, num_groups
        )
        decode = decode_step_latencies(self.decode_workload(), device_name, num_groups)
        return {
            scheme: prefill[scheme].milliseconds
            + self.mean_new_tokens * decode[scheme].milliseconds / self.batch
            for scheme in prefill
        }

    def speedup_over_cold(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme request-throughput gain of the configured hit rate vs cold."""
        cold = self.request_latency_ms(device_name, 0.0, num_groups)
        warm = self.request_latency_ms(device_name, self.hit_rate, num_groups)
        return {scheme: cold[scheme] / warm[scheme] for scheme in cold}


def prefix_cache_throughput(
    workload: PrefixCacheWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Serving throughput per scheme with and without prefix caching.

    Parameters
    ----------
    workload : PrefixCacheWorkload
        The serving scenario (prompt length, hit rate, decode batch).
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"cold_tokens_per_s", "cached_tokens_per_s",
        "speedup"}}`` — generated tokens per second per request stream.
    """
    cold = workload.request_latency_ms(device_name, 0.0, num_groups)
    warm = workload.request_latency_ms(device_name, workload.hit_rate, num_groups)
    results: Dict[str, Dict[str, float]] = {}
    for scheme in cold:
        results[scheme] = {
            "cold_tokens_per_s": workload.mean_new_tokens / (cold[scheme] * 1e-3),
            "cached_tokens_per_s": workload.mean_new_tokens / (warm[scheme] * 1e-3),
            "speedup": cold[scheme] / warm[scheme],
        }
    return results


# ----------------------------------------------------------------------
# Speculative-decoding serving workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeculativeWorkload:
    """A decode service running draft-and-verify speculative decoding.

    Models the serving behavior of ``repro.serve.Scheduler`` with
    ``speculation=SpecConfig(...)``: each iteration verifies
    ``draft_tokens`` speculated continuations per sequence in one
    multi-token forward instead of running one forward per token.  With a
    per-position draft acceptance probability ``accept_rate`` (treated as
    i.i.d.), the expected committed tokens per verify step are

    ``E[m] = (1 - p^(k+1)) / (1 - p)``  (``k + 1`` at ``p = 1``),

    the accepted run plus the bonus token.  The verify forward prices the
    same per-layer GEMMs as a decode step with ``batch x (k + 1)`` rows —
    exactly how :meth:`repro.models.inference.TransformerRunner.verify`
    executes — so the speedup is ``E[m]`` discounted by how much wider the
    verify GEMMs are and by the drafting cost itself.  Zero-cost drafting
    (``draft_cost_ratio = 0``) matches ``PromptLookupDraft``; a model
    drafter pays ``draft_cost_ratio`` of a baseline decode step per
    proposed token (e.g. ``0.25`` for a quarter-depth truncated copy).

    Parameters
    ----------
    draft_tokens : int
        Draft run length ``k`` verified per iteration.
    accept_rate : float
        Per-position probability a draft token is accepted.
    context : int
        Representative attended context length of a decode step.
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    batch : int
        Sequences sharing each (verify) forward.
    draft_cost_ratio : float
        Cost of proposing one draft token, as a fraction of one baseline
        decode step of the target model (``0`` = free drafting).
    """

    draft_tokens: int
    accept_rate: float
    context: int
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    batch: int = 1
    draft_cost_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.draft_tokens < 1:
            raise ConfigurationError("draft_tokens must be >= 1")
        if not 0.0 <= self.accept_rate <= 1.0:
            raise ConfigurationError("accept_rate must lie in [0, 1]")
        if self.draft_cost_ratio < 0.0:
            raise ConfigurationError("draft_cost_ratio must be >= 0")
        self.decode_workload()

    def expected_tokens_per_step(self) -> float:
        """Expected committed tokens per verify forward (accepted run + bonus)."""
        p = self.accept_rate
        k = self.draft_tokens
        if p >= 1.0:
            return float(k + 1)
        return (1.0 - p ** (k + 1)) / (1.0 - p)

    def decode_workload(self) -> DecodeWorkload:
        """The baseline one-token decode step this workload replaces."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def verify_workload(self) -> DecodeWorkload:
        """The multi-token verify forward: ``batch x (k + 1)`` GEMM rows."""
        return DecodeWorkload(
            batch=self.batch * (self.draft_tokens + 1),
            context=self.context + self.draft_tokens,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def speedup(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme decode-throughput gain of speculation over plain decode.

        Parameters
        ----------
        device_name : str
            A key of :data:`repro.gpu.devices.GPU_SPECS`.
        num_groups : int
            Tender channel groups (forwarded to the per-scheme GEMM model).

        Returns
        -------
        dict
            ``{scheme: expected speedup}`` — above 1 when the expected
            committed run outweighs the wider verify forward plus drafting.
        """
        decode = decode_step_latencies(self.decode_workload(), device_name, num_groups)
        verify = decode_step_latencies(self.verify_workload(), device_name, num_groups)
        expected = self.expected_tokens_per_step()
        return {
            scheme: expected
            * decode[scheme].milliseconds
            / (
                verify[scheme].milliseconds
                + self.draft_tokens * self.draft_cost_ratio * decode[scheme].milliseconds
            )
            for scheme in decode
        }


def speculative_throughput(
    workload: SpeculativeWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Decode throughput per scheme with and without speculative decoding.

    Parameters
    ----------
    workload : SpeculativeWorkload
        The speculation scenario (draft length, accept rate, model shape).
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"baseline_tokens_per_s", "speculative_tokens_per_s",
        "speedup", "expected_tokens_per_step"}}``.
    """
    decode = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    verify = decode_step_latencies(workload.verify_workload(), device_name, num_groups)
    expected = workload.expected_tokens_per_step()
    results: Dict[str, Dict[str, float]] = {}
    for scheme in decode:
        decode_s = decode[scheme].milliseconds * 1e-3
        step_s = (
            verify[scheme].milliseconds * 1e-3
            + workload.draft_tokens * workload.draft_cost_ratio * decode_s
        )
        results[scheme] = {
            "baseline_tokens_per_s": workload.batch / decode_s,
            "speculative_tokens_per_s": workload.batch * expected / step_s,
            "speedup": expected * decode_s / step_s,
            "expected_tokens_per_step": expected,
        }
    return results


# ----------------------------------------------------------------------
# Gather-free paged attention workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PagedAttentionWorkload:
    """A decode step whose KV history lives in paged block storage.

    Models the two serving realisations in ``repro.serve``: the *gather*
    reference fancy-indexes every slot's KV blocks into a dense per-view
    copy before the attention matmuls (one read of the pool plus one write
    of the copy, for K and V, per layer, per step), while the *fused* path
    (:func:`repro.core.kernels.paged_attention`) multiplies strided views
    of consecutive-block runs straight out of the pool and moves no KV
    bytes at all.  The attention GEMMs themselves are identical, so the
    analytic speedup is pure memory traffic: the gathered copy is
    ``O(batch x heads x context x d_head)`` per layer *per generated
    token*, which is why the gap — like the KV-cache read itself — grows
    linearly with context length while the projection GEMMs stay fixed.

    Parameters
    ----------
    batch, context, d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    kv_bytes_per_element : int
        Bytes per stored KV scalar (2 for FP16 serving).
    """

    batch: int
    context: int
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    kv_bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if self.kv_bytes_per_element < 1:
            raise ConfigurationError("kv_bytes_per_element must be >= 1")
        # Delegate the remaining dimension checks to DecodeWorkload.
        self.decode_workload()

    def decode_workload(self) -> DecodeWorkload:
        """The per-step GEMM workload (identical on both paths)."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def with_context(self, context: int) -> "PagedAttentionWorkload":
        """The same workload at a different attended context length."""
        return PagedAttentionWorkload(
            batch=self.batch,
            context=context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
            kv_bytes_per_element=self.kv_bytes_per_element,
        )

    def gather_bytes_per_step(self) -> int:
        """Dense KV bytes the gather path moves per decode step.

        Each layer copies the attended K and V histories out of the pool
        into a contiguous buffer: one read of the blocks plus one write of
        the copy, both ``batch * heads * context * d_head`` elements.
        This is exactly the traffic ``PagedKVCache.gather_bytes`` tallies
        (doubled for the read), and exactly what the fused path avoids.
        """
        dense = (
            self.batch
            * self.num_heads
            * self.context
            * self.decode_workload().d_head
            * self.kv_bytes_per_element
        )
        return self.num_layers * 2 * 2 * dense  # K and V, read + write

    def gather_ms(self, device: GPUSpec) -> float:
        """Time the per-step gather traffic occupies on the memory bus."""
        return self.gather_bytes_per_step() / (device.memory_bandwidth_gbps * 1e9) * 1e3


def paged_attention_throughput(
    workload: PagedAttentionWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Decode throughput per scheme with gathered vs in-place paged KV.

    Parameters
    ----------
    workload : PagedAttentionWorkload
        The decode scenario (model shape, context, KV precision).
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"gather_tokens_per_s", "fused_tokens_per_s",
        "speedup", "gather_bytes_per_step"}}`` — the speedup is
        scheme-independent in the GEMMs and grows with context because the
        avoided copy does while the projections stay fixed.
    """
    device = get_gpu(device_name)
    step = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    gather_ms = workload.gather_ms(device)
    results: Dict[str, Dict[str, float]] = {}
    for scheme, latency in step.items():
        fused_s = latency.milliseconds * 1e-3
        gather_s = (latency.milliseconds + gather_ms) * 1e-3
        results[scheme] = {
            "gather_tokens_per_s": workload.batch / gather_s,
            "fused_tokens_per_s": workload.batch / fused_s,
            "speedup": gather_s / fused_s,
            "gather_bytes_per_step": float(workload.gather_bytes_per_step()),
        }
    return results


def continuous_batch_throughput(
    workload: ContinuousBatchWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Serving throughput per scheme under continuous vs static batching.

    Both disciplines pay the same full-batch decode-step latency (a gang
    step still runs ``max_batch`` GEMM rows — the finished lanes are dead
    weight, which is exactly the inefficiency continuous batching removes).

    Parameters
    ----------
    workload : ContinuousBatchWorkload
        The serving scenario.
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"continuous_tokens_per_s", "static_tokens_per_s",
        "speedup"}}`` — the speedup is scheme-independent by construction.
    """
    step = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    results: Dict[str, Dict[str, float]] = {}
    for scheme, latency in step.items():
        step_s = latency.milliseconds * 1e-3
        results[scheme] = {
            "continuous_tokens_per_s": workload.continuous_occupancy() / step_s,
            "static_tokens_per_s": workload.static_occupancy() / step_s,
            "speedup": workload.speedup_over_static(),
        }
    return results


# ----------------------------------------------------------------------
# Preemption (recompute-vs-wait) serving workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PreemptionWorkload:
    """The recompute-vs-wait tradeoff behind priority preemption.

    Models the decision ``repro.serve.Scheduler`` (``preemption=True``)
    faces when an urgent request arrives into a full batch: either the
    request **waits** for a slot to drain naturally (its TTFT absorbs
    ``expected_wait_steps`` batched decode steps before its own prefill),
    or the scheduler **preempts** a low-priority victim — the urgent TTFT
    collapses to its own prefill, at the cost of re-prefilling the
    victim's uncached context when it resumes.  Because preemption frees
    blocks to the LRU free-list where published prefixes stay matchable,
    the resume usually re-maps most of the victim's context
    (``resume_hit_rate``) instead of recomputing it — which is what makes
    preemption cheap enough to win.

    Parameters
    ----------
    victim_context : int
        Committed tokens (prompt + generated) the victim holds when
        preempted — the upper bound on its resume recompute.
    resume_hit_rate : float
        Fraction of the victim's context re-served from still-matchable
        prefix blocks at resume (``0`` = everything recomputed, the
        no-prefix-cache case).
    high_prompt_tokens : int
        Prompt length of the urgent request.
    expected_wait_steps : float
        Batched decode steps until a slot frees without preemption (for a
        drain-limited batch, roughly the victims' mean remaining tokens).
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    batch : int
        Active decode batch size while the urgent request waits.
    """

    victim_context: int
    resume_hit_rate: float
    high_prompt_tokens: int
    expected_wait_steps: float
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    batch: int = 1

    def __post_init__(self) -> None:
        if self.victim_context < 1:
            raise ConfigurationError("victim_context must be >= 1")
        if not 0.0 <= self.resume_hit_rate <= 1.0:
            raise ConfigurationError("resume_hit_rate must lie in [0, 1]")
        if self.high_prompt_tokens < 1:
            raise ConfigurationError("high_prompt_tokens must be >= 1")
        if self.expected_wait_steps < 0.0:
            raise ConfigurationError("expected_wait_steps must be >= 0")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        self.decode_workload()

    def recompute_tokens(self) -> int:
        """Victim tokens re-prefilled at resume (at least the final one)."""
        return max(1, int(round(self.victim_context * (1.0 - self.resume_hit_rate))))

    def prefill_workload(self, rows: int, context: int) -> DecodeWorkload:
        """The GEMMs of prefilling ``rows`` tokens against ``context``."""
        return DecodeWorkload(
            batch=max(1, rows),
            context=max(1, context),
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def decode_workload(self) -> DecodeWorkload:
        """Per-step GEMMs of the batch the urgent request would wait behind."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.victim_context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def wait_ttft_ms(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme urgent TTFT without preemption: wait out the drain."""
        step = decode_step_latencies(self.decode_workload(), device_name, num_groups)
        prefill = decode_step_latencies(
            self.prefill_workload(self.high_prompt_tokens, self.high_prompt_tokens),
            device_name,
            num_groups,
        )
        return {
            scheme: self.expected_wait_steps * step[scheme].milliseconds
            + prefill[scheme].milliseconds
            for scheme in step
        }

    def preempt_ttft_ms(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme urgent TTFT with preemption: just its own prefill."""
        prefill = decode_step_latencies(
            self.prefill_workload(self.high_prompt_tokens, self.high_prompt_tokens),
            device_name,
            num_groups,
        )
        return {scheme: prefill[scheme].milliseconds for scheme in prefill}

    def recompute_ms(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme cost of re-prefilling the victim's uncached context."""
        prefill = decode_step_latencies(
            self.prefill_workload(self.recompute_tokens(), self.victim_context),
            device_name,
            num_groups,
        )
        return {scheme: prefill[scheme].milliseconds for scheme in prefill}

    def ttft_speedup(self, device_name: str, num_groups: int = 8) -> Dict[str, float]:
        """Per-scheme urgent-TTFT gain of preempting over waiting."""
        wait = self.wait_ttft_ms(device_name, num_groups)
        preempt = self.preempt_ttft_ms(device_name, num_groups)
        return {scheme: wait[scheme] / preempt[scheme] for scheme in wait}


def preemption_tradeoff(
    workload: PreemptionWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Price both sides of a preemption decision, per scheme.

    Parameters
    ----------
    workload : PreemptionWorkload
        The serving scenario.
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"wait_ttft_ms", "preempt_ttft_ms", "ttft_speedup",
        "recompute_ms", "recompute_overhead_ratio", "worthwhile"}}`` —
        ``recompute_overhead_ratio`` divides the victim's resume recompute
        by the urgent wait it saved; ``worthwhile`` (1.0 / 0.0) is that
        ratio falling below one, i.e. the preemption bought more urgent
        latency than it spent in aggregate throughput.
    """
    wait = workload.wait_ttft_ms(device_name, num_groups)
    preempt = workload.preempt_ttft_ms(device_name, num_groups)
    recompute = workload.recompute_ms(device_name, num_groups)
    results: Dict[str, Dict[str, float]] = {}
    for scheme in wait:
        saved = wait[scheme] - preempt[scheme]
        ratio = recompute[scheme] / saved if saved > 0.0 else float("inf")
        results[scheme] = {
            "wait_ttft_ms": wait[scheme],
            "preempt_ttft_ms": preempt[scheme],
            "ttft_speedup": wait[scheme] / preempt[scheme],
            "recompute_ms": recompute[scheme],
            "recompute_overhead_ratio": ratio,
            "worthwhile": 1.0 if ratio < 1.0 else 0.0,
        }
    return results


# ----------------------------------------------------------------------
# Fault-tolerance (recompute-cost-vs-failure-rate) replica-pool workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultToleranceWorkload:
    """Goodput of a replica pool under failures and checkpoint/replay recovery.

    Models what ``repro.serve.cluster.ReplicaPool`` pays when a replica
    dies: every in-flight request is checkpointed and re-admitted
    elsewhere, re-prefilling the fraction of its context the prefix cache
    cannot re-serve (``1 - resume_hit_rate``) and sitting out
    ``retry_backoff_steps`` decode steps of exponential backoff.  The
    question the model answers is the same shape as the preemption
    tradeoff: at what failure rate does recovery recompute start to
    dominate, and how much of it does prefix-hit recovery buy back.

    Parameters
    ----------
    num_replicas : int
        Pool size (failures are per replica, goodput is fleet-wide).
    batch : int
        Active decode rows per replica — the requests a single failure
        checkpoints and replays.
    mean_context : int
        Mean committed tokens (prompt + generated) per in-flight request
        at failure time — the upper bound on per-request recompute.
    failure_rate : float
        Per-decode-step probability that a given replica fails (kill,
        watchdog trip, or unrecoverable stall).
    resume_hit_rate : float
        Fraction of a recovered request's replay served from prefix-cache
        hits on the target replica (``0`` = disjoint caches, everything
        recomputed; sticky-template routing pushes this up).
    retry_backoff_steps : float
        Mean decode steps a recovered request waits out in backoff before
        re-admission (the retry budget's exponential delay, amortized).
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    """

    num_replicas: int
    batch: int
    mean_context: int
    failure_rate: float
    resume_hit_rate: float
    retry_backoff_steps: float
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.mean_context < 1:
            raise ConfigurationError("mean_context must be >= 1")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ConfigurationError("failure_rate must lie in [0, 1)")
        if not 0.0 <= self.resume_hit_rate <= 1.0:
            raise ConfigurationError("resume_hit_rate must lie in [0, 1]")
        if self.retry_backoff_steps < 0.0:
            raise ConfigurationError("retry_backoff_steps must be >= 0")
        self.decode_workload()

    def decode_workload(self) -> DecodeWorkload:
        """Per-step GEMMs of one replica's healthy decode batch."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.mean_context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def recompute_tokens(self) -> int:
        """Replayed tokens actually recomputed per recovered request."""
        return max(1, int(round(self.mean_context * (1.0 - self.resume_hit_rate))))

    def recovery_workload(self) -> DecodeWorkload:
        """The GEMMs of re-prefilling one failed replica's whole batch."""
        return DecodeWorkload(
            batch=max(1, self.batch * self.recompute_tokens()),
            context=self.mean_context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )


def fault_tolerance_goodput(
    workload: FaultToleranceWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Expected replica-pool goodput under failures, per scheme.

    Amortizes recovery into the per-step cost: each decode step carries a
    ``failure_rate`` chance of paying a full recovery (re-prefill of the
    uncached context of every in-flight request, plus the backoff steps
    the recovered requests sit out), so the expected effective step is
    ``step + failure_rate * (recovery + backoff_steps * step)`` and
    goodput is the healthy step divided by the effective one.

    Parameters
    ----------
    workload : FaultToleranceWorkload
        The chaos scenario.
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"step_ms", "recovery_ms", "effective_step_ms",
        "goodput_ratio", "fault_free_tokens_per_s", "tokens_per_s"}}`` —
        ``goodput_ratio`` is the fraction of fault-free throughput the
        pool keeps (1.0 at ``failure_rate=0``, higher with better
        ``resume_hit_rate``, which is the analytic case for sticky-template
        routing).
    """
    step = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    recovery = decode_step_latencies(workload.recovery_workload(), device_name, num_groups)
    results: Dict[str, Dict[str, float]] = {}
    for scheme in step:
        step_ms = step[scheme].milliseconds
        recovery_ms = recovery[scheme].milliseconds
        effective_ms = step_ms + workload.failure_rate * (
            recovery_ms + workload.retry_backoff_steps * step_ms
        )
        fleet_rows = workload.num_replicas * workload.batch
        results[scheme] = {
            "step_ms": step_ms,
            "recovery_ms": recovery_ms,
            "effective_step_ms": effective_ms,
            "goodput_ratio": step_ms / effective_ms,
            "fault_free_tokens_per_s": fleet_rows / (step_ms * 1e-3),
            "tokens_per_s": fleet_rows / (effective_ms * 1e-3),
        }
    return results


@dataclass
class TensorParallelWorkload:
    """Speedup and chaos goodput of column-parallel tensor sharding.

    Models what ``repro.serve.shard.ShardedRunner`` pays and gains: every
    projection's output columns (and the attention heads) split across
    ``num_shards`` workers, so per-step compute divides by the shard count,
    but the shards must meet at explicit all-gathers — six per layer (K, V,
    attention context, attention output, FC1 hidden, FC2 output) plus the
    LM-head logits gather, each priced as a ring collective over the
    inter-shard link.  The question the model answers: at what model size,
    batch, and link quality does sharding pay, and how much goodput a
    sharded group keeps when shard failures trigger whole-group
    checkpoint/replay recovery (a shard group is one fault unit — any
    shard's death fails the group).

    Parameters
    ----------
    num_shards : int
        Tensor-parallel width (1 = solo, no collectives).
    batch : int
        Active decode rows per step.
    context : int
        Mean committed tokens per row (KV length, and the recovery
        re-prefill bound).
    link_latency_us : float
        Per-hop launch latency of one collective message, microseconds.
    link_bandwidth_gb_s : float
        Inter-shard link bandwidth (NVLink-ish defaults).
    shard_failure_rate : float
        Per-decode-step probability that a given *shard* dies; the group
        fails when any of its shards does.
    resume_hit_rate : float
        Fraction of a recovered request's replay served from prefix-cache
        hits on the rebuilt group (as in :class:`FaultToleranceWorkload`).
    retry_backoff_steps : float
        Mean decode steps recovered requests wait out in backoff.
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    """

    num_shards: int
    batch: int
    context: int
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    link_latency_us: float = 5.0
    link_bandwidth_gb_s: float = 100.0
    shard_failure_rate: float = 0.0
    resume_hit_rate: float = 0.0
    retry_backoff_steps: float = 0.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.num_shards > self.num_heads:
            raise ConfigurationError("num_shards must not exceed num_heads")
        if self.link_latency_us < 0.0 or self.link_bandwidth_gb_s <= 0.0:
            raise ConfigurationError("link latency/bandwidth must be sane")
        if not 0.0 <= self.shard_failure_rate < 1.0:
            raise ConfigurationError("shard_failure_rate must lie in [0, 1)")
        if not 0.0 <= self.resume_hit_rate <= 1.0:
            raise ConfigurationError("resume_hit_rate must lie in [0, 1]")
        if self.retry_backoff_steps < 0.0:
            raise ConfigurationError("retry_backoff_steps must be >= 0")
        self.decode_workload()

    def decode_workload(self) -> DecodeWorkload:
        """The unsharded per-step GEMMs (the solo baseline)."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def group_failure_rate(self) -> float:
        """Per-step probability that *any* shard dies (one fault unit)."""
        return 1.0 - (1.0 - self.shard_failure_rate) ** self.num_shards

    def recompute_tokens(self) -> int:
        """Replayed tokens actually recomputed per recovered request."""
        return max(1, int(round(self.context * (1.0 - self.resume_hit_rate))))

    def recovery_workload(self) -> DecodeWorkload:
        """The GEMMs of re-prefilling the whole batch on a rebuilt group."""
        return DecodeWorkload(
            batch=max(1, self.batch * self.recompute_tokens()),
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def _all_gather_ms(self, row_bytes: float, rows: int) -> float:
        """Ring all-gather cost for ``rows`` activation rows of ``row_bytes``."""
        if self.num_shards == 1:
            return 0.0
        hops = self.num_shards - 1
        wire_bytes = rows * row_bytes * hops / self.num_shards
        return hops * self.link_latency_us * 1e-3 + wire_bytes / (
            self.link_bandwidth_gb_s * 1e6
        )

    def comm_ms(self, rows: Optional[int] = None) -> float:
        """Per-step collective time: six gathers per layer plus the LM head.

        Matches the simulated runner's meet points exactly — K, V,
        attention context, attention output, FC1 hidden, and FC2 output per
        layer (each ``rows x width`` activations in FP16 on the wire), plus
        one logits gather when the model has an LM head.
        """
        rows = self.batch if rows is None else rows
        act = 2.0  # FP16 activation bytes on the wire
        per_layer = 5 * self._all_gather_ms(self.d_model * act, rows) + self._all_gather_ms(
            self.d_ff * act, rows
        )
        total = self.num_layers * per_layer
        if self.vocab:
            total += self._all_gather_ms(self.vocab * act, self.batch)
        return total


def tensor_parallel_speedup(
    workload: TensorParallelWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Communication-inclusive sharding speedup and chaos goodput, per scheme.

    Column-parallel sharding divides every GEMM's output axis (and the
    attention heads) by ``num_shards``, so per-shard compute is the solo
    step over the shard count; the collectives priced by
    :meth:`TensorParallelWorkload.comm_ms` are added back, giving
    ``sharded_step = solo_step / S + comm``.  Recovery under chaos is the
    group-level version of :func:`fault_tolerance_goodput`: any shard death
    fails the whole group, which re-prefills the uncached context of every
    in-flight request on a rebuilt group (itself sharded, itself paying
    collectives on the replay rows).

    Returns
    -------
    dict
        ``{scheme: {"solo_step_ms", "sharded_step_ms", "comm_ms",
        "speedup", "recovery_ms", "effective_step_ms", "goodput_ratio",
        "tokens_per_s"}}`` per scheme of :func:`decode_step_latencies`.
    """
    solo = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    recovery = decode_step_latencies(workload.recovery_workload(), device_name, num_groups)
    shards = workload.num_shards
    step_comm = workload.comm_ms()
    recovery_comm = workload.comm_ms(
        rows=max(1, workload.batch * workload.recompute_tokens())
    )
    group_rate = workload.group_failure_rate()
    results: Dict[str, Dict[str, float]] = {}
    for scheme in solo:
        solo_ms = solo[scheme].milliseconds
        sharded_ms = solo_ms / shards + step_comm
        recovery_ms = recovery[scheme].milliseconds / shards + recovery_comm
        effective_ms = sharded_ms + group_rate * (
            recovery_ms + workload.retry_backoff_steps * sharded_ms
        )
        results[scheme] = {
            "solo_step_ms": solo_ms,
            "sharded_step_ms": sharded_ms,
            "comm_ms": step_comm,
            "speedup": solo_ms / sharded_ms,
            "recovery_ms": recovery_ms,
            "effective_step_ms": effective_ms,
            "goodput_ratio": sharded_ms / effective_ms,
            "tokens_per_s": workload.batch / (effective_ms * 1e-3),
        }
    return results


# ----------------------------------------------------------------------
# Observability (tracing-overhead-vs-step-time) workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObservabilityOverheadWorkload:
    """What request-lifecycle tracing costs a serving step, per scheme.

    Models the two prices ``repro.obs.Tracer`` can charge a
    ``repro.serve.Scheduler`` decode step.  **Enabled**, every emit site
    pays a clock read, an attribute-dict build, and a ring/list append
    (``event_cost_us`` each, ``events_per_step`` sites firing per batched
    step — the decode span's begin/end pair plus the cache, speculation,
    and lifecycle instants that step triggers).  **Disabled**
    (``tracer=None``), the only residue is the branch itself: each
    instrumented site still evaluates one ``is not None`` guard
    (``guard_cost_ns`` × ``guard_sites_per_step``), which is the cost the
    ≤1 % perf-smoke gate bounds.  Both are fixed per-step taxes, so their
    *relative* overhead shrinks as the underlying GEMMs grow — the model
    answers where tracing is free (big models) and where it bites (tiny
    steps, exactly the regime the correctness suites run in).

    Parameters
    ----------
    events_per_step : float
        Mean trace events emitted per batched decode step with tracing
        enabled (span endpoints count separately).
    event_cost_us : float
        Cost of one emit — clock read, attribute dict, append —
        microseconds.
    guard_sites_per_step : float
        ``tracer is None`` checks evaluated per step on the disabled path.
    guard_cost_ns : float
        Cost of one evaluated guard, nanoseconds.
    d_model, d_ff, num_heads, num_layers, vocab :
        Model dimensions, as in :class:`DecodeWorkload`.
    batch : int
        Active decode rows per step.
    context : int
        Mean committed tokens per row (KV length).
    """

    events_per_step: float
    d_model: int
    d_ff: int
    num_heads: int
    num_layers: int = 1
    vocab: int = 0
    batch: int = 1
    context: int = 256
    event_cost_us: float = 1.0
    guard_sites_per_step: float = 8.0
    guard_cost_ns: float = 30.0

    def __post_init__(self) -> None:
        if self.events_per_step < 0.0:
            raise ConfigurationError("events_per_step must be >= 0")
        if self.event_cost_us < 0.0:
            raise ConfigurationError("event_cost_us must be >= 0")
        if self.guard_sites_per_step < 0.0:
            raise ConfigurationError("guard_sites_per_step must be >= 0")
        if self.guard_cost_ns < 0.0:
            raise ConfigurationError("guard_cost_ns must be >= 0")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.context < 1:
            raise ConfigurationError("context must be >= 1")
        self.decode_workload()

    def decode_workload(self) -> DecodeWorkload:
        """The per-step GEMMs the tracing tax is measured against."""
        return DecodeWorkload(
            batch=self.batch,
            context=self.context,
            d_model=self.d_model,
            d_ff=self.d_ff,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            vocab=self.vocab,
        )

    def enabled_overhead_ms(self) -> float:
        """Per-step emit cost with tracing on (scheme-independent)."""
        return self.events_per_step * self.event_cost_us * 1e-3

    def disabled_overhead_ms(self) -> float:
        """Per-step guard residue with tracing off (scheme-independent)."""
        return self.guard_sites_per_step * self.guard_cost_ns * 1e-6


def observability_overhead(
    workload: ObservabilityOverheadWorkload,
    device_name: str,
    num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Relative cost of tracing on a serving decode step, per scheme.

    Adds the workload's fixed per-step taxes to the modeled GEMM step and
    reports both absolute and relative overhead, which is what the
    perf-smoke gate and the serving benchmark's ``observability`` section
    bound empirically (≤5 % enabled, ≤1 % disabled on the tiny
    correctness-suite model — both far below measurement noise at real
    model sizes).

    Parameters
    ----------
    workload : ObservabilityOverheadWorkload
        The instrumentation scenario.
    device_name : str
        A key of :data:`repro.gpu.devices.GPU_SPECS`.
    num_groups : int
        Tender channel groups (forwarded to the per-scheme GEMM model).

    Returns
    -------
    dict
        ``{scheme: {"step_ms", "enabled_overhead_ms", "enabled_step_ms",
        "enabled_overhead_ratio", "disabled_overhead_ms",
        "disabled_overhead_ratio", "tokens_per_s",
        "enabled_tokens_per_s"}}`` per scheme of
        :func:`decode_step_latencies`.
    """
    step = decode_step_latencies(workload.decode_workload(), device_name, num_groups)
    enabled_tax = workload.enabled_overhead_ms()
    disabled_tax = workload.disabled_overhead_ms()
    results: Dict[str, Dict[str, float]] = {}
    for scheme in step:
        step_ms = step[scheme].milliseconds
        enabled_ms = step_ms + enabled_tax
        results[scheme] = {
            "step_ms": step_ms,
            "enabled_overhead_ms": enabled_tax,
            "enabled_step_ms": enabled_ms,
            "enabled_overhead_ratio": enabled_tax / step_ms,
            "disabled_overhead_ms": disabled_tax,
            "disabled_overhead_ratio": disabled_tax / step_ms,
            "tokens_per_s": workload.batch / (step_ms * 1e-3),
            "enabled_tokens_per_s": workload.batch / (enabled_ms * 1e-3),
        }
    return results
