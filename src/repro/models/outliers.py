"""Outlier injection: giving small models the activation structure of LLMs.

Section II-B of the paper shows that activation outliers in LLMs live in a few
*fixed channels* across layers and tokens (Figures 2 and 3), and attributes
them to the model intrinsic — "large LayerNorm weights in the fixed channels
across the layers".  Models beyond ~6.7B parameters develop this structure
naturally; the small models trained in this reproduction do not, so this
module creates it with *function-preserving* transformations of a trained
checkpoint.  Two mechanisms are used, matching the two kinds of vertical
stripes visible in the paper's Figure 3 (large-magnitude channels, and
consistently positive / consistently negative channels):

* **Scaled channels** — multiply ``ln.gain[c]`` (and ``ln.bias[c]``) by a
  factor ``k`` and divide row ``c`` of every weight matrix that consumes the
  LayerNorm output by the same ``k``.  The activation channel becomes ``k``
  times larger; the model function is unchanged.
* **Shifted channels** — add a constant ``B`` to ``ln.bias[c]`` and subtract
  ``B * W[c, :]`` from the bias of every consumer.  The activation channel
  becomes strongly one-sided (mean ``B``), again with the function unchanged.
  These channels are the reason Tender subtracts a per-channel bias before
  quantization: a symmetric quantizer would waste almost its entire range on
  the offset.

Both transformations are exact in floating point, but any quantizer that
shares a scale factor across channels now has to cover a much larger range —
reproducing the activation-quantization difficulty that motivates Tender.
The same channels are used in every layer, matching Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models.weights import ModelWeights


@dataclass(frozen=True)
class OutlierSpec:
    """How many outlier channels to create and how strong they are."""

    num_scale_channels: int = 2
    scale_magnitude: float = 60.0
    num_shift_channels: int = 2
    shift_magnitude: float = 30.0
    #: Each channel's factor/offset is drawn log-uniformly within
    #: ``[magnitude / spread, magnitude * spread]`` so channel maxima span
    #: several powers of two (exercising Tender's multi-group decomposition).
    spread: float = 2.0
    seed: int = 0

    @property
    def total_channels(self) -> int:
        return self.num_scale_channels + self.num_shift_channels


def choose_outlier_channels(d_model: int, num_channels: int, seed: int = 0) -> np.ndarray:
    """Pick the fixed set of channels that will carry outliers."""
    if num_channels >= d_model:
        raise ConfigurationError(
            f"num_channels={num_channels} must be smaller than d_model={d_model}"
        )
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(d_model, size=num_channels, replace=False))


def _spread_values(magnitude: float, spread: float, count: int, rng: np.random.Generator) -> np.ndarray:
    if count == 0:
        return np.empty(0)
    return magnitude * np.exp(rng.uniform(-np.log(spread), np.log(spread), size=count))


def inject_outliers(
    weights: ModelWeights,
    spec: Optional[OutlierSpec] = None,
    channels: Optional[Sequence[int]] = None,
    **overrides,
) -> ModelWeights:
    """Return a copy of ``weights`` with channel-wise activation outliers.

    ``spec`` (or keyword overrides of :class:`OutlierSpec` fields) controls the
    number and strength of scaled and shifted channels; ``channels`` may pin
    the exact channel indices (scaled channels first, then shifted).
    """
    if spec is None:
        spec = OutlierSpec(**overrides)
    elif overrides:
        raise ConfigurationError("pass either spec or keyword overrides, not both")
    if spec.scale_magnitude <= 1.0:
        raise ConfigurationError("scale_magnitude must be > 1")
    if spec.spread < 1.0:
        raise ConfigurationError("spread must be >= 1")

    result = weights.copy()
    d_model = result.config.d_model
    total = spec.total_channels
    if total == 0:
        result.outlier_channels = np.array([], dtype=np.int64)
        return result
    if channels is None:
        channels = choose_outlier_channels(d_model, total, spec.seed)
    channels = np.asarray([int(c) for c in channels], dtype=np.int64)
    if channels.size != total:
        raise ConfigurationError(f"expected {total} channel indices, got {channels.size}")
    if channels.size and (channels.min() < 0 or channels.max() >= d_model):
        raise ConfigurationError("outlier channel index out of range")
    scale_channels = channels[: spec.num_scale_channels]
    shift_channels = channels[spec.num_scale_channels :]

    rng = np.random.default_rng(spec.seed + 1)
    scale_factors = _spread_values(spec.scale_magnitude, spec.spread, scale_channels.size, rng)
    shift_offsets = _spread_values(spec.shift_magnitude, spec.spread, shift_channels.size, rng)
    shift_offsets = shift_offsets * rng.choice([-1.0, 1.0], size=shift_channels.size)

    for block in result.blocks:
        # --- scaled channels: LayerNorm gain up, consumer weight rows down.
        if scale_channels.size:
            block.ln_attn.gain[scale_channels] *= scale_factors
            block.ln_attn.bias[scale_channels] *= scale_factors
            block.attn.wq[scale_channels, :] /= scale_factors[:, None]
            block.attn.wk[scale_channels, :] /= scale_factors[:, None]
            block.attn.wv[scale_channels, :] /= scale_factors[:, None]
            block.ln_ffn.gain[scale_channels] *= scale_factors
            block.ln_ffn.bias[scale_channels] *= scale_factors
            block.ffn.w1[scale_channels, :] /= scale_factors[:, None]
        # --- shifted channels: LayerNorm bias up, consumer layer biases down.
        if shift_channels.size:
            block.ln_attn.bias[shift_channels] += shift_offsets
            block.attn.bq -= shift_offsets @ block.attn.wq[shift_channels, :]
            block.attn.bk -= shift_offsets @ block.attn.wk[shift_channels, :]
            block.attn.bv -= shift_offsets @ block.attn.wv[shift_channels, :]
            block.ln_ffn.bias[shift_channels] += shift_offsets
            block.ffn.b1 -= shift_offsets @ block.ffn.w1[shift_channels, :]

    result.outlier_channels = np.sort(channels)
    return result


def measure_channel_ranges(activation: np.ndarray) -> np.ndarray:
    """Per-channel absolute maxima of an activation tensor (CMax)."""
    flat = activation.reshape(-1, activation.shape[-1])
    return np.abs(flat).max(axis=0)


def outlier_ratio(activation: np.ndarray) -> float:
    """Ratio of the largest channel maximum to the median channel maximum.

    A convenient scalar summary of "how much outlier structure" a tensor has;
    the paper's OPT-6.7B attention inputs show ratios of one to two orders of
    magnitude.
    """
    channel_max = measure_channel_ranges(activation)
    median = float(np.median(channel_max))
    if median == 0.0:
        return float("inf")
    return float(channel_max.max() / median)
