"""Pre-training and fine-tuning loops for the model zoo.

The paper quantizes *pre-trained* checkpoints; this module produces the
equivalent for the scaled-down stand-ins by training them from scratch on the
synthetic corpora.  Training is deliberately short (a few hundred Adam steps)
— just enough for the models to clearly beat chance so that quantization
error shows up as a measurable perplexity / accuracy degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.data.classification import ClassificationTask
from repro.data.datasets import LanguageModelingDataset
from repro.errors import ConfigurationError
from repro.nn.optim import Adam
from repro.nn.transformer import TransformerClassifier, TransformerConfig, TransformerLM
from repro.tensor import cross_entropy


@dataclass
class TrainingResult:
    """Summary of a training run."""

    losses: List[float]
    final_loss: float
    steps: int


def train_language_model(
    config: TransformerConfig,
    tokens: np.ndarray,
    steps: int = 200,
    batch_size: int = 8,
    seq_len: int = 48,
    learning_rate: float = 3e-3,
    seed: int = 0,
    progress: Optional[Callable[[int, float], None]] = None,
) -> tuple:
    """Train a :class:`TransformerLM` on a token stream.

    Returns ``(model, result)``.
    """
    if seq_len > config.max_seq_len:
        raise ConfigurationError("training seq_len exceeds the model's max_seq_len")
    model = TransformerLM(config)
    optimizer = Adam(model.parameters(), lr=learning_rate)
    dataset = LanguageModelingDataset(tokens, seq_len)
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    for step in range(steps):
        idx = rng.integers(0, len(dataset), size=batch_size)
        inputs = dataset.inputs[idx]
        targets = dataset.targets[idx]
        logits = model(inputs)
        loss = cross_entropy(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
        if progress is not None:
            progress(step, losses[-1])
    return model, TrainingResult(losses=losses, final_loss=losses[-1], steps=steps)


def train_classifier(
    config: TransformerConfig,
    task: ClassificationTask,
    steps: int = 150,
    batch_size: int = 16,
    learning_rate: float = 3e-3,
    seed: int = 0,
) -> tuple:
    """Fine-tune a :class:`TransformerClassifier` on one GLUE-like task.

    Returns ``(model, result)``.
    """
    if config.num_classes != task.num_classes:
        raise ConfigurationError("config.num_classes does not match the task")
    model = TransformerClassifier(config)
    optimizer = Adam(model.parameters(), lr=learning_rate)
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    num_examples = task.train_inputs.shape[0]
    for _ in range(steps):
        idx = rng.integers(0, num_examples, size=batch_size)
        logits = model(task.train_inputs[idx])
        loss = cross_entropy(logits, task.train_labels[idx])
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return model, TrainingResult(losses=losses, final_loss=losses[-1], steps=steps)
