"""Model zoo, inference engine, outlier injection, and checkpoint cache."""

from repro.models.checkpoints import (
    cache_directory,
    clear_memory_cache,
    get_classifier,
    get_glue_classifier,
    get_language_model,
)
from repro.models.inference import (
    CapturingExecutor,
    FloatExecutor,
    MatmulExecutor,
    ObservingExecutor,
    TransformerRunner,
    capture_activations,
    run_calibration,
)
from repro.models.outliers import (
    OutlierSpec,
    choose_outlier_channels,
    inject_outliers,
    measure_channel_ranges,
    outlier_ratio,
)
from repro.models.pretrain import TrainingResult, train_classifier, train_language_model
from repro.models.weights import (
    AttentionWeights,
    BlockWeights,
    FeedForwardWeights,
    LayerNormWeights,
    ModelWeights,
    extract_weights,
)
from repro.models.zoo import LANGUAGE_MODEL_NAMES, MODEL_ZOO, ZooEntry, get_zoo_entry

__all__ = [
    "ModelWeights",
    "AttentionWeights",
    "BlockWeights",
    "FeedForwardWeights",
    "LayerNormWeights",
    "extract_weights",
    "TransformerRunner",
    "MatmulExecutor",
    "FloatExecutor",
    "ObservingExecutor",
    "CapturingExecutor",
    "run_calibration",
    "capture_activations",
    "inject_outliers",
    "OutlierSpec",
    "choose_outlier_channels",
    "measure_channel_ranges",
    "outlier_ratio",
    "train_language_model",
    "train_classifier",
    "TrainingResult",
    "MODEL_ZOO",
    "LANGUAGE_MODEL_NAMES",
    "ZooEntry",
    "get_zoo_entry",
    "get_language_model",
    "get_classifier",
    "get_glue_classifier",
    "cache_directory",
    "clear_memory_cache",
]
