"""Plain-NumPy weight containers for inference-time models.

Training happens on the autograd modules in :mod:`repro.nn`; all quantization
experiments run on an inference path that operates on plain NumPy arrays.
The containers here hold those arrays in the orientation used by the paper
(activations on the left: ``Y = X @ W``, with ``W`` of shape (in, out)) and
know how to extract themselves from a trained module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.transformer import TransformerClassifier, TransformerConfig, TransformerLM


@dataclass
class LayerNormWeights:
    """Gain and bias of one LayerNorm."""

    gain: np.ndarray
    bias: np.ndarray


@dataclass
class AttentionWeights:
    """Projection matrices of one attention layer (W_Q, W_K, W_V, W_O)."""

    wq: np.ndarray
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray


@dataclass
class FeedForwardWeights:
    """The two fully-connected layers of the feed-forward network."""

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray


@dataclass
class BlockWeights:
    """All weights of one Transformer block."""

    ln_attn: LayerNormWeights
    attn: AttentionWeights
    ln_ffn: LayerNormWeights
    ffn: FeedForwardWeights


@dataclass
class ModelWeights:
    """All weights of a Transformer model in inference layout."""

    config: TransformerConfig
    token_embedding: np.ndarray
    position_embedding: np.ndarray
    blocks: List[BlockWeights]
    ln_final: LayerNormWeights
    lm_head: Optional[np.ndarray] = None
    classifier_weight: Optional[np.ndarray] = None
    classifier_bias: Optional[np.ndarray] = None
    #: Channels where outliers were injected (empty when none); recorded so
    #: experiments can visualise them (Figures 2 and 3).
    outlier_channels: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def copy(self) -> "ModelWeights":
        """Deep copy, so outlier injection or scheme-side edits never alias."""
        return ModelWeights(
            config=self.config,
            token_embedding=self.token_embedding.copy(),
            position_embedding=self.position_embedding.copy(),
            blocks=[
                BlockWeights(
                    ln_attn=LayerNormWeights(b.ln_attn.gain.copy(), b.ln_attn.bias.copy()),
                    attn=AttentionWeights(
                        b.attn.wq.copy(), b.attn.bq.copy(),
                        b.attn.wk.copy(), b.attn.bk.copy(),
                        b.attn.wv.copy(), b.attn.bv.copy(),
                        b.attn.wo.copy(), b.attn.bo.copy(),
                    ),
                    ln_ffn=LayerNormWeights(b.ln_ffn.gain.copy(), b.ln_ffn.bias.copy()),
                    ffn=FeedForwardWeights(
                        b.ffn.w1.copy(), b.ffn.b1.copy(), b.ffn.w2.copy(), b.ffn.b2.copy()
                    ),
                )
                for b in self.blocks
            ],
            ln_final=LayerNormWeights(self.ln_final.gain.copy(), self.ln_final.bias.copy()),
            lm_head=None if self.lm_head is None else self.lm_head.copy(),
            classifier_weight=None if self.classifier_weight is None else self.classifier_weight.copy(),
            classifier_bias=None if self.classifier_bias is None else self.classifier_bias.copy(),
            outlier_channels=self.outlier_channels.copy(),
        )

    # ------------------------------------------------------------------
    # Flat (de)serialization used by the checkpoint cache
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to a name -> array mapping suitable for ``np.savez``."""
        arrays: Dict[str, np.ndarray] = {
            "token_embedding": self.token_embedding,
            "position_embedding": self.position_embedding,
            "ln_final.gain": self.ln_final.gain,
            "ln_final.bias": self.ln_final.bias,
            "outlier_channels": self.outlier_channels,
        }
        if self.lm_head is not None:
            arrays["lm_head"] = self.lm_head
        if self.classifier_weight is not None:
            arrays["classifier.weight"] = self.classifier_weight
            arrays["classifier.bias"] = self.classifier_bias
        for index, block in enumerate(self.blocks):
            prefix = f"block{index}"
            arrays[f"{prefix}.ln_attn.gain"] = block.ln_attn.gain
            arrays[f"{prefix}.ln_attn.bias"] = block.ln_attn.bias
            arrays[f"{prefix}.attn.wq"] = block.attn.wq
            arrays[f"{prefix}.attn.bq"] = block.attn.bq
            arrays[f"{prefix}.attn.wk"] = block.attn.wk
            arrays[f"{prefix}.attn.bk"] = block.attn.bk
            arrays[f"{prefix}.attn.wv"] = block.attn.wv
            arrays[f"{prefix}.attn.bv"] = block.attn.bv
            arrays[f"{prefix}.attn.wo"] = block.attn.wo
            arrays[f"{prefix}.attn.bo"] = block.attn.bo
            arrays[f"{prefix}.ln_ffn.gain"] = block.ln_ffn.gain
            arrays[f"{prefix}.ln_ffn.bias"] = block.ln_ffn.bias
            arrays[f"{prefix}.ffn.w1"] = block.ffn.w1
            arrays[f"{prefix}.ffn.b1"] = block.ffn.b1
            arrays[f"{prefix}.ffn.w2"] = block.ffn.w2
            arrays[f"{prefix}.ffn.b2"] = block.ffn.b2
        return arrays

    @classmethod
    def from_arrays(cls, config: TransformerConfig, arrays: Dict[str, np.ndarray]) -> "ModelWeights":
        """Rebuild from the mapping produced by :meth:`to_arrays`."""
        blocks = []
        for index in range(config.num_layers):
            prefix = f"block{index}"
            blocks.append(
                BlockWeights(
                    ln_attn=LayerNormWeights(arrays[f"{prefix}.ln_attn.gain"], arrays[f"{prefix}.ln_attn.bias"]),
                    attn=AttentionWeights(
                        arrays[f"{prefix}.attn.wq"], arrays[f"{prefix}.attn.bq"],
                        arrays[f"{prefix}.attn.wk"], arrays[f"{prefix}.attn.bk"],
                        arrays[f"{prefix}.attn.wv"], arrays[f"{prefix}.attn.bv"],
                        arrays[f"{prefix}.attn.wo"], arrays[f"{prefix}.attn.bo"],
                    ),
                    ln_ffn=LayerNormWeights(arrays[f"{prefix}.ln_ffn.gain"], arrays[f"{prefix}.ln_ffn.bias"]),
                    ffn=FeedForwardWeights(
                        arrays[f"{prefix}.ffn.w1"], arrays[f"{prefix}.ffn.b1"],
                        arrays[f"{prefix}.ffn.w2"], arrays[f"{prefix}.ffn.b2"],
                    ),
                )
            )
        return cls(
            config=config,
            token_embedding=arrays["token_embedding"],
            position_embedding=arrays["position_embedding"],
            blocks=blocks,
            ln_final=LayerNormWeights(arrays["ln_final.gain"], arrays["ln_final.bias"]),
            lm_head=arrays.get("lm_head"),
            classifier_weight=arrays.get("classifier.weight"),
            classifier_bias=arrays.get("classifier.bias"),
            outlier_channels=arrays.get("outlier_channels", np.array([], dtype=np.int64)),
        )


def extract_weights(model) -> ModelWeights:
    """Extract inference weights from a trained :class:`TransformerLM` or classifier."""
    config: TransformerConfig = model.config
    blocks = []
    for block in model.blocks:
        blocks.append(
            BlockWeights(
                ln_attn=LayerNormWeights(block.ln_attn.gain.data.copy(), block.ln_attn.bias.data.copy()),
                attn=AttentionWeights(
                    block.attn.q_proj.weight.data.copy(), block.attn.q_proj.bias.data.copy(),
                    block.attn.k_proj.weight.data.copy(), block.attn.k_proj.bias.data.copy(),
                    block.attn.v_proj.weight.data.copy(), block.attn.v_proj.bias.data.copy(),
                    block.attn.out_proj.weight.data.copy(), block.attn.out_proj.bias.data.copy(),
                ),
                ln_ffn=LayerNormWeights(block.ln_ffn.gain.data.copy(), block.ln_ffn.bias.data.copy()),
                ffn=FeedForwardWeights(
                    block.ffn.fc1.weight.data.copy(), block.ffn.fc1.bias.data.copy(),
                    block.ffn.fc2.weight.data.copy(), block.ffn.fc2.bias.data.copy(),
                ),
            )
        )
    lm_head = None
    classifier_weight = None
    classifier_bias = None
    if isinstance(model, TransformerLM):
        lm_head = model.lm_head.weight.data.copy()
    elif isinstance(model, TransformerClassifier):
        classifier_weight = model.classifier.weight.data.copy()
        classifier_bias = model.classifier.bias.data.copy()
    return ModelWeights(
        config=config,
        token_embedding=model.token_embedding.weight.data.copy(),
        position_embedding=model.position_embedding.weight.data.copy(),
        blocks=blocks,
        ln_final=LayerNormWeights(model.ln_final.gain.data.copy(), model.ln_final.bias.data.copy()),
        lm_head=lm_head,
        classifier_weight=classifier_weight,
        classifier_bias=classifier_bias,
    )
