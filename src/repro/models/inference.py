"""Executor-based Transformer inference.

All quantization schemes in this reproduction (FP baseline, per-tensor/row/
column PTQ, SmoothQuant, LLM.int8(), ANT, OliVe, MSFP, SMX/MX, and Tender)
plug into the same inference engine through the :class:`MatmulExecutor`
interface.  The engine performs every surrounding operation (embeddings,
LayerNorm, softmax, residual adds) in floating point — exactly as the paper's
accelerator does in its Vector Processing Unit — and delegates every matrix
multiplication to the executor:

* ``project(name, x, weight, bias)`` — activation x weight products
  (Q/K/V/output projections, FC1/FC2, LM head);
* ``attention_matmul(name, a, b)`` — activation x activation products
  (``X_Q @ X_K^T`` and ``X_S @ X_V``).

Executors receive a stable hierarchical ``name`` (e.g. ``block3.attn.q_proj``)
so static calibration data can be looked up per matmul site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.models.weights import ModelWeights
from repro.quant.observers import ActivationObserver
from repro.tensor.ops import gelu, log_softmax, relu, softmax


class MatmulExecutor(Protocol):
    """Interface every quantization scheme implements."""

    def project(
        self, name: str, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> np.ndarray:
        """Compute ``x @ weight + bias`` for a 2-D activation ``x``."""
        ...

    def attention_matmul(self, name: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute the batched product ``a @ b`` between two activations."""
        ...


class FloatExecutor:
    """The FP16/FP32 baseline: plain floating-point matrix multiplication."""

    def project(self, name, x, weight, bias):
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def attention_matmul(self, name, a, b):
        return a @ b


class ObservingExecutor:
    """Wraps another executor and records activation statistics per site.

    Used during calibration: the paper computes scale factors, channel biases,
    and channel-group assignments offline from calibration samples
    (Section III-B, "Optimization").  Activation inputs of projections are
    recorded under the projection name; operands of activation-activation
    matmuls are recorded under ``<name>.a`` / ``<name>.b``.
    """

    def __init__(self, base: Optional[MatmulExecutor] = None) -> None:
        self.base = base if base is not None else FloatExecutor()
        self.observer = ActivationObserver()

    def project(self, name, x, weight, bias):
        self.observer.observe(name, x)
        return self.base.project(name, x, weight, bias)

    def attention_matmul(self, name, a, b):
        self.observer.observe(f"{name}.a", a.reshape(-1, a.shape[-1]))
        # The second operand's reduction axis is its second-to-last dimension;
        # record it transposed so the channel axis is always last.
        self.observer.observe(f"{name}.b", np.swapaxes(b, -1, -2).reshape(-1, b.shape[-2]))
        return self.base.attention_matmul(name, a, b)


class CapturingExecutor:
    """Stores the raw input of each site the first time it is seen.

    Used by the Figure 2 / Figure 3 reproductions, which visualise the actual
    activation values (channel-wise outliers) rather than summary statistics.
    """

    def __init__(self, base: Optional[MatmulExecutor] = None) -> None:
        self.base = base if base is not None else FloatExecutor()
        self.captured: Dict[str, np.ndarray] = {}

    def project(self, name, x, weight, bias):
        if name not in self.captured:
            self.captured[name] = x.copy()
        return self.base.project(name, x, weight, bias)

    def attention_matmul(self, name, a, b):
        return self.base.attention_matmul(name, a, b)


class TransformerRunner:
    """Runs a Transformer forward pass from :class:`ModelWeights` + executor."""

    def __init__(self, weights: ModelWeights, executor: Optional[MatmulExecutor] = None) -> None:
        self.weights = weights
        self.config = weights.config
        self.executor = executor if executor is not None else FloatExecutor()

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    @staticmethod
    def _layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray, eps: float = 1e-5) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + eps) * gain + bias

    def _project(self, name: str, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
        """Flatten leading dims, delegate to the executor, restore the shape."""
        leading = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1])
        out = self.executor.project(name, flat, weight, bias)
        return out.reshape(*leading, weight.shape[-1])

    def _attention(self, index: int, x: np.ndarray) -> np.ndarray:
        block = self.weights.blocks[index]
        config = self.config
        batch, seq, _ = x.shape
        prefix = f"block{index}.attn"

        queries = self._project(f"{prefix}.q_proj", x, block.attn.wq, block.attn.bq)
        keys = self._project(f"{prefix}.k_proj", x, block.attn.wk, block.attn.bk)
        values = self._project(f"{prefix}.v_proj", x, block.attn.wv, block.attn.bv)

        def split(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, seq, config.num_heads, config.d_head).transpose(0, 2, 1, 3)

        queries, keys, values = split(queries), split(keys), split(values)
        scores = self.executor.attention_matmul(
            f"{prefix}.qk", queries, np.swapaxes(keys, -1, -2)
        ) / np.sqrt(config.d_head)
        if config.causal:
            mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
            scores = np.where(mask[None, None], -1e9, scores)
        attention = softmax(scores, axis=-1)
        context = self.executor.attention_matmul(f"{prefix}.sv", attention, values)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, config.d_model)
        return self._project(f"{prefix}.out_proj", context, block.attn.wo, block.attn.bo)

    def _feed_forward(self, index: int, x: np.ndarray) -> np.ndarray:
        block = self.weights.blocks[index]
        prefix = f"block{index}.ffn"
        hidden = self._project(f"{prefix}.fc1", x, block.ffn.w1, block.ffn.b1)
        hidden = relu(hidden) if self.config.activation == "relu" else gelu(hidden)
        return self._project(f"{prefix}.fc2", hidden, block.ffn.w2, block.ffn.b2)

    def _backbone(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ConfigurationError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        x = self.weights.token_embedding[tokens] + self.weights.position_embedding[np.arange(seq)]
        for index, block in enumerate(self.weights.blocks):
            attn_input = self._layer_norm(x, block.ln_attn.gain, block.ln_attn.bias)
            x = x + self._attention(index, attn_input)
            ffn_input = self._layer_norm(x, block.ln_ffn.gain, block.ln_ffn.bias)
            x = x + self._feed_forward(index, ffn_input)
        return self._layer_norm(x, self.weights.ln_final.gain, self.weights.ln_final.bias)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def logits(self, tokens: np.ndarray) -> np.ndarray:
        """Language-model logits of shape (batch, seq, vocab)."""
        if self.weights.lm_head is None:
            raise ConfigurationError("model has no LM head; use classify() instead")
        hidden = self._backbone(tokens)
        return self._project("lm_head", hidden, self.weights.lm_head, None)

    def log_probs(self, tokens: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary for each position."""
        return log_softmax(self.logits(tokens), axis=-1)

    def classify(self, tokens: np.ndarray) -> np.ndarray:
        """Classification logits of shape (batch, num_classes)."""
        if self.weights.classifier_weight is None:
            raise ConfigurationError("model has no classifier head; use logits() instead")
        hidden = self._backbone(tokens)
        pooled = hidden.mean(axis=1)
        return self.executor.project(
            "classifier", pooled, self.weights.classifier_weight, self.weights.classifier_bias
        )


def run_calibration(
    weights: ModelWeights,
    samples: List[np.ndarray],
    classify: bool = False,
) -> ActivationObserver:
    """Run calibration samples through the FP model and collect statistics."""
    executor = ObservingExecutor()
    runner = TransformerRunner(weights, executor)
    for sample in samples:
        if classify:
            runner.classify(np.asarray(sample)[None, :])
        else:
            runner.logits(np.asarray(sample)[None, :])
    return executor.observer


def capture_activations(weights: ModelWeights, sample: np.ndarray) -> Dict[str, np.ndarray]:
    """Capture raw per-site input activations for one sample (Figures 2-3)."""
    executor = CapturingExecutor()
    runner = TransformerRunner(weights, executor)
    if weights.lm_head is not None:
        runner.logits(np.asarray(sample)[None, :])
    else:
        runner.classify(np.asarray(sample)[None, :])
    return executor.captured
