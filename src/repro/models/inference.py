"""Executor-based Transformer inference.

All quantization schemes in this reproduction (FP baseline, per-tensor/row/
column PTQ, SmoothQuant, LLM.int8(), ANT, OliVe, MSFP, SMX/MX, and Tender)
plug into the same inference engine through the :class:`MatmulExecutor`
interface.  The engine performs every surrounding operation (embeddings,
LayerNorm, softmax, residual adds) in floating point — exactly as the paper's
accelerator does in its Vector Processing Unit — and delegates every matrix
multiplication to the executor:

* ``project(name, x, weight, bias)`` — activation x weight products
  (Q/K/V/output projections, FC1/FC2, LM head);
* ``attention_matmul(name, a, b)`` — activation x activation products
  (``X_Q @ X_K^T`` and ``X_S @ X_V``).

Executors receive a stable hierarchical ``name`` (e.g. ``block3.attn.q_proj``)
so static calibration data can be looked up per matmul site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.kernels import paged_attention
from repro.errors import ConfigurationError
from repro.models.weights import ModelWeights
from repro.quant.observers import ActivationObserver
from repro.tensor.ops import gelu, log_softmax, relu, softmax


class KVCacheLike(Protocol):
    """What the incremental decode path needs from a key/value cache.

    Both the dense :class:`repro.serve.kv_cache.KVCache` (one fixed batch
    lane per sequence) and the continuous-batching scheduler's
    :class:`repro.serve.paged_kv_cache.SlotBatchView` (a dense facade over
    whichever paged slots are active this iteration) satisfy this.  Row ``b``
    of every ``write``/``view`` call refers to the same sequence that
    ``lengths[b]`` describes; the rows of consecutive calls may map to
    *different* requests as the scheduler evicts and backfills slots.
    """

    #: Committed tokens per batch row; ``decode_step`` advances it in place.
    lengths: np.ndarray

    def ensure_capacity(self, needed: int) -> None:
        """Make ``needed`` token slots addressable (grow or validate)."""
        ...

    def write(self, layer: int, keys: np.ndarray, values: np.ndarray, slots: np.ndarray) -> None:
        """Store ``(batch, heads, new_len, d_head)`` payloads at per-row slots."""
        ...

    def view(self, layer: int, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(keys, values)`` over the first ``length`` slots of each row."""
        ...


def neutralize_padding(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    valid: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keep ragged-prefill padding rows out of dynamic quantization statistics.

    Masking already keeps padding out of every attention *output*; this also
    keeps it out of executors that quantize attention operands dynamically
    (Tender "all"), whose per-head statistics would otherwise see the garbage
    rows: padded queries are replaced by a duplicate of the sequence's first
    row (duplicates never widen a max/min range) and padded keys/values are
    zeroed (zeros never widen an absmax).  Purely elementwise, so applying it
    to a column slice of the projections equals slicing its full-width result
    — the property the tensor-parallel runner relies on.
    """
    if valid is None or valid.all():
        return queries, keys, values
    row_valid = valid[..., None]
    queries = np.where(row_valid, queries, queries[:, :1])
    keys = keys * row_valid
    values = values * row_valid
    return queries, keys, values


def fused_attention_ready(executor, cache) -> bool:
    """Whether cached attention may read K/V straight from paged block storage.

    True when both attention products are plain matmuls (the executor's
    ``plain_attention``) and the cache exposes block-table operands
    (``supports_paged_attention``) — the gate shared by the solo runner and
    the tensor-parallel façade.
    """
    return bool(
        getattr(executor, "plain_attention", False)
        and getattr(cache, "supports_paged_attention", False)
    )


def dense_cached_attention(
    executor: "MatmulExecutor",
    prefix: str,
    queries: np.ndarray,
    cached_keys: np.ndarray,
    cached_values: np.ndarray,
    positions: np.ndarray,
    valid: Optional[np.ndarray],
    d_head: int,
) -> np.ndarray:
    """Masked-softmax attention over densely gathered cache views.

    The reference (gather-then-dense) cached-attention core: scores through
    the executor's ``attention_matmul``, slot-visibility masking (a slot
    ``s`` is visible to a query at position ``p`` iff ``s <= p``), softmax,
    padded-probability-row replacement, and the ``X_S @ X_V`` product.
    Every step is independent per attention head, so calling it on a
    contiguous head slice of the operands returns exactly that slice of the
    full result — the solo runner passes all heads, the tensor-parallel
    runner each shard's own.  Returns ``(batch, heads, new_len, d_head)``.
    """
    attended = cached_keys.shape[-2]
    scores = executor.attention_matmul(
        f"{prefix}.qk", queries, np.swapaxes(cached_keys, -1, -2)
    ) / np.sqrt(d_head)
    hidden_slots = np.arange(attended)[None, None, None, :] > positions[:, None, :, None]
    scores = np.where(hidden_slots, -1e9, scores)
    attention = softmax(scores, axis=-1)
    if valid is not None and not valid.all():
        # Padded probability rows see a wider causal window than the row
        # they were duplicated from; replace them with the first (valid)
        # row's probabilities so dynamically-quantized X_S X_V statistics
        # stay independent of batching.
        attention = np.where(valid[:, None, :, None], attention, attention[:, :, :1, :])
    return executor.attention_matmul(f"{prefix}.sv", attention, cached_values)


class MatmulExecutor(Protocol):
    """Interface every quantization scheme implements."""

    def project(
        self, name: str, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> np.ndarray:
        """Compute ``x @ weight + bias`` for a 2-D activation ``x``."""
        ...

    def attention_matmul(self, name: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute the batched product ``a @ b`` between two activations."""
        ...


class FloatExecutor:
    """The FP16/FP32 baseline: plain floating-point matrix multiplication."""

    #: ``attention_matmul`` is a plain product, so the runner may replace the
    #: gather-then-dense attention with the fused paged kernel.
    plain_attention = True

    def project(self, name, x, weight, bias):
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def attention_matmul(self, name, a, b):
        return a @ b


class ObservingExecutor:
    """Wraps another executor and records activation statistics per site.

    Used during calibration: the paper computes scale factors, channel biases,
    and channel-group assignments offline from calibration samples
    (Section III-B, "Optimization").  Activation inputs of projections are
    recorded under the projection name; operands of activation-activation
    matmuls are recorded under ``<name>.a`` / ``<name>.b``.
    """

    def __init__(self, base: Optional[MatmulExecutor] = None) -> None:
        self.base = base if base is not None else FloatExecutor()
        self.observer = ActivationObserver()

    def project(self, name, x, weight, bias):
        self.observer.observe(name, x)
        return self.base.project(name, x, weight, bias)

    def attention_matmul(self, name, a, b):
        self.observer.observe(f"{name}.a", a.reshape(-1, a.shape[-1]))
        # The second operand's reduction axis is its second-to-last dimension;
        # record it transposed so the channel axis is always last.
        self.observer.observe(f"{name}.b", np.swapaxes(b, -1, -2).reshape(-1, b.shape[-2]))
        return self.base.attention_matmul(name, a, b)


class CapturingExecutor:
    """Stores the raw input of each site the first time it is seen.

    Used by the Figure 2 / Figure 3 reproductions, which visualise the actual
    activation values (channel-wise outliers) rather than summary statistics.
    """

    def __init__(self, base: Optional[MatmulExecutor] = None) -> None:
        self.base = base if base is not None else FloatExecutor()
        self.captured: Dict[str, np.ndarray] = {}

    def project(self, name, x, weight, bias):
        if name not in self.captured:
            self.captured[name] = x.copy()
        return self.base.project(name, x, weight, bias)

    def attention_matmul(self, name, a, b):
        return self.base.attention_matmul(name, a, b)


class TransformerRunner:
    """Runs a Transformer forward pass from :class:`ModelWeights` + executor."""

    def __init__(self, weights: ModelWeights, executor: Optional[MatmulExecutor] = None) -> None:
        self.weights = weights
        self.config = weights.config
        self.executor = executor if executor is not None else FloatExecutor()
        #: Read KV straight from paged-block storage during cached attention
        #: (see :func:`repro.core.kernels.paged_attention`).  Takes effect
        #: only when both the executor (``plain_attention``) and the cache
        #: (``supports_paged_attention``) allow it; clear it to force the
        #: gather-then-dense reference path.
        self.fused_paged_attention = True

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    @staticmethod
    def _layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray, eps: float = 1e-5) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + eps) * gain + bias

    def _project(
        self,
        name: str,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Flatten leading dims, delegate to the executor, restore the shape.

        ``positions`` carries the token position of every row for executors
        that calibrate per row chunk (``uses_positions``); the incremental
        decode path needs it because a decoded token's flat row index no
        longer equals its position in the sequence.
        """
        leading = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1])
        if positions is not None and getattr(self.executor, "uses_positions", False):
            out = self.executor.project(name, flat, weight, bias, positions=positions.reshape(-1))
        else:
            out = self.executor.project(name, flat, weight, bias)
        return out.reshape(*leading, weight.shape[-1])

    def _attention(self, index: int, x: np.ndarray, positions: Optional[np.ndarray] = None) -> np.ndarray:
        block = self.weights.blocks[index]
        config = self.config
        batch, seq, _ = x.shape
        prefix = f"block{index}.attn"

        queries = self._project(f"{prefix}.q_proj", x, block.attn.wq, block.attn.bq, positions)
        keys = self._project(f"{prefix}.k_proj", x, block.attn.wk, block.attn.bk, positions)
        values = self._project(f"{prefix}.v_proj", x, block.attn.wv, block.attn.bv, positions)

        def split(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, seq, config.num_heads, config.d_head).transpose(0, 2, 1, 3)

        queries, keys, values = split(queries), split(keys), split(values)
        scores = self.executor.attention_matmul(
            f"{prefix}.qk", queries, np.swapaxes(keys, -1, -2)
        ) / np.sqrt(config.d_head)
        if config.causal:
            mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
            scores = np.where(mask[None, None], -1e9, scores)
        attention = softmax(scores, axis=-1)
        context = self.executor.attention_matmul(f"{prefix}.sv", attention, values)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, config.d_model)
        return self._project(f"{prefix}.out_proj", context, block.attn.wo, block.attn.bo, positions)

    def _feed_forward(self, index: int, x: np.ndarray, positions: Optional[np.ndarray] = None) -> np.ndarray:
        block = self.weights.blocks[index]
        prefix = f"block{index}.ffn"
        hidden = self._project(f"{prefix}.fc1", x, block.ffn.w1, block.ffn.b1, positions)
        hidden = relu(hidden) if self.config.activation == "relu" else gelu(hidden)
        return self._project(f"{prefix}.fc2", hidden, block.ffn.w2, block.ffn.b2, positions)

    def _backbone(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ConfigurationError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        # Token positions of every row, so position-calibrated executors
        # (Tender row chunks) see the same parameters for a token regardless
        # of its batch index — batched forwards, classification batches, and
        # the KV-cached decode path all agree per position.
        positions = np.broadcast_to(np.arange(seq, dtype=np.int64), (batch, seq))
        x = self.weights.token_embedding[tokens] + self.weights.position_embedding[np.arange(seq)]
        for index, block in enumerate(self.weights.blocks):
            attn_input = self._layer_norm(x, block.ln_attn.gain, block.ln_attn.bias)
            x = x + self._attention(index, attn_input, positions)
            ffn_input = self._layer_norm(x, block.ln_ffn.gain, block.ln_ffn.bias)
            x = x + self._feed_forward(index, ffn_input, positions)
        return self._layer_norm(x, self.weights.ln_final.gain, self.weights.ln_final.bias)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def logits(self, tokens: np.ndarray) -> np.ndarray:
        """Language-model logits of shape (batch, seq, vocab)."""
        if self.weights.lm_head is None:
            raise ConfigurationError("model has no LM head; use classify() instead")
        hidden = self._backbone(tokens)
        batch, seq = hidden.shape[0], hidden.shape[1]
        positions = np.broadcast_to(np.arange(seq, dtype=np.int64), (batch, seq))
        return self._project("lm_head", hidden, self.weights.lm_head, None, positions)

    def log_probs(self, tokens: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary for each position."""
        return log_softmax(self.logits(tokens), axis=-1)

    def classify(self, tokens: np.ndarray) -> np.ndarray:
        """Classification logits of shape (batch, num_classes)."""
        if self.weights.classifier_weight is None:
            raise ConfigurationError("model has no classifier head; use logits() instead")
        hidden = self._backbone(tokens)
        pooled = hidden.mean(axis=1)
        return self.executor.project(
            "classifier", pooled, self.weights.classifier_weight, self.weights.classifier_bias
        )

    # ------------------------------------------------------------------
    # Incremental decoding over a KV-cache
    # ------------------------------------------------------------------
    def _attention_cached(
        self,
        index: int,
        x: np.ndarray,
        cache: KVCacheLike,
        positions: np.ndarray,
        valid: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Attention where keys/values come from (and are written to) ``cache``.

        ``x`` is (batch, new_len, d_model) and ``positions`` gives each new
        token's absolute position, which is also its cache slot.  A slot ``s``
        is visible to a query at position ``p`` iff ``s <= p`` — this covers
        both causality and padding, because padded/unwritten slots always sit
        strictly after the querying token's own position.

        ``valid`` marks the rows that belong to real tokens (padding rows of a
        ragged prefill are False).  Masking alone already keeps padding out of
        every *output*; the extra neutralisation below also keeps it out of
        executors that quantize attention operands *dynamically* (Tender
        "all"), whose per-head statistics would otherwise see the garbage
        rows: padded queries are replaced by a duplicate of the sequence's
        first row (duplicates never widen a max/min range) and padded
        keys/values are zeroed (zeros never widen an absmax).
        """
        block = self.weights.blocks[index]
        config = self.config
        batch, new_len, _ = x.shape
        prefix = f"block{index}.attn"

        queries = self._project(f"{prefix}.q_proj", x, block.attn.wq, block.attn.bq, positions)
        keys = self._project(f"{prefix}.k_proj", x, block.attn.wk, block.attn.bk, positions)
        values = self._project(f"{prefix}.v_proj", x, block.attn.wv, block.attn.bv, positions)
        queries, keys, values = neutralize_padding(queries, keys, values, valid)

        def split(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, new_len, config.num_heads, config.d_head).transpose(0, 2, 1, 3)

        queries, keys, values = split(queries), split(keys), split(values)
        cache.write(index, keys, values, positions)
        if self.fused_paged_attention and fused_attention_ready(self.executor, cache):
            # Both attention products are plain matmuls, so read K/V straight
            # from block storage — no dense gather.  Operands are fetched
            # *after* the write: any copy-on-write fork the write triggered is
            # already reflected in the run table.
            key_pool, value_pool, runs, block_size = cache.attention_operands(index)
            context = paged_attention(
                queries, key_pool, value_pool, runs, block_size, positions, valid
            )
        else:
            attended = int(positions.max()) + 1
            cached_keys, cached_values = cache.view(index, attended)
            context = dense_cached_attention(
                self.executor,
                prefix,
                queries,
                cached_keys,
                cached_values,
                positions,
                valid,
                config.d_head,
            )
        context = context.transpose(0, 2, 1, 3).reshape(batch, new_len, config.d_model)
        return self._project(f"{prefix}.out_proj", context, block.attn.wo, block.attn.bo, positions)

    def _incremental_backbone(
        self,
        tokens: np.ndarray,
        cache: KVCacheLike,
        positions: np.ndarray,
        valid: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the backbone over new tokens only, attending through the cache."""
        if positions.max() >= self.config.max_seq_len:
            raise ConfigurationError(
                f"position {int(positions.max())} exceeds max_seq_len {self.config.max_seq_len}"
            )
        cache.ensure_capacity(int(positions.max()) + 1)
        x = self.weights.token_embedding[tokens] + self.weights.position_embedding[positions]
        for index, block in enumerate(self.weights.blocks):
            attn_input = self._layer_norm(x, block.ln_attn.gain, block.ln_attn.bias)
            x = x + self._attention_cached(index, attn_input, cache, positions, valid)
            ffn_input = self._layer_norm(x, block.ln_ffn.gain, block.ln_ffn.bias)
            x = x + self._feed_forward(index, ffn_input, positions)
        return self._layer_norm(x, self.weights.ln_final.gain, self.weights.ln_final.bias)

    def prefill(
        self,
        tokens: np.ndarray,
        lengths: np.ndarray,
        cache: KVCacheLike,
        start_positions: Optional[np.ndarray] = None,
        return_logits: bool = True,
    ) -> Optional[np.ndarray]:
        """Populate ``cache`` from right-padded prompts; return next-token logits.

        ``tokens`` is (batch, max_prompt_len) with each row holding a prompt of
        ``lengths[i]`` tokens followed by padding.  Padded rows do write
        (garbage) cache slots, but those slots are never visible to a valid
        query and are overwritten as soon as decoding reaches them.  Returns
        the LM logits at each row's final provided position, shape
        (batch, vocab).

        ``start_positions`` makes this a *partial-prompt* prefill: row ``b``'s
        tokens are a chunk starting at absolute position ``start_positions[b]``
        and the cache is expected to already hold that row's earlier KV (the
        prefix-caching scheduler's prefix hits and chunked prefill both rely
        on this).  Each chunk row attends over the full cached history plus
        the chunk's own causal window, exactly as a whole-prompt prefill
        would, and ``cache.lengths`` advances to ``start + lengths`` per row.
        ``return_logits=False`` skips the LM-head projection and returns
        ``None`` — only a prompt's final chunk needs logits, so intermediate
        chunks of a chunked prefill save that per-chunk matmul.
        """
        if self.weights.lm_head is None:
            raise ConfigurationError("model has no LM head; generation requires one")
        tokens = np.asarray(tokens, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        batch, max_len = tokens.shape
        if np.any(lengths < 1) or np.any(lengths > max_len):
            raise ConfigurationError("prompt lengths must be in [1, max_prompt_len]")
        if start_positions is None:
            start = np.zeros(batch, dtype=np.int64)
        else:
            start = np.asarray(start_positions, dtype=np.int64).reshape(-1)
            if start.shape[0] != batch:
                raise ConfigurationError("start_positions must provide one position per row")
            if np.any(start < 0):
                raise ConfigurationError("start_positions must be >= 0")
        positions = start[:, None] + np.arange(max_len, dtype=np.int64)[None, :]
        valid = np.arange(max_len, dtype=np.int64)[None, :] < lengths[:, None]
        hidden = self._incremental_backbone(tokens, cache, positions, valid)
        cache.lengths[:] = start + lengths
        if not return_logits:
            return None
        last = hidden[np.arange(batch), lengths - 1]
        return self._project("lm_head", last, self.weights.lm_head, None, start + lengths - 1)

    def verify(
        self,
        tokens: np.ndarray,
        cache: KVCacheLike,
        start_positions: np.ndarray,
    ) -> np.ndarray:
        """Score a run of draft tokens per sequence in one forward pass.

        The multi-token half of speculative decoding (``repro.serve.spec``):
        row ``b`` of ``tokens`` is ``[pending, draft_1, ..., draft_k]`` — the
        sequence's already-sampled next token followed by ``k`` speculated
        continuations — and ``start_positions[b]`` is the row's committed
        cache length (the position the pending token will occupy).  One
        incremental forward, the same partial-prompt machinery chunked
        prefill uses, scores every position: the returned logits have shape
        ``(batch, new_len, vocab)`` and ``logits[b, j]`` predicts the token
        at absolute position ``start_positions[b] + j + 1`` — rows ``0..k-1``
        verify the drafts and row ``k`` is the *bonus* distribution after a
        fully accepted run.  With ``new_len == 1`` this degenerates exactly
        to :meth:`decode_step`.

        Every provided token's KV is written to the cache (positions
        ``start .. start + new_len - 1``) and ``cache.lengths`` advances to
        ``start + new_len``; the caller rolls rejected positions back (e.g.
        :meth:`repro.serve.paged_kv_cache.PagedKVCache.truncate`) after
        deciding how many drafts survived.  Because quantization parameters
        are looked up by *position* (see :meth:`decode_step`), the logits at
        every position are bit-identical to the sequential decode steps they
        replace for executors with statically-determined parameters —
        greedy speculative decoding is therefore token-exact.

        The batch must be rectangular: all rows carry ``new_len`` real
        tokens.  Rows with fewer drafts belong in a separate (shorter) call
        — padding a ragged verify would write garbage KV beyond a short
        row's reservation.
        """
        if self.weights.lm_head is None:
            raise ConfigurationError("model has no LM head; generation requires one")
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ConfigurationError("verify() expects (batch, new_len) token rows")
        batch, new_len = tokens.shape
        if new_len < 1:
            raise ConfigurationError("verify() needs at least the pending token per row")
        start = np.asarray(start_positions, dtype=np.int64).reshape(-1)
        if start.shape[0] != batch:
            raise ConfigurationError("start_positions must provide one position per row")
        if np.any(start < 0):
            raise ConfigurationError("start_positions must be >= 0")
        positions = start[:, None] + np.arange(new_len, dtype=np.int64)[None, :]
        hidden = self._incremental_backbone(tokens, cache, positions)
        cache.lengths[:] = start + new_len
        return self._project("lm_head", hidden, self.weights.lm_head, None, positions)

    def decode_step(self, tokens: np.ndarray, cache: KVCacheLike) -> np.ndarray:
        """Append one token per sequence and return next-token logits.

        ``tokens`` is (batch,) — the token each sequence just produced (or the
        last prompt token when priming without :meth:`prefill`).  Rows are
        fully independent slots: each may sit at its own position (ragged
        prompts, mid-flight admission) and each writes its own next cache
        slot at ``cache.lengths[b]``.  Because quantization parameters are
        looked up by *position* (Tender's row chunks, see ``_project``), a
        row's logits do not depend on which physical slot or batch row it
        currently occupies — the property that makes the continuous
        scheduler's slot reuse safe.  This scattered-position batch is the
        hot path of Tender's fast kernels: ``TenderExecutor`` serves every
        projection here from packed calibration tables indexed by
        ``positions // chunk_size`` (one gather, no per-chunk Python loop —
        see :mod:`repro.core.kernels`).  Returns logits of shape
        (batch, vocab).
        """
        if self.weights.lm_head is None:
            raise ConfigurationError("model has no LM head; generation requires one")
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1, 1)
        positions = cache.lengths[:, None].copy()
        hidden = self._incremental_backbone(tokens, cache, positions)
        cache.lengths += 1
        return self._project("lm_head", hidden[:, 0], self.weights.lm_head, None, positions[:, 0])


def run_calibration(
    weights: ModelWeights,
    samples: List[np.ndarray],
    classify: bool = False,
) -> ActivationObserver:
    """Run calibration samples through the FP model and collect statistics."""
    executor = ObservingExecutor()
    runner = TransformerRunner(weights, executor)
    for sample in samples:
        if classify:
            runner.classify(np.asarray(sample)[None, :])
        else:
            runner.logits(np.asarray(sample)[None, :])
    return executor.observer


def capture_activations(weights: ModelWeights, sample: np.ndarray) -> Dict[str, np.ndarray]:
    """Capture raw per-site input activations for one sample (Figures 2-3)."""
    executor = CapturingExecutor()
    runner = TransformerRunner(weights, executor)
    if weights.lm_head is not None:
        runner.logits(np.asarray(sample)[None, :])
    else:
        runner.classify(np.asarray(sample)[None, :])
    return executor.captured
