"""Model zoo: named stand-ins for the checkpoints evaluated in the paper.

The paper's evaluation covers OPT-6.7B/13B/66B, Llama-2-7B/13B/70B,
LLaMA-7B/13B (decoder-only LMs) and BERT-Large (encoder).  The zoo defines a
scaled-down stand-in for each, with three properties preserved:

* relative ordering of sizes within a family (more layers / wider models for
  the larger stand-ins),
* the activation function family (ReLU for OPT-like, GELU for Llama/BERT-like),
* the strength of channel-wise activation outliers (strongest in the OPT
  family, moderate in Llama, weak in BERT — matching the paper's observation
  that BERT-Large outliers "are much smaller").

Every entry also records the training recipe so the checkpoint cache can
(re)produce it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.nn.transformer import TransformerConfig


@dataclass(frozen=True)
class ZooEntry:
    """One named model in the zoo and how to train it."""

    name: str
    paper_name: str
    family: str
    d_model: int
    num_heads: int
    num_layers: int
    d_ff: int
    vocab_size: int = 512
    max_seq_len: int = 256
    activation: str = "relu"
    causal: bool = True
    seed: int = 0
    #: Training recipe.
    train_steps: int = 200
    train_batch_size: int = 8
    train_seq_len: int = 48
    learning_rate: float = 3e-3
    #: Outlier injection parameters (see repro.models.outliers.OutlierSpec).
    outlier_scale_channels: int = 2
    outlier_scale_magnitude: float = 60.0
    outlier_shift_channels: int = 2
    outlier_shift_magnitude: float = 30.0
    outlier_spread: float = 2.0
    #: GEMM dimensions of the full-scale model this entry stands in for,
    #: used by the accelerator simulator workloads (Figures 10, 11, 13).
    paper_d_model: int = 4096
    paper_d_ff: int = 16384
    paper_num_layers: int = 32
    paper_num_heads: int = 32

    def outlier_spec(self) -> "OutlierSpec":
        """Outlier-injection parameters of this model as an :class:`OutlierSpec`."""
        from repro.models.outliers import OutlierSpec

        return OutlierSpec(
            num_scale_channels=self.outlier_scale_channels,
            scale_magnitude=self.outlier_scale_magnitude,
            num_shift_channels=self.outlier_shift_channels,
            shift_magnitude=self.outlier_shift_magnitude,
            spread=self.outlier_spread,
            seed=self.seed,
        )

    def to_transformer_config(self, num_classes: Optional[int] = None) -> TransformerConfig:
        return TransformerConfig(
            vocab_size=self.vocab_size,
            d_model=self.d_model,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            d_ff=self.d_ff,
            max_seq_len=self.max_seq_len,
            activation=self.activation,
            causal=self.causal,
            num_classes=num_classes,
            seed=self.seed,
            name=self.name,
        )


def _entry(**kwargs) -> ZooEntry:
    return ZooEntry(**kwargs)


#: The zoo.  Names use a ``-sim`` suffix to make the substitution explicit.
MODEL_ZOO: Dict[str, ZooEntry] = {
    entry.name: entry
    for entry in [
        _entry(
            name="opt-6.7b-sim", paper_name="OPT-6.7B", family="opt",
            d_model=64, num_heads=4, num_layers=2, d_ff=192, activation="relu", seed=11,
            outlier_scale_channels=2, outlier_scale_magnitude=80.0,
            outlier_shift_channels=2, outlier_shift_magnitude=40.0,
            paper_d_model=4096, paper_d_ff=16384, paper_num_layers=32, paper_num_heads=32,
        ),
        _entry(
            name="opt-13b-sim", paper_name="OPT-13B", family="opt",
            d_model=80, num_heads=4, num_layers=2, d_ff=240, activation="relu", seed=12,
            train_steps=220, outlier_scale_channels=3, outlier_scale_magnitude=90.0,
            outlier_shift_channels=2, outlier_shift_magnitude=45.0,
            paper_d_model=5120, paper_d_ff=20480, paper_num_layers=40, paper_num_heads=40,
        ),
        _entry(
            name="opt-66b-sim", paper_name="OPT-66B", family="opt",
            d_model=96, num_heads=4, num_layers=3, d_ff=288, activation="relu", seed=13,
            train_steps=240, outlier_scale_channels=3, outlier_scale_magnitude=100.0,
            outlier_shift_channels=3, outlier_shift_magnitude=50.0,
            paper_d_model=9216, paper_d_ff=36864, paper_num_layers=64, paper_num_heads=72,
        ),
        _entry(
            name="llama-2-7b-sim", paper_name="Llama-2-7B", family="llama2",
            d_model=64, num_heads=4, num_layers=2, d_ff=192, activation="gelu", seed=21,
            outlier_scale_channels=2, outlier_scale_magnitude=40.0,
            outlier_shift_channels=2, outlier_shift_magnitude=20.0,
            paper_d_model=4096, paper_d_ff=11008, paper_num_layers=32, paper_num_heads=32,
        ),
        _entry(
            name="llama-2-13b-sim", paper_name="Llama-2-13B", family="llama2",
            d_model=80, num_heads=4, num_layers=2, d_ff=240, activation="gelu", seed=22,
            train_steps=220, outlier_scale_channels=2, outlier_scale_magnitude=45.0,
            outlier_shift_channels=2, outlier_shift_magnitude=22.0,
            paper_d_model=5120, paper_d_ff=13824, paper_num_layers=40, paper_num_heads=40,
        ),
        _entry(
            name="llama-2-70b-sim", paper_name="Llama-2-70B", family="llama2",
            d_model=96, num_heads=4, num_layers=3, d_ff=288, activation="gelu", seed=23,
            train_steps=240, outlier_scale_channels=3, outlier_scale_magnitude=50.0,
            outlier_shift_channels=2, outlier_shift_magnitude=25.0,
            paper_d_model=8192, paper_d_ff=28672, paper_num_layers=80, paper_num_heads=64,
        ),
        _entry(
            name="llama-7b-sim", paper_name="LLaMA-7B", family="llama",
            d_model=64, num_heads=4, num_layers=2, d_ff=192, activation="gelu", seed=31,
            outlier_scale_channels=2, outlier_scale_magnitude=35.0,
            outlier_shift_channels=2, outlier_shift_magnitude=18.0,
            paper_d_model=4096, paper_d_ff=11008, paper_num_layers=32, paper_num_heads=32,
        ),
        _entry(
            name="llama-13b-sim", paper_name="LLaMA-13B", family="llama",
            d_model=80, num_heads=4, num_layers=2, d_ff=240, activation="gelu", seed=32,
            train_steps=220, outlier_scale_channels=2, outlier_scale_magnitude=40.0,
            outlier_shift_channels=2, outlier_shift_magnitude=20.0,
            paper_d_model=5120, paper_d_ff=13824, paper_num_layers=40, paper_num_heads=40,
        ),
        _entry(
            name="llama-65b-sim", paper_name="LLaMA-65B", family="llama",
            d_model=96, num_heads=4, num_layers=3, d_ff=288, activation="gelu", seed=33,
            train_steps=240, outlier_scale_channels=3, outlier_scale_magnitude=45.0,
            outlier_shift_channels=2, outlier_shift_magnitude=22.0,
            paper_d_model=8192, paper_d_ff=22016, paper_num_layers=80, paper_num_heads=64,
        ),
        _entry(
            name="bert-large-sim", paper_name="BERT-Large", family="bert",
            d_model=64, num_heads=4, num_layers=2, d_ff=192, activation="gelu",
            causal=False, seed=41, max_seq_len=64,
            outlier_scale_channels=2, outlier_scale_magnitude=6.0,
            outlier_shift_channels=1, outlier_shift_magnitude=4.0,
            paper_d_model=1024, paper_d_ff=4096, paper_num_layers=24, paper_num_heads=16,
        ),
    ]
}

#: The decoder-only language models, in the order Table II lists them.
LANGUAGE_MODEL_NAMES: List[str] = [
    "opt-6.7b-sim",
    "opt-13b-sim",
    "opt-66b-sim",
    "llama-2-7b-sim",
    "llama-2-13b-sim",
    "llama-2-70b-sim",
    "llama-7b-sim",
    "llama-13b-sim",
]


def get_zoo_entry(name: str) -> ZooEntry:
    """Look up a zoo entry by name."""
    if name not in MODEL_ZOO:
        raise ConfigurationError(f"unknown model {name!r}; expected one of {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name]
