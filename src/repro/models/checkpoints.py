"""Checkpoint cache for the model zoo.

Training even the scaled-down models takes tens of seconds, and the
experiments reuse the same checkpoints many times (every scheme in Table II is
evaluated on the same eight models).  This module trains each zoo entry once,
injects its outlier channels, and stores the resulting inference weights as an
``.npz`` under a cache directory:

* ``$REPRO_CACHE_DIR`` if set, otherwise
* ``<repository>/.artifacts``.

Cache entries are keyed by the zoo entry's full recipe, so changing the zoo
invalidates stale files automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.classification import ClassificationTask, make_glue_task
from repro.data.corpus import load_corpus
from repro.models.outliers import inject_outliers
from repro.models.pretrain import train_classifier, train_language_model
from repro.models.weights import ModelWeights, extract_weights
from repro.models.zoo import ZooEntry, get_zoo_entry

#: In-process cache so repeated calls within one test/benchmark session are free.
_MEMORY_CACHE: Dict[str, ModelWeights] = {}


def cache_directory() -> Path:
    """Directory where trained checkpoints are stored."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / ".artifacts"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _recipe_hash(entry: ZooEntry, extra: str = "") -> str:
    payload = json.dumps(asdict(entry), sort_keys=True) + extra
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _checkpoint_path(entry: ZooEntry, extra: str = "") -> Path:
    return cache_directory() / f"{entry.name}-{_recipe_hash(entry, extra)}.npz"


def _training_tokens(entry: ZooEntry) -> np.ndarray:
    """Concatenate the wiki-like and ptb-like training splits.

    The paper's checkpoints were trained on large general corpora and then
    evaluated on both WikiText-2 and PTB; training the stand-ins on a mixture
    of both synthetic corpora gives the same "evaluated in-domain on two
    slightly different distributions" setup.
    """
    wiki_train, _ = load_corpus("wiki", vocab_size=entry.vocab_size).split()
    ptb_train, _ = load_corpus("ptb", vocab_size=entry.vocab_size).split()
    return np.concatenate([wiki_train, ptb_train])


def _save(path: Path, weights: ModelWeights) -> None:
    np.savez_compressed(path, **weights.to_arrays())


def _load(path: Path, entry: ZooEntry, num_classes: Optional[int] = None) -> ModelWeights:
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    config = entry.to_transformer_config(num_classes=num_classes)
    return ModelWeights.from_arrays(config, arrays)


def get_language_model(
    name: str,
    with_outliers: bool = True,
    force_retrain: bool = False,
) -> ModelWeights:
    """Return trained inference weights for a zoo language model.

    ``with_outliers=False`` returns the checkpoint before outlier injection,
    which is useful for ablations that isolate the effect of the injected
    channel structure.
    """
    entry = get_zoo_entry(name)
    key = f"{name}:{with_outliers}"
    if not force_retrain and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key].copy()

    path = _checkpoint_path(entry, extra="lm")
    if force_retrain or not path.exists():
        config = entry.to_transformer_config()
        tokens = _training_tokens(entry)
        model, _ = train_language_model(
            config,
            tokens,
            steps=entry.train_steps,
            batch_size=entry.train_batch_size,
            seq_len=entry.train_seq_len,
            learning_rate=entry.learning_rate,
            seed=entry.seed,
        )
        weights = extract_weights(model)
        _save(path, weights)
    weights = _load(path, entry)
    if with_outliers:
        weights = inject_outliers(weights, spec=entry.outlier_spec())
    _MEMORY_CACHE[key] = weights.copy()
    return weights


def get_classifier(
    model_name: str,
    task: ClassificationTask,
    with_outliers: bool = True,
    force_retrain: bool = False,
    steps: int = 260,
) -> ModelWeights:
    """Return a classifier checkpoint fine-tuned on ``task`` (BERT / Table IV)."""
    entry = get_zoo_entry(model_name)
    key = f"{model_name}:{task.name}:{with_outliers}:{steps}"
    if not force_retrain and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key].copy()

    path = _checkpoint_path(entry, extra=f"cls-{task.name}-{steps}")
    if force_retrain or not path.exists():
        config = entry.to_transformer_config(num_classes=task.num_classes)
        model, _ = train_classifier(config, task, steps=steps, seed=entry.seed)
        weights = extract_weights(model)
        _save(path, weights)
    weights = _load(path, entry, num_classes=task.num_classes)
    if with_outliers:
        weights = inject_outliers(weights, spec=entry.outlier_spec())
    _MEMORY_CACHE[key] = weights.copy()
    return weights


def get_glue_classifier(model_name: str, task_name: str, seq_len: int = 32) -> Tuple[ModelWeights, ClassificationTask]:
    """Convenience wrapper: build the task and the fine-tuned classifier for it."""
    entry = get_zoo_entry(model_name)
    task = make_glue_task(task_name, vocab_size=entry.vocab_size, seq_len=seq_len, seed=entry.seed)
    weights = get_classifier(model_name, task)
    return weights, task


def clear_memory_cache() -> None:
    """Drop the in-process cache (used by tests that force retraining)."""
    _MEMORY_CACHE.clear()
