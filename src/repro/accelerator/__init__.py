"""Cycle-level accelerator simulator: Tender MSA and baseline accelerators."""

from repro.accelerator.accelerators import (
    ACCELERATOR_BUILDERS,
    AcceleratorModel,
    all_accelerators,
    build_accelerator,
    build_ant_accelerator,
    build_olaccel_accelerator,
    build_olive_accelerator,
    build_tender_accelerator,
)
from repro.accelerator.area import (
    ComponentArea,
    iso_area_pe_count,
    tender_area_table,
    total_area_power,
)
from repro.accelerator.config import AcceleratorConfig, MemoryConfig, SystolicConfig, VPUConfig
from repro.accelerator.energy import EnergyBreakdown, workload_energy
from repro.accelerator.memory import HBMModel, IndexBuffer, MemoryTraffic, ScratchpadModel
from repro.accelerator.simulator import (
    AcceleratorSimulator,
    GemmSimResult,
    SimulationResult,
    simulate_on,
    speedup_table,
)
from repro.accelerator.systolic import (
    GemmCycleBreakdown,
    MultiScaleSystolicArray,
    ProcessingElement,
    gemm_cycles,
)
from repro.accelerator.workloads import (
    GemmShape,
    Workload,
    model_generation_workload,
    model_prefill_workload,
    transformer_layer_gemms,
)

__all__ = [
    "AcceleratorConfig",
    "SystolicConfig",
    "MemoryConfig",
    "VPUConfig",
    "AcceleratorModel",
    "ACCELERATOR_BUILDERS",
    "build_accelerator",
    "build_tender_accelerator",
    "build_ant_accelerator",
    "build_olaccel_accelerator",
    "build_olive_accelerator",
    "all_accelerators",
    "ComponentArea",
    "tender_area_table",
    "total_area_power",
    "iso_area_pe_count",
    "EnergyBreakdown",
    "workload_energy",
    "HBMModel",
    "ScratchpadModel",
    "IndexBuffer",
    "MemoryTraffic",
    "gemm_cycles",
    "GemmCycleBreakdown",
    "ProcessingElement",
    "MultiScaleSystolicArray",
    "GemmShape",
    "Workload",
    "transformer_layer_gemms",
    "model_prefill_workload",
    "model_generation_workload",
    "AcceleratorSimulator",
    "SimulationResult",
    "GemmSimResult",
    "simulate_on",
    "speedup_table",
]
