"""LLM inference workloads for the accelerator simulator.

Figures 10, 11, and 13 evaluate the accelerators on the *full-scale* models
(OPT-6.7B ... Llama-2-70B) with a batch size of 1 and a 2048:1 input-to-output
sequence-length split (prefill-dominated, following the paper's Section V-A).
The model zoo records the full-scale GEMM dimensions of each stand-in, and
this module expands them into the per-layer matrix-multiplication list a
Transformer block executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.models.zoo import get_zoo_entry


@dataclass(frozen=True)
class GemmShape:
    """One matrix multiplication: (m x k) @ (k x n), repeated ``count`` times."""

    name: str
    m: int
    k: int
    n: int
    count: int = 1

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count

    def operand_bytes(self, activation_bits: int, weight_bits: int) -> int:
        """Bytes moved from off-chip memory for operands and results."""
        activation = self.m * self.k * activation_bits // 8
        weight = self.k * self.n * weight_bits // 8
        output = self.m * self.n * activation_bits // 8
        return (activation + weight + output) * self.count


@dataclass
class Workload:
    """A named list of GEMMs (one Transformer forward pass)."""

    name: str
    gemms: List[GemmShape] = field(default_factory=list)

    @property
    def total_macs(self) -> int:
        return sum(g.macs for g in self.gemms)

    def total_bytes(self, activation_bits: int, weight_bits: int) -> int:
        return sum(g.operand_bytes(activation_bits, weight_bits) for g in self.gemms)


def transformer_layer_gemms(
    d_model: int, d_ff: int, num_heads: int, seq_len: int
) -> List[GemmShape]:
    """The matrix multiplications of one Transformer block (Section II-A)."""
    if d_model % num_heads != 0:
        raise ConfigurationError("d_model must be divisible by num_heads")
    d_head = d_model // num_heads
    return [
        GemmShape("qkv_proj", seq_len, d_model, d_model, count=3),
        GemmShape("attention_scores", seq_len, d_head, seq_len, count=num_heads),
        GemmShape("attention_values", seq_len, seq_len, d_head, count=num_heads),
        GemmShape("out_proj", seq_len, d_model, d_model),
        GemmShape("fc1", seq_len, d_model, d_ff),
        GemmShape("fc2", seq_len, d_ff, d_model),
    ]


def model_prefill_workload(model_name: str, seq_len: int = 2048, batch: int = 1) -> Workload:
    """Prefill workload of a full-scale model (batch 1, 2048 tokens by default)."""
    entry = get_zoo_entry(model_name)
    layer = transformer_layer_gemms(
        entry.paper_d_model, entry.paper_d_ff, entry.paper_num_heads, seq_len
    )
    gemms = [
        GemmShape(g.name, g.m * batch, g.k, g.n, count=g.count * entry.paper_num_layers)
        for g in layer
    ]
    return Workload(name=f"{model_name}-prefill-{seq_len}", gemms=gemms)


def model_generation_workload(model_name: str, context_len: int = 2048, batch: int = 1) -> Workload:
    """Single-token generation workload (m = batch, attention over the KV cache)."""
    entry = get_zoo_entry(model_name)
    d_head = entry.paper_d_model // entry.paper_num_heads
    gemms = [
        GemmShape("qkv_proj", batch, entry.paper_d_model, entry.paper_d_model, count=3 * entry.paper_num_layers),
        GemmShape("attention_scores", batch, d_head, context_len, count=entry.paper_num_heads * entry.paper_num_layers),
        GemmShape("attention_values", batch, context_len, d_head, count=entry.paper_num_heads * entry.paper_num_layers),
        GemmShape("out_proj", batch, entry.paper_d_model, entry.paper_d_model, count=entry.paper_num_layers),
        GemmShape("fc1", batch, entry.paper_d_model, entry.paper_d_ff, count=entry.paper_num_layers),
        GemmShape("fc2", batch, entry.paper_d_ff, entry.paper_d_model, count=entry.paper_num_layers),
    ]
    return Workload(name=f"{model_name}-generate", gemms=gemms)
