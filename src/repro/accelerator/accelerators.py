"""Accelerator models: Tender and the outlier-aware baselines it is compared to.

Figures 10 and 11 compare Tender against ANT, OLAccel, and OliVe under an
iso-area configuration: the paper synthesizes each design's MAC unit and
accumulator and scales PE counts so all accelerators occupy the same compute
area, with identical memory bandwidth and on-chip buffer capacity.  Without an
RTL flow, this module encodes each baseline's *relative* MAC-unit cost and
execution overheads as parameters estimated from the papers' descriptions
(documented per accelerator below), and derives iso-area PE counts from them.
The cycle/energy differences then follow from the simulator, so per-model
variation (Figure 10's different bars per LLM) emerges from the workload
shapes rather than from hard-coded speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isqrt
from typing import Dict, List

from repro.accelerator.area import PE_AREA_MM2, iso_area_pe_count
from repro.accelerator.config import AcceleratorConfig, MemoryConfig, SystolicConfig, VPUConfig
from repro.errors import ConfigurationError

#: Energy per MAC operation at 28 nm (pJ), loose synthesis-style estimates.
MAC_ENERGY_PJ = {4: 0.08, 8: 0.22, 16: 1.0}


@dataclass(frozen=True)
class AcceleratorModel:
    """A named accelerator with its iso-area compute array and overheads."""

    name: str
    config: AcceleratorConfig
    #: Relative area of one PE (MAC + accumulator + scheme-specific logic)
    #: compared to a Tender 4-bit PE.
    pe_area_factor: float = 1.0
    #: Fraction of GEMM work executed at 8-bit rather than 4-bit precision
    #: (ANT falls back to 8 bits on most layers to preserve accuracy).  On a
    #: 4-bit PE fabric an 8-bit MAC gangs four PEs, so this fraction runs at a
    #: quarter of the array throughput and moves twice the bytes.
    int8_fraction: float = 0.0
    #: Fraction of MACs re-executed on high-precision outlier datapaths
    #: (OLAccel's outlier PEs).
    outlier_mac_fraction: float = 0.0

    def mac_energy_pj(self) -> float:
        """Average energy per MAC given the precision mix."""
        base = MAC_ENERGY_PJ[4] * (1.0 - self.int8_fraction) + MAC_ENERGY_PJ[8] * self.int8_fraction
        return base + self.outlier_mac_fraction * MAC_ENERGY_PJ[16]

    @property
    def compute_multiplier(self) -> float:
        """Cycle multiplier from the precision mix (8-bit work is 4x slower)."""
        return (1.0 - self.int8_fraction) + 4.0 * self.int8_fraction

    @property
    def effective_activation_bits(self) -> float:
        """Average operand width given the precision mix (for memory traffic)."""
        return 4.0 * (1.0 - self.int8_fraction) + 8.0 * self.int8_fraction


def _square_systolic(num_pes: int, pe_bits: int, dataflow: str = "output_stationary") -> SystolicConfig:
    side = max(isqrt(num_pes), 1)
    return SystolicConfig(rows=side, cols=side, pe_bits=pe_bits, dataflow=dataflow)


def build_tender_accelerator(dataflow: str = "output_stationary") -> AcceleratorModel:
    """Tender: dense 64x64 array of 4-bit PEs with the 1-bit shifter extension."""
    config = AcceleratorConfig(
        name="Tender",
        systolic=SystolicConfig(rows=64, cols=64, pe_bits=4, dataflow=dataflow),
        precision_bits=4,
        decode_cycles_per_tile=0,
        control_overhead=1.0,
        mac_energy_pj=MAC_ENERGY_PJ[4],
    )
    return AcceleratorModel(name="Tender", config=config, pe_area_factor=1.0)


def build_ant_accelerator() -> AcceleratorModel:
    """ANT: datatype decoders at the array edge; most layers run at 8 bits.

    The decoder converts adaptive datatypes into exponent + integer before the
    MAC, which costs area (larger effective PE) and a per-tile decode latency;
    and because ANT's 4-bit datatypes lose too much accuracy on LLMs, the
    majority of layers fall back to INT8 (Section V-C), halving throughput on
    the 4-bit fabric.
    """
    pe_area_factor = 1.15
    num_pes = iso_area_pe_count(64 * 64, PE_AREA_MM2, PE_AREA_MM2 * pe_area_factor)
    config = AcceleratorConfig(
        name="ANT",
        systolic=_square_systolic(num_pes, pe_bits=4),
        precision_bits=4,
        decode_cycles_per_tile=8,
        control_overhead=1.05,
        mac_energy_pj=MAC_ENERGY_PJ[8],
    )
    return AcceleratorModel(name="ANT", config=config, pe_area_factor=pe_area_factor, int8_fraction=0.40)


def build_olaccel_accelerator() -> AcceleratorModel:
    """OLAccel: 4-bit normal PEs plus 16-bit outlier PEs and complex control.

    The outlier PEs and the control/routing for mixed precision consume area
    that would otherwise be normal PEs, and unaligned (outlier) memory access
    plus the second datapath add a control overhead on every tile.
    """
    pe_area_factor = 1.40
    num_pes = iso_area_pe_count(64 * 64, PE_AREA_MM2, PE_AREA_MM2 * pe_area_factor)
    config = AcceleratorConfig(
        name="OLAccel",
        systolic=_square_systolic(num_pes, pe_bits=4),
        precision_bits=4,
        decode_cycles_per_tile=4,
        control_overhead=1.28,
        mac_energy_pj=MAC_ENERGY_PJ[4],
        mixed_precision=True,
    )
    return AcceleratorModel(
        name="OLAccel", config=config, pe_area_factor=pe_area_factor, outlier_mac_fraction=0.03
    )


def build_olive_accelerator() -> AcceleratorModel:
    """OliVe: output-stationary array with outlier-victim-pair decoders.

    OliVe keeps memory aligned (no mixed-precision storage) but every PE input
    passes through an encoder/decoder for the outlier-victim-pair datatype and
    the MAC operates on exponent + integer, making the PE larger and adding a
    per-tile decode latency.
    """
    pe_area_factor = 1.25
    num_pes = iso_area_pe_count(64 * 64, PE_AREA_MM2, PE_AREA_MM2 * pe_area_factor)
    config = AcceleratorConfig(
        name="OliVe",
        systolic=_square_systolic(num_pes, pe_bits=4),
        precision_bits=4,
        decode_cycles_per_tile=6,
        control_overhead=1.15,
        mac_energy_pj=MAC_ENERGY_PJ[4] * 1.3,
    )
    return AcceleratorModel(name="OliVe", config=config, pe_area_factor=pe_area_factor)


#: Accelerators in the order the paper's figures list them.
ACCELERATOR_BUILDERS = {
    "ANT": build_ant_accelerator,
    "OLAccel": build_olaccel_accelerator,
    "OliVe": build_olive_accelerator,
    "Tender": build_tender_accelerator,
}


def build_accelerator(name: str) -> AcceleratorModel:
    """Build an accelerator model by name."""
    if name not in ACCELERATOR_BUILDERS:
        raise ConfigurationError(
            f"unknown accelerator {name!r}; expected one of {sorted(ACCELERATOR_BUILDERS)}"
        )
    return ACCELERATOR_BUILDERS[name]()


def all_accelerators() -> List[AcceleratorModel]:
    """All accelerator models, in presentation order."""
    return [build_accelerator(name) for name in ("ANT", "OLAccel", "OliVe", "Tender")]
