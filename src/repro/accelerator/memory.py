"""Off-chip memory timing and on-chip buffer models.

The paper pairs its compute model with HBM2 and a Ramulator-based DRAM timing
model.  The simulator here uses a bandwidth/efficiency model with a burst
granularity: the time to stream a tensor is its size divided by the sustained
bandwidth, rounded up to whole bursts, and compute/memory are overlapped by
double buffering (the execution controller and HBM controller "operate
independently during computation to keep the MSA busy", Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.accelerator.config import MemoryConfig
from repro.errors import SimulationError


@dataclass
class MemoryTraffic:
    """Bytes moved per operand class for one workload."""

    activation_bytes: int = 0
    weight_bytes: int = 0
    output_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.activation_bytes + self.weight_bytes + self.output_bytes


class HBMModel:
    """Sustained-bandwidth HBM2 model with burst granularity."""

    def __init__(self, config: MemoryConfig, burst_bytes: int = 64) -> None:
        if burst_bytes <= 0:
            raise SimulationError("burst_bytes must be positive")
        self.config = config
        self.burst_bytes = burst_bytes

    def transfer_cycles(self, num_bytes: int, frequency_ghz: float = 1.0) -> int:
        """Cycles (at ``frequency_ghz``) to move ``num_bytes`` to/from HBM."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer a negative number of bytes")
        if num_bytes == 0:
            return 0
        bursts = ceil(num_bytes / self.burst_bytes)
        effective_bytes = bursts * self.burst_bytes
        bytes_per_cycle = self.config.bytes_per_cycle / frequency_ghz
        return ceil(effective_bytes / bytes_per_cycle)

    def transfer_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` across the HBM interface."""
        return num_bytes * self.config.hbm_pj_per_byte


class ScratchpadModel:
    """On-chip SRAM: capacity checking and access energy."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.capacity_bytes = config.scratchpad_kib * 1024

    def fits(self, num_bytes: int) -> bool:
        """Whether a working set fits in the scratchpad (per double-buffer half)."""
        return num_bytes <= self.capacity_bytes // 2

    def access_energy_pj(self, num_bytes: int) -> float:
        return num_bytes * self.config.sram_pj_per_byte


class IndexBuffer:
    """The double-buffered channel-index buffer feeding indirect loads.

    Stores the per-row-chunk channel computation order (2 bytes per channel
    index).  ``fits`` checks one chunk's index list against half the buffer,
    since the other half is being filled for the next chunk (Section IV-D).
    """

    def __init__(self, config: MemoryConfig) -> None:
        self.capacity_bytes = config.index_buffer_kib * 1024

    def fits(self, num_channels: int, bytes_per_index: int = 2) -> bool:
        return num_channels * bytes_per_index <= self.capacity_bytes // 2
