"""Systolic-array models: an analytical tile/cycle model and a functional MSA.

Two levels of fidelity are provided:

* :func:`gemm_cycles` — the analytical cycle model the end-to-end simulator
  uses.  It tiles a GEMM onto the array, accounts for pipeline fill/drain,
  reduced effective dimensions at higher precisions, per-group rescale bubbles
  (implicit requantization) or per-group re-tiling plus VPU dequantization
  (explicit requantization), and optional datatype-decode overhead.
* :class:`MultiScaleSystolicArray` — a functional, cycle-stepped model of an
  output-stationary PE grid with the 1-bit shifter extension of Figure 6(c).
  It executes small decomposed matrix multiplications exactly (used by tests
  to show the hardware computes the same result as
  :func:`repro.core.requantization.implicit_requantized_matmul`) and reports
  the cycles consumed, including the 1-cycle bubble per group boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence

import numpy as np

from repro.accelerator.config import SystolicConfig
from repro.errors import SimulationError


@dataclass
class GemmCycleBreakdown:
    """Cycle accounting of one GEMM on the array."""

    compute_cycles: int
    fill_drain_cycles: int
    rescale_cycles: int
    decode_cycles: int
    requantization_passes: int

    @property
    def total(self) -> int:
        return self.compute_cycles + self.fill_drain_cycles + self.rescale_cycles + self.decode_cycles


def gemm_cycles(
    m: int,
    k: int,
    n: int,
    config: SystolicConfig,
    operand_bits: int,
    num_groups: int = 1,
    implicit_requantization: bool = True,
    decode_cycles_per_tile: int = 0,
) -> GemmCycleBreakdown:
    """Cycles to execute an (m x k) @ (k x n) GEMM on the systolic array.

    With implicit requantization the reduction axis stays intact and each
    output tile pays ``num_groups - 1`` single-cycle bubbles.  With explicit
    requantization the reduction axis is split per group, so every group pays
    its own pipeline fill plus a dequantize-accumulate pass over the output
    tile (modelled as one cycle per output row of the tile, i.e. the VPU
    walking the tile), which is the slowdown Figure 13 quantifies.
    """
    if min(m, k, n) <= 0:
        raise SimulationError("GEMM dimensions must be positive")
    rows, cols = config.effective_dims(operand_bits)
    tiles_m = ceil(m / rows)
    tiles_n = ceil(n / cols)
    fill_drain = rows + cols

    if implicit_requantization or num_groups <= 1:
        per_tile_compute = k
        per_tile_rescale = max(num_groups - 1, 0)
        per_tile_fill = fill_drain
        requant_passes = 0
    else:
        # Explicit: the k axis is processed as num_groups shorter reductions.
        # The first group pays the full pipeline fill; subsequent groups only
        # re-fill the weight side (cols) because the array must drain each
        # group's partial result before the next one starts.
        group_k = ceil(k / num_groups)
        per_tile_compute = group_k * num_groups
        per_tile_fill = fill_drain + (num_groups - 1) * cols
        per_tile_rescale = 0
        requant_passes = num_groups
    # FP dequantize-accumulate pass over the output tile, one VPU sweep per group.
    per_tile_requant = requant_passes * rows

    tiles = tiles_m * tiles_n
    return GemmCycleBreakdown(
        compute_cycles=tiles * per_tile_compute,
        fill_drain_cycles=tiles * per_tile_fill,
        rescale_cycles=tiles * (per_tile_rescale + per_tile_requant),
        decode_cycles=tiles * decode_cycles_per_tile,
        requantization_passes=tiles * requant_passes,
    )


class ProcessingElement:
    """One output-stationary PE with a 32-bit accumulator and a 1-bit shifter."""

    __slots__ = ("accumulator",)

    _ACC_MAX = 2**31 - 1
    _ACC_MIN = -(2**31)

    def __init__(self) -> None:
        self.accumulator = 0

    def step(self, activation: int, weight: int, rescale: bool, alpha: int = 2) -> None:
        """One cycle: optionally rescale (shift), else multiply-accumulate."""
        if rescale:
            self.accumulator *= alpha
        else:
            self.accumulator += int(activation) * int(weight)
        if not (self._ACC_MIN <= self.accumulator <= self._ACC_MAX):
            raise SimulationError("PE accumulator overflowed its 32-bit register")


class MultiScaleSystolicArray:
    """Functional model of Tender's MSA executing one output tile.

    The model abstracts the input/weight skewing FIFOs (their effect is a
    constant fill/drain latency accounted separately) and steps all PEs in
    lock-step through the channel stream: MAC cycles for each channel of each
    group, plus a one-cycle rescale bubble between groups, exactly as in
    Figure 7(a).
    """

    def __init__(self, rows: int = 64, cols: int = 64) -> None:
        self.rows = rows
        self.cols = cols
        self.cycles = 0
        self.rescale_bubbles = 0

    def run_tile(
        self,
        activation: np.ndarray,
        weight: np.ndarray,
        group_sizes: Sequence[int],
        alpha: int = 2,
    ) -> np.ndarray:
        """Execute one output tile over channel groups ordered largest-scale first.

        ``activation`` is (tile_rows, k) int, ``weight`` is (k, tile_cols) int,
        with channels already laid out in group order (the Index Buffer's job).
        Returns the integer accumulator values of every PE.
        """
        tile_rows, k = activation.shape
        k_w, tile_cols = weight.shape
        if k != k_w:
            raise SimulationError("activation/weight reduction lengths differ")
        if tile_rows > self.rows or tile_cols > self.cols:
            raise SimulationError("tile exceeds the physical array dimensions")
        if sum(group_sizes) != k:
            raise SimulationError("group sizes must sum to the reduction length")

        pes = [[ProcessingElement() for _ in range(tile_cols)] for _ in range(tile_rows)]
        channel = 0
        for group_index, size in enumerate(group_sizes):
            if group_index > 0:
                # Rescale bubble: every PE shifts its accumulator, one cycle.
                for row in range(tile_rows):
                    for col in range(tile_cols):
                        pes[row][col].step(0, 0, rescale=True, alpha=alpha)
                self.cycles += 1
                self.rescale_bubbles += 1
            for _ in range(size):
                for row in range(tile_rows):
                    for col in range(tile_cols):
                        pes[row][col].step(
                            activation[row, channel], weight[channel, col], rescale=False
                        )
                channel += 1
                self.cycles += 1
        # Fill/drain latency of the skewing FIFOs (wavefront propagation).
        self.cycles += self.rows + self.cols
        return np.array(
            [[pes[row][col].accumulator for col in range(tile_cols)] for row in range(tile_rows)],
            dtype=np.int64,
        )
