"""Energy model for the accelerator comparison (Figure 11).

Energy is accounted per workload as:

* dynamic compute energy — MACs executed x per-MAC energy at the scheme's
  precision mix (plus high-precision outlier MACs for mixed-precision designs),
* on-chip SRAM energy — bytes staged through the scratchpad/output buffer,
* off-chip DRAM energy — bytes moved over HBM2,
* FIFO/register energy — proportional to compute cycles (the skewing FIFOs
  toggle every cycle the array is active),
* static energy — accelerator peak power x a static fraction x runtime.

All constants live in :mod:`repro.accelerator.accelerators` and
:mod:`repro.accelerator.config`, so the energy ordering between designs is a
consequence of their precision mix, PE count, and runtime rather than being
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.accelerators import AcceleratorModel
from repro.accelerator.memory import HBMModel, ScratchpadModel

#: Energy per byte toggled through the skewing FIFOs (pJ/byte).
FIFO_PJ_PER_BYTE = 0.1
#: Fraction of peak power drawn statically (leakage + clock tree).
STATIC_POWER_FRACTION = 0.1
#: Peak power of the reference design (Table V), used for the static term.
REFERENCE_PEAK_POWER_W = 1.60


@dataclass
class EnergyBreakdown:
    """Energy in joules, split by component."""

    compute_j: float
    sram_j: float
    dram_j: float
    fifo_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.sram_j + self.dram_j + self.fifo_j + self.static_j


def workload_energy(
    accelerator: AcceleratorModel,
    total_macs: int,
    dram_bytes: int,
    sram_bytes: int,
    runtime_seconds: float,
    compute_cycles: int,
) -> EnergyBreakdown:
    """Energy of one workload on one accelerator."""
    memory_config = accelerator.config.memory
    hbm = HBMModel(memory_config)
    scratchpad = ScratchpadModel(memory_config)

    compute_j = total_macs * accelerator.mac_energy_pj() * 1e-12
    dram_j = hbm.transfer_energy_pj(dram_bytes) * 1e-12
    sram_j = scratchpad.access_energy_pj(sram_bytes) * 1e-12
    array_width = accelerator.config.systolic.rows
    operand_bytes_per_cycle = array_width * 2 * accelerator.config.precision_bits / 8
    fifo_j = compute_cycles * operand_bytes_per_cycle * FIFO_PJ_PER_BYTE * 1e-12
    static_j = REFERENCE_PEAK_POWER_W * STATIC_POWER_FRACTION * runtime_seconds
    return EnergyBreakdown(
        compute_j=compute_j, sram_j=sram_j, dram_j=dram_j, fifo_j=fifo_j, static_j=static_j
    )
