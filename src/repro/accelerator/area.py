"""Area and power model (Table V).

The paper reports component areas and peak power of the Tender accelerator
synthesized at 28 nm / 1 GHz.  This module reproduces Table V from per-unit
area/power constants (per PE, per FPU, per KiB of SRAM), which also lets the
simulator configure the baseline accelerators iso-area by scaling their PE
counts with the relative size of their MAC units, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.accelerator.config import AcceleratorConfig

#: Per-unit constants back-derived from Table V of the paper.
PE_AREA_MM2 = 2.00 / (64 * 64)            # 4-bit MAC + 32-bit accumulator + shifter
PE_POWER_W = 1.09 / (64 * 64)
FPU_AREA_MM2 = 0.08 / 64
FPU_POWER_W = 0.02 / 64
FIFO_AREA_MM2 = 0.05 / 128                # 64 input + 64 weight FIFOs
FIFO_POWER_W = 0.34 / 128
#: SRAM density differs per buffer: the scratchpad is a dense single-port
#: macro, the output buffer is highly banked to match VPU throughput (paper,
#: Section V-C), and the index buffer is a small double-buffered macro.
SCRATCHPAD_AREA_MM2_PER_KIB = 1.15 / 512
SCRATCHPAD_POWER_W_PER_KIB = 0.13 / 512
OUTPUT_BUFFER_AREA_MM2_PER_KIB = 0.47 / 64
OUTPUT_BUFFER_POWER_W_PER_KIB = 0.01 / 64
INDEX_BUFFER_AREA_MM2_PER_KIB = 0.23 / 32
INDEX_BUFFER_POWER_W_PER_KIB = 0.01 / 32


@dataclass
class ComponentArea:
    """Area and power of one accelerator component."""

    component: str
    setup: str
    area_mm2: float
    power_w: float


def tender_area_table(config: AcceleratorConfig | None = None) -> List[ComponentArea]:
    """Reproduce Table V for the (default) Tender configuration."""
    config = config or AcceleratorConfig()
    systolic = config.systolic
    num_pes = systolic.rows * systolic.cols
    num_fifos = systolic.rows * 2
    memory = config.memory
    rows = [
        ComponentArea(
            "Systolic Array", f"{systolic.rows}x{systolic.cols} PEs",
            num_pes * PE_AREA_MM2, num_pes * PE_POWER_W,
        ),
        ComponentArea(
            "Vector Processing Unit", f"{config.vpu.num_fpus} FPUs",
            config.vpu.num_fpus * FPU_AREA_MM2, config.vpu.num_fpus * FPU_POWER_W,
        ),
        ComponentArea(
            "Input/Weight FIFOs", f"{systolic.rows}x2",
            num_fifos * FIFO_AREA_MM2, num_fifos * FIFO_POWER_W,
        ),
        ComponentArea(
            "Index Buffer", f"2x({memory.index_buffer_kib // 2}KB)",
            memory.index_buffer_kib * INDEX_BUFFER_AREA_MM2_PER_KIB,
            memory.index_buffer_kib * INDEX_BUFFER_POWER_W_PER_KIB,
        ),
        ComponentArea(
            "Scratchpad Memory", f"2x({memory.scratchpad_kib // 2}KB)",
            memory.scratchpad_kib * SCRATCHPAD_AREA_MM2_PER_KIB,
            memory.scratchpad_kib * SCRATCHPAD_POWER_W_PER_KIB,
        ),
        ComponentArea(
            "Output Buffer", f"{memory.output_buffer_kib}KB",
            memory.output_buffer_kib * OUTPUT_BUFFER_AREA_MM2_PER_KIB,
            memory.output_buffer_kib * OUTPUT_BUFFER_POWER_W_PER_KIB,
        ),
    ]
    return rows


def total_area_power(rows: List[ComponentArea]) -> Dict[str, float]:
    """Sum a component table into total area (mm^2) and power (W)."""
    return {
        "area_mm2": sum(row.area_mm2 for row in rows),
        "power_w": sum(row.power_w for row in rows),
    }


def iso_area_pe_count(reference_pes: int, reference_pe_area: float, candidate_pe_area: float) -> int:
    """Number of candidate PEs that fit in the reference array's silicon area."""
    if candidate_pe_area <= 0:
        raise ValueError("candidate PE area must be positive")
    return max(int(reference_pes * reference_pe_area / candidate_pe_area), 1)
