"""Hardware configuration dataclasses for the accelerator simulator.

The numbers mirror Section V-A / Table V of the paper: a single 64x64
output-stationary systolic array of 4-bit PEs running at 1 GHz, 2 x 256 KB
scratchpad, a 64-FPU vector processing unit, a 16 KB double-buffered index
buffer, and HBM2 off-chip memory.  Baseline accelerators (ANT, OLAccel, OliVe)
are configured iso-area by scaling their PE counts by the relative area of
their MAC units, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SystolicConfig:
    """Dimensions and precision of a systolic array."""

    rows: int = 64
    cols: int = 64
    #: Native MAC precision of one PE in bits (Tender PEs are 4-bit; INT8 ops
    #: gang 4 PEs together, quartering effective throughput).
    pe_bits: int = 4
    dataflow: str = "output_stationary"
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.dataflow not in ("output_stationary", "weight_stationary"):
            raise ConfigurationError(f"unknown dataflow {self.dataflow!r}")
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("systolic array dimensions must be positive")

    def effective_dims(self, operand_bits: int) -> tuple:
        """Effective (rows, cols) when operands are wider than the PE precision.

        When the model precision is INT8 on 4-bit PEs, four PEs are grouped to
        perform one 8-bit MAC (Section IV-B), halving each array dimension.
        """
        if operand_bits <= self.pe_bits:
            return self.rows, self.cols
        ratio = operand_bits // self.pe_bits
        return max(self.rows // ratio, 1), max(self.cols // ratio, 1)


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip and on-chip memory parameters."""

    #: HBM2 peak bandwidth (GB/s) and achievable efficiency.
    hbm_bandwidth_gbps: float = 307.0
    hbm_efficiency: float = 0.8
    #: On-chip buffer sizes in KiB (Table V).
    scratchpad_kib: int = 512
    output_buffer_kib: int = 64
    index_buffer_kib: int = 32
    #: Energy per byte (pJ/byte), loosely following FG-DRAM / standard numbers.
    hbm_pj_per_byte: float = 7.0
    sram_pj_per_byte: float = 0.3

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained HBM bytes per 1 GHz cycle."""
        return self.hbm_bandwidth_gbps * self.hbm_efficiency / 1.0


@dataclass(frozen=True)
class VPUConfig:
    """Vector processing unit: SIMD FPUs for softmax/LayerNorm/rescaling."""

    num_fpus: int = 64
    ops_per_cycle_per_fpu: int = 1


@dataclass(frozen=True)
class AcceleratorConfig:
    """A complete accelerator: compute array, memory system, and overheads."""

    name: str = "Tender"
    systolic: SystolicConfig = field(default_factory=SystolicConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    vpu: VPUConfig = field(default_factory=VPUConfig)
    #: Bits used for activations/weights of linear layers.
    precision_bits: int = 4
    #: Extra pipeline cycles per tile for datatype decoding (ANT/OliVe decoders).
    decode_cycles_per_tile: int = 0
    #: Multiplier (>= 1) on compute cycles for schemes with complex control or
    #: mixed-precision handling (OLAccel outlier PEs, unaligned access).
    control_overhead: float = 1.0
    #: Energy per MAC (pJ) at the configured precision, from synthesis-style
    #: estimates; used by the energy model.
    mac_energy_pj: float = 0.08
    #: Whether the scheme requires an extra pass over outliers in FP/high precision.
    mixed_precision: bool = False

    def __post_init__(self) -> None:
        if self.precision_bits not in (4, 8, 16):
            raise ConfigurationError("precision_bits must be 4, 8, or 16")
        if self.control_overhead < 1.0:
            raise ConfigurationError("control_overhead must be >= 1.0")
