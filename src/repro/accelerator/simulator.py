"""End-to-end accelerator simulation: workload -> cycles, runtime, energy.

The simulator walks every GEMM of a workload, asks the systolic-array cycle
model how long the compute takes on the given accelerator, asks the HBM model
how long the operand/result transfers take, and overlaps the two (double
buffering).  The per-GEMM maximum of compute and memory time therefore decides
whether a layer is compute- or memory-bound, which is what differentiates the
models in Figures 10/11 (e.g. the attention score/value GEMMs of the larger
Llama models are closer to memory-bound than the wide FC layers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accelerator.accelerators import AcceleratorModel, build_accelerator
from repro.accelerator.energy import EnergyBreakdown, workload_energy
from repro.accelerator.memory import HBMModel
from repro.accelerator.systolic import GemmCycleBreakdown, gemm_cycles
from repro.accelerator.workloads import GemmShape, Workload
from repro.errors import SimulationError


@dataclass
class GemmSimResult:
    """Timing of one GEMM (all of its repeated instances)."""

    name: str
    compute_cycles: int
    memory_cycles: int
    total_cycles: int
    macs: int


@dataclass
class SimulationResult:
    """Timing and energy of a full workload on one accelerator."""

    accelerator: str
    workload: str
    cycles: int
    seconds: float
    energy: EnergyBreakdown
    gemms: List[GemmSimResult] = field(default_factory=list)

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def total_macs(self) -> int:
        return sum(g.macs for g in self.gemms)

    def throughput_tops(self) -> float:
        """Achieved tera-MACs per second."""
        if self.seconds == 0:
            return 0.0
        return self.total_macs / self.seconds / 1e12


class AcceleratorSimulator:
    """Simulates workloads on one accelerator model."""

    def __init__(self, accelerator: AcceleratorModel) -> None:
        self.accelerator = accelerator
        self.hbm = HBMModel(accelerator.config.memory)

    # ------------------------------------------------------------------
    def _gemm_compute_cycles(
        self,
        gemm: GemmShape,
        num_groups: int,
        implicit: bool,
    ) -> GemmCycleBreakdown:
        config = self.accelerator.config
        breakdown = gemm_cycles(
            gemm.m,
            gemm.k,
            gemm.n,
            config.systolic,
            operand_bits=config.precision_bits,
            num_groups=num_groups,
            implicit_requantization=implicit,
            decode_cycles_per_tile=config.decode_cycles_per_tile,
        )
        return breakdown

    def simulate_gemm(
        self,
        gemm: GemmShape,
        num_groups: int = 1,
        implicit: bool = True,
    ) -> GemmSimResult:
        """Simulate all instances of one GEMM shape."""
        config = self.accelerator.config
        breakdown = self._gemm_compute_cycles(gemm, num_groups, implicit)
        # ANT-style designs run a fraction of the work at 8-bit precision,
        # which quarters the 4-bit array throughput (4 PEs per MAC) and moves
        # twice the bytes for that fraction.
        compute = int(
            breakdown.total * config.control_overhead * self.accelerator.compute_multiplier
        )
        compute *= gemm.count
        operand_bits = int(round(self.accelerator.effective_activation_bits))
        memory = self.hbm.transfer_cycles(
            gemm.operand_bytes(operand_bits, operand_bits),
            frequency_ghz=config.systolic.frequency_ghz,
        )
        total = max(compute, memory)
        return GemmSimResult(
            name=gemm.name,
            compute_cycles=compute,
            memory_cycles=memory,
            total_cycles=total,
            macs=gemm.macs,
        )

    def simulate(
        self,
        workload: Workload,
        num_groups: int = 1,
        implicit: bool = True,
    ) -> SimulationResult:
        """Simulate a full workload (all GEMMs, overlapped compute/memory)."""
        if not workload.gemms:
            raise SimulationError("workload has no GEMMs")
        config = self.accelerator.config
        gemm_results = [self.simulate_gemm(g, num_groups, implicit) for g in workload.gemms]
        cycles = sum(g.total_cycles for g in gemm_results)
        seconds = cycles / (config.systolic.frequency_ghz * 1e9)
        operand_bits = int(round(self.accelerator.effective_activation_bits))
        dram_bytes = workload.total_bytes(operand_bits, operand_bits)
        # Every DRAM byte is staged through the scratchpad, and outputs pass
        # through the output buffer once more on their way to the VPU.
        sram_bytes = 2 * dram_bytes
        energy = workload_energy(
            self.accelerator,
            total_macs=workload.total_macs,
            dram_bytes=dram_bytes,
            sram_bytes=sram_bytes,
            runtime_seconds=seconds,
            compute_cycles=sum(g.compute_cycles for g in gemm_results),
        )
        return SimulationResult(
            accelerator=self.accelerator.name,
            workload=workload.name,
            cycles=cycles,
            seconds=seconds,
            energy=energy,
            gemms=gemm_results,
        )


def simulate_on(accelerator_name: str, workload: Workload, num_groups: int = 1, implicit: bool = True) -> SimulationResult:
    """Convenience wrapper: build the named accelerator and simulate."""
    model = build_accelerator(accelerator_name)
    return AcceleratorSimulator(model).simulate(workload, num_groups=num_groups, implicit=implicit)


def speedup_table(
    workloads: Dict[str, Workload],
    accelerator_names: Optional[List[str]] = None,
    baseline: str = "ANT",
    tender_num_groups: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Speedup of each accelerator over ``baseline`` for each workload.

    Tender's decomposition bubbles are included via ``tender_num_groups``;
    the baselines do not decompose channels, so they run with one group.
    """
    names = accelerator_names or ["ANT", "OLAccel", "OliVe", "Tender"]
    table: Dict[str, Dict[str, float]] = {}
    for workload_name, workload in workloads.items():
        results = {}
        for name in names:
            groups = tender_num_groups if name == "Tender" else 1
            results[name] = simulate_on(name, workload, num_groups=groups).seconds
        base_seconds = results[baseline]
        table[workload_name] = {name: base_seconds / seconds for name, seconds in results.items()}
    return table
