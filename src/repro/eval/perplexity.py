"""Perplexity evaluation, the paper's primary model-quality metric."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.datasets import LanguageModelingDataset
from repro.errors import ConfigurationError
from repro.models.inference import TransformerRunner


def sequence_negative_log_likelihood(runner: TransformerRunner, inputs: np.ndarray, targets: np.ndarray) -> float:
    """Total negative log-likelihood of ``targets`` given ``inputs`` (one window)."""
    log_probs = runner.log_probs(inputs[None, :])
    picked = log_probs[0, np.arange(targets.shape[0]), targets]
    return float(-picked.sum())


def evaluate_perplexity(
    runner: TransformerRunner,
    tokens: np.ndarray,
    seq_len: int = 64,
    max_windows: Optional[int] = 8,
) -> float:
    """Perplexity of ``runner`` on a token stream.

    The stream is chopped into non-overlapping windows of ``seq_len`` tokens
    (the paper's protocol on WikiText-2/PTB with 2048-token windows, scaled
    down), and the perplexity is ``exp`` of the mean per-token NLL.
    """
    dataset = LanguageModelingDataset(np.asarray(tokens), seq_len)
    num_windows = len(dataset) if max_windows is None else min(max_windows, len(dataset))
    if num_windows == 0:
        raise ConfigurationError("no evaluation windows available")
    total_nll = 0.0
    total_tokens = 0
    for index in range(num_windows):
        inputs, targets = dataset.window(index)
        total_nll += sequence_negative_log_likelihood(runner, inputs, targets)
        total_tokens += targets.shape[0]
    return float(np.exp(total_nll / total_tokens))
