"""Quantized-GEMM mean-squared-error measurement (Figure 12's MSE axis)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.inference import FloatExecutor, MatmulExecutor


def projection_mse(
    executor: MatmulExecutor,
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    name: str = "probe",
) -> float:
    """MSE between a scheme's projection output and the FP reference."""
    reference = FloatExecutor().project(name, x, weight, bias)
    candidate = executor.project(name, x, weight, bias)
    diff = reference - candidate
    return float(np.mean(diff * diff))


def relative_projection_error(
    executor: MatmulExecutor,
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    name: str = "probe",
) -> float:
    """Relative Frobenius error of a scheme's projection output."""
    reference = FloatExecutor().project(name, x, weight, bias)
    candidate = executor.project(name, x, weight, bias)
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(reference - candidate) / denom)


def mean_projection_mse(
    executor: MatmulExecutor,
    activations: Sequence[np.ndarray],
    weight: np.ndarray,
) -> float:
    """Average projection MSE over several activation samples."""
    errors = [projection_mse(executor, activation, weight) for activation in activations]
    return float(np.mean(errors))
