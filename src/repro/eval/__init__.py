"""Evaluation harness: perplexity, accuracy, MSE, and sweep runner."""

from repro.eval.accuracy import evaluate_classification, evaluate_zeroshot, score_continuation
from repro.eval.mse import mean_projection_mse, projection_mse, relative_projection_error
from repro.eval.perplexity import evaluate_perplexity, sequence_negative_log_likelihood
from repro.eval.runner import EvalSettings, EvaluationRunner, PerplexityResult

__all__ = [
    "evaluate_perplexity",
    "sequence_negative_log_likelihood",
    "evaluate_classification",
    "evaluate_zeroshot",
    "score_continuation",
    "projection_mse",
    "relative_projection_error",
    "mean_projection_mse",
    "EvalSettings",
    "EvaluationRunner",
    "PerplexityResult",
]
