"""Evaluation runner: scheme x model x dataset perplexity/accuracy sweeps.

The experiment modules (one per paper table/figure) are thin wrappers around
this runner: they declare which schemes, models, datasets, and bit widths to
evaluate, and the runner handles checkpoint loading, calibration, and metric
computation with a small in-process cache so repeated combinations are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.registry import SchemeRequest, build_runner
from repro.data.corpus import load_corpus
from repro.data.datasets import calibration_samples
from repro.errors import ConfigurationError
from repro.eval.perplexity import evaluate_perplexity
from repro.models.checkpoints import get_language_model
from repro.models.zoo import get_zoo_entry


@dataclass
class EvalSettings:
    """Shared evaluation parameters (scaled-down analogue of the paper's setup)."""

    seq_len: int = 64
    max_windows: int = 6
    calibration_sequences: int = 8
    calibration_seq_len: int = 64
    vocab_size: int = 512
    corpus_tokens: int = 30_000


@dataclass
class PerplexityResult:
    """One cell of a perplexity table."""

    scheme: str
    model: str
    dataset: str
    bits: Optional[int]
    perplexity: float


class EvaluationRunner:
    """Caches corpora, checkpoints, calibration data, and perplexities."""

    def __init__(self, settings: Optional[EvalSettings] = None) -> None:
        self.settings = settings or EvalSettings()
        self._corpora: Dict[str, tuple] = {}
        self._calibration: Dict[str, List[np.ndarray]] = {}
        self._results: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def corpus_splits(self, dataset: str):
        """(train, eval) token streams of a named dataset, cached."""
        if dataset not in self._corpora:
            corpus = load_corpus(
                dataset, vocab_size=self.settings.vocab_size, num_tokens=self.settings.corpus_tokens
            )
            self._corpora[dataset] = corpus.split()
        return self._corpora[dataset]

    def calibration_data(self, seq_len: Optional[int] = None) -> List[np.ndarray]:
        """Calibration sequences drawn from the pile-like corpus, cached."""
        seq_len = seq_len or self.settings.calibration_seq_len
        key = f"pile:{seq_len}"
        if key not in self._calibration:
            train, _ = self.corpus_splits("pile")
            self._calibration[key] = calibration_samples(
                train, seq_len, self.settings.calibration_sequences
            )
        return self._calibration[key]

    # ------------------------------------------------------------------
    def perplexity(
        self,
        scheme: str,
        model_name: str,
        dataset: str = "wiki",
        bits: int = 8,
        quantize_attention: bool = False,
        seq_len: Optional[int] = None,
        options: Optional[dict] = None,
    ) -> float:
        """Perplexity of one (scheme, model, dataset, bits) combination."""
        seq_len = seq_len or self.settings.seq_len
        cache_key = (
            scheme,
            model_name,
            dataset,
            bits,
            quantize_attention,
            seq_len,
            tuple(sorted((options or {}).items())),
        )
        if cache_key in self._results:
            return self._results[cache_key]

        entry = get_zoo_entry(model_name)
        if seq_len > entry.max_seq_len:
            raise ConfigurationError(
                f"seq_len {seq_len} exceeds {model_name}'s max_seq_len {entry.max_seq_len}"
            )
        weights = get_language_model(model_name)
        _, eval_tokens = self.corpus_splits(dataset)
        request = SchemeRequest(
            weights=weights,
            calibration=self.calibration_data(),
            bits=bits,
            quantize_attention=quantize_attention,
            options=options,
        )
        runner = build_runner(scheme, request)
        value = evaluate_perplexity(
            runner, eval_tokens, seq_len=seq_len, max_windows=self.settings.max_windows
        )
        self._results[cache_key] = value
        return value

    def sweep(
        self,
        schemes: Sequence[str],
        models: Sequence[str],
        datasets: Sequence[str],
        bits: int = 8,
        quantize_attention: bool = False,
        options: Optional[dict] = None,
    ) -> List[PerplexityResult]:
        """Cartesian sweep returning one :class:`PerplexityResult` per cell."""
        results = []
        for scheme in schemes:
            for model in models:
                for dataset in datasets:
                    value = self.perplexity(
                        scheme,
                        model,
                        dataset,
                        bits=bits,
                        quantize_attention=quantize_attention,
                        options=options,
                    )
                    results.append(
                        PerplexityResult(
                            scheme=scheme, model=model, dataset=dataset, bits=bits, perplexity=value
                        )
                    )
        return results
