"""Classification and zero-shot accuracy evaluation (Tables IV and VII)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.classification import ClassificationTask
from repro.data.zeroshot import ZeroShotTask
from repro.models.inference import TransformerRunner


def evaluate_classification(
    runner: TransformerRunner,
    task: ClassificationTask,
    batch_size: int = 32,
    max_examples: Optional[int] = None,
) -> float:
    """Accuracy (%) of a classifier runner on a GLUE-like task's eval split."""
    inputs = task.eval_inputs
    labels = task.eval_labels
    if max_examples is not None:
        inputs = inputs[:max_examples]
        labels = labels[:max_examples]
    correct = 0
    for start in range(0, inputs.shape[0], batch_size):
        batch = inputs[start : start + batch_size]
        logits = runner.classify(batch)
        predictions = np.argmax(logits, axis=-1)
        correct += int((predictions == labels[start : start + batch.shape[0]]).sum())
    return 100.0 * correct / inputs.shape[0]


def score_continuation(runner: TransformerRunner, context: np.ndarray, continuation: np.ndarray) -> float:
    """Log-likelihood of ``continuation`` following ``context``.

    The lm-evaluation-harness scoring rule: run the model on
    ``context + continuation`` and sum the log-probabilities of the
    continuation tokens.
    """
    sequence = np.concatenate([context, continuation])
    inputs = sequence[:-1]
    targets = sequence[1:]
    log_probs = runner.log_probs(inputs[None, :])
    continuation_start = context.shape[0] - 1
    picked = log_probs[0, np.arange(continuation_start, targets.shape[0]), targets[continuation_start:]]
    return float(picked.sum())


def evaluate_zeroshot(
    runner: TransformerRunner,
    task: ZeroShotTask,
    max_examples: Optional[int] = None,
) -> float:
    """Zero-shot accuracy (%): pick the highest-likelihood continuation."""
    examples = task.examples if max_examples is None else task.examples[:max_examples]
    correct = 0
    for example in examples:
        scores = [score_continuation(runner, example.context, choice) for choice in example.choices]
        if int(np.argmax(scores)) == example.answer:
            correct += 1
    return 100.0 * correct / len(examples)
