"""Request-lifecycle tracing: nestable spans, instant events, Perfetto export.

The serving stack's only lens used to be end-of-run counters; this module
adds the *causal record* — what happened, in what order, on which replica,
to which request.  Three pieces:

* :class:`Tracer` — the event sink the serving layers emit into.  Spans
  (:meth:`Tracer.begin` / :meth:`Tracer.end`, or the :meth:`Tracer.span`
  context manager) nest per *track*; :meth:`Tracer.instant` marks a point
  event.  Every event carries a track (one per replica/shard/pool), an
  optional correlation id (``corr``), structured attributes, and a
  timestamp from the injected clock (:mod:`repro.obs.clock`) — a
  :class:`~repro.obs.clock.CountingClock` makes traces deterministic and
  byte-identical across runs, a :class:`~repro.obs.clock.WallClock` makes
  them line up with measured latencies.
* :class:`FlightRecorder` — a bounded ring buffer of the newest events,
  for chaos runs too long to retain in full.  A tracer tees every event
  into its recorder (when attached); on an invariant violation or an
  unrecovered failure the stress harness and
  :class:`~repro.serve.cluster.ReplicaPool` call
  :meth:`FlightRecorder.mark_incident`, snapshotting the tape so the
  failure's immediate past is readable without replaying the run.
* :meth:`Tracer.export_chrome_trace` — Chrome trace-event JSON, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Each
  track becomes one process row (``pid``), spans become ``B``/``E``
  duration events, instants become ``i`` events, and attributes land in
  ``args`` — so a chaos run renders as one timeline per replica with
  every request's lifecycle reconstructable by filtering on its
  correlation id.

Tracing is **strictly opt-in**.  The serving layers hold ``tracer=None``
by default and guard every emit site with ``if tracer is not None`` —
the disabled path constructs no spans, no attribute dicts, and never
reads the clock.  ``tools/check_perf_smoke.py`` measures and gates that
claim; ``repro.gpu.ObservabilityOverheadWorkload`` models it.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["FlightRecorder", "TraceEvent", "Tracer"]

from repro.obs.clock import CountingClock


class TraceEvent:
    """One emitted trace event (a span edge or an instant).

    Attributes
    ----------
    name:
        Event name from the span taxonomy (see ``docs/architecture.md``).
    phase:
        ``"B"`` (span begin), ``"E"`` (span end), or ``"i"`` (instant) —
        the Chrome trace-event phases the exporter writes verbatim.
    ts:
        Timestamp from the tracer's clock (microseconds under a wall
        clock; deterministic ticks under a counting clock).
    track:
        Track name — one per replica/shard/pool, rendered as a process
        row in Perfetto.
    corr:
        Correlation id tying the event to one request across tracks
        (``None`` for batch-level events like decode iterations).
    args:
        Structured attributes (``None`` when the site attached nothing —
        the common case, kept cheap).
    """

    __slots__ = ("name", "phase", "ts", "track", "corr", "args")

    def __init__(
        self,
        name: str,
        phase: str,
        ts,
        track: str,
        corr: Optional[str],
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.name = name
        self.phase = phase
        self.ts = ts
        self.track = track
        self.corr = corr
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = f" corr={self.corr}" if self.corr is not None else ""
        attrs = f" {self.args}" if self.args else ""
        return f"<{self.phase} {self.ts} [{self.track}] {self.name}{detail}{attrs}>"

    def format_line(self) -> str:
        """One human-readable tape line (the FlightRecorder dump format)."""
        corr = f" corr={self.corr}" if self.corr is not None else ""
        args = "" if not self.args else " " + " ".join(
            f"{key}={value}" for key, value in sorted(self.args.items())
        )
        return f"{self.ts:>8} {self.track:<12} {self.phase} {self.name}{corr}{args}"


class FlightRecorder:
    """Bounded ring buffer of the newest trace events, dumped on incident.

    Attach one to a :class:`Tracer` (``Tracer(recorder=...)``) and every
    event is teed into the ring; once ``capacity`` events have been
    recorded the oldest are overwritten, so memory stays bounded no matter
    how long the chaos soak runs.  When something goes wrong the caller
    snapshots the tape with :meth:`mark_incident` — the stress harness does
    this on an :class:`~repro.serve.stress.InvariantViolation` and the
    replica pool on an unrecoverable request — turning shrink-and-replay
    debugging into *read the last N events before the crash*.

    Parameters
    ----------
    capacity : int
        Events retained (newest wins on wraparound).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        #: Total events ever recorded (so wraparound is observable).
        self.recorded = 0
        #: Incident snapshots: ``(reason, [TraceEvent, ...])`` in firing order.
        self.incidents: List[Tuple[str, List[TraceEvent]]] = []

    def record(self, event: TraceEvent) -> None:
        """Append one event, evicting the oldest past capacity."""
        self._ring.append(event)
        self.recorded += 1

    def events(self) -> List[TraceEvent]:
        """The retained tape, oldest first (never more than ``capacity``)."""
        return list(self._ring)

    def mark_incident(self, reason: str) -> List[TraceEvent]:
        """Snapshot the current tape under ``reason`` and return it."""
        tape = self.events()
        self.incidents.append((str(reason), tape))
        return tape

    def dump_lines(self) -> List[str]:
        """The tape formatted one line per event (for logs and assertions)."""
        return [event.format_line() for event in self._ring]


class Tracer:
    """The event sink every instrumented serving layer emits into.

    Parameters
    ----------
    clock : callable, optional
        Zero-argument timestamp source; defaults to a fresh
        :class:`~repro.obs.clock.CountingClock` (deterministic traces).
        Inject :class:`~repro.obs.clock.WallClock` for benchmarks.
    recorder : FlightRecorder, optional
        Ring buffer every event is teed into (see :class:`FlightRecorder`).
    retain : bool
        Keep the full event list for export (default).  ``False`` drops
        events after the recorder tee — for unbounded soaks where only
        the flight tape matters.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("decode_step", "replica0", batch=3):
    ...     tracer.instant("request.first_token", "replica0", corr="req7")
    >>> tracer.export_chrome_trace("trace.json")
    """

    def __init__(
        self,
        clock=None,
        recorder: Optional[FlightRecorder] = None,
        retain: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else CountingClock()
        self.recorder = recorder
        self.retain = bool(retain)
        #: Every retained event, in emission order.
        self.events: List[TraceEvent] = []
        #: Open-span name stacks, per track (for ``end`` bookkeeping).
        self._stacks: Dict[str, List[str]] = {}
        #: Track name -> Chrome pid, in first-emission order.
        self._track_ids: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        name: str,
        phase: str,
        track: str,
        corr: Optional[str],
        args: Optional[Dict[str, Any]],
    ) -> TraceEvent:
        if track not in self._track_ids:
            self._track_ids[track] = len(self._track_ids)
        event = TraceEvent(name, phase, self.clock(), track, corr, args)
        if self.retain:
            self.events.append(event)
        if self.recorder is not None:
            self.recorder.record(event)
        return event

    def begin(self, name: str, track: str, corr: Optional[str] = None, **attrs) -> None:
        """Open a span on ``track`` (spans nest per track; close with :meth:`end`)."""
        self._stacks.setdefault(track, []).append(name)
        self._emit(name, "B", track, corr, attrs or None)

    def end(self, track: str) -> None:
        """Close the innermost open span on ``track``.

        Raises
        ------
        ValueError
            If the track has no open span (unbalanced instrumentation is a
            bug worth failing loudly on — a silently dropped ``E`` makes
            every later span on the track render wrong).
        """
        stack = self._stacks.get(track)
        if not stack:
            raise ValueError(f"no open span on track {track!r}")
        name = stack.pop()
        self._emit(name, "E", track, None, None)

    @contextmanager
    def span(self, name: str, track: str, corr: Optional[str] = None, **attrs) -> Iterator[None]:
        """Context-manager convenience around :meth:`begin` / :meth:`end`."""
        self.begin(name, track, corr, **attrs)
        try:
            yield
        finally:
            self.end(track)

    def instant(self, name: str, track: str, corr: Optional[str] = None, **attrs) -> None:
        """Emit a point event on ``track``."""
        self._emit(name, "i", track, corr, attrs or None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def events_named(self, name: str) -> List[TraceEvent]:
        """Retained events with exactly this name, in emission order."""
        return [event for event in self.events if event.name == name]

    def events_for(self, corr: str) -> List[TraceEvent]:
        """Retained events carrying this correlation id, in emission order."""
        return [event for event in self.events if event.corr == corr]

    def tracks(self) -> List[str]:
        """Track names in first-emission order."""
        return list(self._track_ids)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """The trace-event dicts :meth:`export_chrome_trace` serializes.

        One ``process_name`` metadata event per track (tracks render as
        process rows, in first-emission order), then every retained event
        in emission order.  Correlation ids land in ``args["corr"]`` so
        Perfetto's ``args`` search finds a request's whole lifecycle.
        """
        rows: List[Dict[str, Any]] = []
        for track, pid in self._track_ids.items():
            rows.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        for event in self.events:
            row: Dict[str, Any] = {
                "name": event.name,
                "ph": event.phase,
                "ts": event.ts,
                "pid": self._track_ids[event.track],
                "tid": 0,
            }
            if event.phase == "i":
                row["s"] = "t"
            args: Dict[str, Any] = {}
            if event.args:
                args.update(event.args)
            if event.corr is not None:
                args["corr"] = event.corr
            if args:
                row["args"] = args
            rows.append(row)
        return rows

    def export_chrome_trace(self, path) -> int:
        """Write the trace as Chrome trace-event JSON; return the event count.

        The output loads directly in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Serialization is fully deterministic
        (sorted keys, fixed separators), so two runs under the same seed
        and :class:`~repro.obs.clock.CountingClock` produce byte-identical
        files — the property the trace-determinism tests pin.
        """
        rows = self.chrome_trace_events()
        payload = {"displayTimeUnit": "ms", "traceEvents": rows}
        with open(path, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        return len(rows)
