"""Serving observability: request-lifecycle tracing, metrics, Perfetto export.

``repro.obs`` is the zero-dependency lens into the serving simulator.
:class:`Tracer` records nestable spans and instant events with structured
attributes, timestamped by an injectable clock (:class:`CountingClock`
for byte-identical test traces, :class:`WallClock` for benchmarks), and
exports Chrome trace-event JSON loadable in Perfetto.
:class:`FlightRecorder` keeps a bounded ring of the newest events for
incident dumps.  :class:`MetricsRegistry` aggregates counters, gauges,
and mergeable fixed-bucket histograms that the serving stats objects
publish into.

Tracing is opt-in everywhere: serving layers default to ``tracer=None``
and skip all trace work — including attribute-dict construction — when
disabled, a property measured and gated by ``tools/check_perf_smoke.py``.
"""

from repro.obs.clock import CountingClock, WallClock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import FlightRecorder, TraceEvent, Tracer

__all__ = [
    "CountingClock",
    "WallClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "TraceEvent",
    "Tracer",
]
