"""Injectable trace clocks: deterministic ticks for tests, wall time for benches.

Every :class:`~repro.obs.trace.Tracer` timestamps its events by calling a
*clock* — any zero-argument callable returning a number.  Which clock is
injected decides what a trace means:

* :class:`CountingClock` — a deterministic counter that advances by a fixed
  ``step`` on every call.  Two identical runs produce byte-identical traces
  (the tier-1 determinism gate in ``tests/serve/test_observability.py``
  depends on this), and span durations count *trace events enclosed*, not
  seconds — a useful causal measure in a simulator whose scheduler clock is
  already tick-based.
* :class:`WallClock` — ``time.perf_counter_ns`` scaled to microseconds, the
  unit Chrome trace-event timestamps use.  Benchmarks inject it so exported
  spans line up with measured latencies in Perfetto.

Clocks are deliberately *not* read when tracing is disabled: the serving
layers guard every trace site with ``if tracer is not None``, so a disabled
run never pays even the counter increment.
"""

from __future__ import annotations

import time

__all__ = ["CountingClock", "WallClock"]


class CountingClock:
    """A deterministic clock: every read returns ``start + reads_so_far * step``.

    Parameters
    ----------
    start : int
        Timestamp of the first read.
    step : int
        Increment applied after every read (must be >= 1 so successive
        events never share a timestamp — Chrome's renderer collapses
        zero-length spans).
    """

    __slots__ = ("_now", "_start", "_step")

    def __init__(self, start: int = 0, step: int = 1) -> None:
        if step < 1:
            raise ValueError("step must be >= 1")
        self._now = int(start)
        self._start = int(start)
        self._step = int(step)

    def __call__(self) -> int:
        now = self._now
        self._now += self._step
        return now

    @property
    def reads(self) -> int:
        """How many timestamps have been handed out so far."""
        return (self._now - self._start) // self._step


class WallClock:
    """Monotonic wall time in microseconds (Chrome trace-event units)."""

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.perf_counter_ns()

    def __call__(self) -> float:
        return (time.perf_counter_ns() - self._origin) / 1000.0
