"""A zero-dependency metrics registry: counters, gauges, fixed-bucket histograms.

The serving stack already keeps rich end-of-run stats objects
(``SchedulerStats``, ``ClusterStats``, ``CollectiveStats``), but each is a
private dataclass with its own field names; nothing aggregates them under
one namespace or diffs them over time.  :class:`MetricsRegistry` is that
namespace: the stats objects *publish* into it (``stats.publish(registry,
prefix)``), benchmarks snapshot it between phases and read deltas, and
:meth:`MetricsRegistry.render_text` dumps the whole thing in a
Prometheus-style exposition format for logs.

Three instrument kinds, all mergeable (so per-replica registries can fold
into a pool registry):

* :class:`Counter` — monotone accumulator (``inc``).
* :class:`Gauge` — last-write-wins level (``set``).
* :class:`Histogram` — fixed bucket bounds chosen at construction;
  ``observe`` bins a sample, and two histograms with identical bounds
  merge bucket-wise.  Fixed buckets keep merges exact — no rebinning, no
  approximation — at the cost of choosing bounds up front.

Everything here is plain Python on purpose: the registry rides inside the
simulator's hot loops, so instruments are ``__slots__`` classes with O(1)
updates and no locks (the simulator is single-threaded by design).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0 — counters never move backwards)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A last-write-wins level (queue depth, free blocks, open breakers)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        # Merging levels from different sources: sum is the only composition
        # that makes "free blocks across replicas" style gauges meaningful.
        self.value += other.value


class Histogram:
    """Fixed-bucket histogram; exact bucket-wise merges, O(log B) observe.

    Parameters
    ----------
    name : str
        Metric name.
    buckets : sequence of numbers
        Strictly increasing upper bounds.  A sample lands in the first
        bucket whose bound is >= the sample; larger samples land in the
        implicit overflow bucket (rendered as ``+Inf``).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, buckets: Sequence[Number]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        # counts[i] pairs with bounds[i]; counts[-1] is the +Inf overflow.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        """Bin one sample."""
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.total += 1
        self.sum += float(value)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bounds must match exactly)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ ({other.bounds} vs {self.bounds})"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the bound of the bucket holding rank q.

        Returns the upper bound of the first bucket whose cumulative count
        reaches ``ceil(q * total)`` (the overflow bucket reports ``inf``);
        0.0 on an empty histogram.  This is deliberately coarse — exact
        percentiles live with the raw samples in ``SchedulerStats``; the
        histogram answers fleet-level questions after merging.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, int(q * self.total + 0.999999))
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= rank:
                return bound
        return float("inf")


class MetricsRegistry:
    """One namespace of counters/gauges/histograms with snapshot/delta/merge.

    Instruments are created on first touch (``counter(name)`` etc.) and
    identified by name; re-requesting a name returns the same instrument
    (histograms additionally require matching bounds).  ``snapshot()``
    freezes every scalar value; ``delta(before)`` diffs the live registry
    against a snapshot — the idiom benchmarks use to attribute counts to
    one phase of a run.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_fresh(name)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_fresh(name)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, buckets: Optional[Sequence[Number]] = None) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            if buckets is None:
                raise ValueError(f"histogram {name!r} does not exist; pass bucket bounds to create it")
            self._check_fresh(name)
            inst = self._histograms[name] = Histogram(name, buckets)
        elif buckets is not None and tuple(float(b) for b in buckets) != inst.bounds:
            raise ValueError(f"histogram {name!r} already exists with different bucket bounds")
        return inst

    def _check_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric name {name!r} already registered with a different kind")

    # ------------------------------------------------------------------
    # Snapshot / delta / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Number]:
        """Freeze every scalar: counters and gauges by name, histograms as
        ``name_count`` / ``name_sum`` plus one ``name_bucket_le_<bound>``
        per bucket (``inf`` for overflow)."""
        snap: Dict[str, Number] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, hist in self._histograms.items():
            snap[f"{name}_count"] = hist.total
            snap[f"{name}_sum"] = hist.sum
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                snap[f"{name}_bucket_le_{bound:g}"] = cumulative
            snap[f"{name}_bucket_le_inf"] = hist.total
        return snap

    def delta(self, before: Dict[str, Number]) -> Dict[str, Number]:
        """Diff the live registry against an earlier :meth:`snapshot`.

        Keys absent from ``before`` diff against 0 (instruments created
        mid-phase still show up); keys absent from the live registry are
        dropped (they described instruments that no longer exist).
        """
        now = self.snapshot()
        return {key: value - before.get(key, 0) for key, value in now.items()}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, instrument-wise (fleet aggregation)."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in other._histograms.items():
            self.histogram(name, hist.bounds).merge(hist)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus-style text dump, deterministically ordered by name."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {self._gauges[name].value}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
            lines.append(f"{name}_sum {hist.sum}")
            lines.append(f"{name}_count {hist.total}")
        return "\n".join(lines) + ("\n" if lines else "")
