"""Configuration of the Tender quantization algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenderConfig:
    """All knobs of Tender's decomposed quantization (Section III).

    Attributes
    ----------
    bits:
        Integer bit width for both activations and weights (8 or 4 in the
        paper; any width from 2 to 8 is supported, mirroring the paper's note
        that Tender extends to 5/6/7-bit integers).
    num_groups:
        Number of channel groups G used by the power-of-alpha classification.
    alpha:
        Ratio between the scale factors of neighbouring groups.  The paper
        uses 2 so that runtime requantization is a 1-bit shift; other integer
        values are supported through the generalized rescale path.
    row_chunk_size:
        Number of token rows that share calibration parameters (the paper uses
        256 for full-size models; the default here is scaled down with the
        models).
    quantize_attention:
        Whether activation-activation matmuls (X_Q X_K^T and X_S X_V) are also
        quantized.  Table II/III call the enabled variant "Tender (all)".
    subtract_bias:
        Whether the per-channel bias (midpoint) is subtracted before
        quantization.  Disabling it is an ablation.
    per_head:
        Whether activation-activation matmuls are quantized per attention head
        (the paper's per-head activation quantization optimization).
    """

    bits: int = 8
    num_groups: int = 8
    alpha: int = 2
    row_chunk_size: int = 64
    quantize_attention: bool = False
    subtract_bias: bool = True
    per_head: bool = True

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 8:
            raise ConfigurationError(f"bits must be in [2, 8], got {self.bits}")
        if self.num_groups < 1:
            raise ConfigurationError(f"num_groups must be >= 1, got {self.num_groups}")
        if self.alpha < 2:
            raise ConfigurationError(f"alpha must be an integer >= 2, got {self.alpha}")
        if self.row_chunk_size < 1:
            raise ConfigurationError("row_chunk_size must be >= 1")
