"""Runtime requantization: accumulating decomposed partial sums.

The two mathematically equivalent execution models from Section II-D:

* **Explicit requantization** (Equation 1) — each group's partial product is
  dequantized with its own scale factor and accumulated in floating point.
  This is how a GPU implementation has to do it, and it is what causes the
  slowdown measured in Figures 12 and 13.

* **Implicit (runtime) requantization** (Equation 2) — groups are processed in
  descending scale order; between groups the *integer* accumulator is
  multiplied by the rescale factor ``s_i / s_{i+1}`` (a 1-bit left shift when
  alpha = 2), and the final accumulator is dequantized once with the smallest
  scale.  This is what Tender's Multi-Scale Systolic Array does with its
  per-PE shifter.

Both are implemented here over the same quantized operands so tests can check
bit-exact equivalence, and so the executor can expose either path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.decomposition import ChannelDecomposition
from repro.errors import QuantizationError
from repro.quant.gemm import int_matmul
from repro.quant.granularity import integer_range

#: Hardware accumulator width (Section IV-B).
_ACC_MAX = 2**31 - 1
_ACC_MIN = -(2**31)

#: Shared overflow diagnostics — the fast kernels (:mod:`repro.core.kernels`)
#: must raise byte-for-byte the same errors as the reference paths here.
IMPLICIT_OVERFLOW_MESSAGE = (
    "implicit requantization overflowed the 32-bit accumulator; "
    "reduce the number of groups or the reduction length"
)
EXPLICIT_OVERFLOW_MESSAGE = (
    "integer matmul overflowed the 32-bit accumulator; reduce the reduction "
    "length or the operand bit widths"
)


def implicit_overflow_bound(decomposition: ChannelDecomposition) -> float:
    """Analytic worst-case magnitude of the implicit accumulator.

    Channel ``c`` contributes at most ``qmax^2`` per multiply and is rescaled
    by ``alpha`` once per remaining group boundary, so every accumulator
    state — intermediate or final — is bounded by
    ``qmax^2 * sum_c alpha^(G-1-g_c)`` (a channel's rescale weight only grows
    with later groups).  When this bound fits the 32-bit accumulator, no
    overflow is possible and the per-group full-array scans can be skipped
    entirely; the bound depends only on calibration metadata, never on the
    activation values.
    """
    qmax = integer_range(decomposition.bits)
    group_weights = np.power(
        float(decomposition.alpha),
        np.arange(decomposition.num_groups - 1, -1, -1, dtype=np.float64),
    )
    weighted_channels = float((decomposition.group_sizes * group_weights).sum())
    return float(qmax) ** 2 * weighted_channels


def explicit_overflow_bound(decomposition: ChannelDecomposition) -> float:
    """Analytic worst-case magnitude of one group's integer partial product.

    Each group reduces at most ``max_g size_g`` channels of ``qmax``-bounded
    operands, so no per-group product can exceed ``qmax^2 * max_g size_g``.
    """
    qmax = integer_range(decomposition.bits)
    largest_group = int(decomposition.group_sizes.max(initial=0))
    return float(qmax) ** 2 * largest_group


def _group_slices(decomposition: ChannelDecomposition):
    """Yield ``(group_index, channel_indices)`` in descending-scale order."""
    order = decomposition.channel_order
    start = 0
    for group, size in enumerate(decomposition.group_sizes):
        channels = order[start : start + size]
        start += size
        yield group, channels


def explicit_requantized_matmul(
    quantized_activation: np.ndarray,
    decomposition: ChannelDecomposition,
    quantized_weight: np.ndarray,
    weight_scale: np.ndarray,
) -> np.ndarray:
    """Equation 1: dequantize and accumulate each group's partial sum in FP.

    ``quantized_activation`` is (rows, channels) int, ``quantized_weight`` is
    (channels, out) int, ``weight_scale`` broadcasts over the output columns.
    """
    rows = quantized_activation.shape[0]
    out_features = quantized_weight.shape[1]
    # Scan a group's partial product only when its analytic bound shows the
    # 32-bit accumulator could actually overflow (results are unaffected —
    # the scan exists purely to raise).
    scan_overflow = explicit_overflow_bound(decomposition) > _ACC_MAX
    result = np.zeros((rows, out_features), dtype=np.float64)
    for group, channels in _group_slices(decomposition):
        if channels.size == 0:
            continue
        partial = int_matmul(
            quantized_activation[:, channels],
            quantized_weight[channels, :],
            check_overflow=scan_overflow,
        )
        result += partial.astype(np.float64) * decomposition.group_scales[group] * weight_scale
    return result


def implicit_requantized_matmul(
    quantized_activation: np.ndarray,
    decomposition: ChannelDecomposition,
    quantized_weight: np.ndarray,
    weight_scale: np.ndarray,
    check_overflow: bool = True,
) -> np.ndarray:
    """Equation 2: integer accumulation with per-group rescaling.

    The accumulator is multiplied by ``alpha`` at every group boundary
    (including boundaries of empty groups, which keeps the final scale factor
    equal to the last group's scale), then the next group's integer partial
    product is added.  Only one floating-point rescale happens, at the end.
    """
    rows = quantized_activation.shape[0]
    out_features = quantized_weight.shape[1]
    accumulator = np.zeros((rows, out_features), dtype=np.int64)
    alpha = decomposition.alpha
    # The per-group scans only exist to raise on overflow; skip them all when
    # the analytic bound proves no accumulator state can leave the 32-bit
    # range (the common case for LLM-shaped reductions).
    if check_overflow and implicit_overflow_bound(decomposition) <= _ACC_MAX:
        check_overflow = False
    for group, channels in _group_slices(decomposition):
        if group > 0:
            accumulator = accumulator * alpha
        if channels.size:
            accumulator = accumulator + int_matmul(
                quantized_activation[:, channels], quantized_weight[channels, :], check_overflow=False
            )
        if check_overflow and (
            accumulator.max(initial=0) > _ACC_MAX or accumulator.min(initial=0) < _ACC_MIN
        ):
            raise QuantizationError(IMPLICIT_OVERFLOW_MESSAGE)
    final_scale = decomposition.group_scales[-1]
    return accumulator.astype(np.float64) * final_scale * weight_scale


def requantized_matmul(
    quantized_activation: np.ndarray,
    decomposition: ChannelDecomposition,
    quantized_weight: np.ndarray,
    weight_scale: np.ndarray,
    implicit: bool = True,
    check_overflow: bool = True,
) -> np.ndarray:
    """Dispatch to the implicit or explicit execution model."""
    if implicit:
        return implicit_requantized_matmul(
            quantized_activation, decomposition, quantized_weight, weight_scale, check_overflow
        )
    return explicit_requantized_matmul(
        quantized_activation, decomposition, quantized_weight, weight_scale
    )


def rescale_operation_count(decomposition: ChannelDecomposition) -> int:
    """Number of rescale (shift) operations the hardware performs per output tile.

    One per group boundary, i.e. ``G - 1`` — this is what makes the overhead of
    the decomposition independent of the tensor size (Section VI-F).
    """
    return max(decomposition.num_groups - 1, 0)
