"""Tender: decomposed quantization with runtime requantization (the paper's core)."""

from repro.core.config import TenderConfig
from repro.core.decomposition import (
    ChannelDecomposition,
    compute_channel_bias,
    decompose_channels,
    quantize_decomposed,
    validate_decomposition,
)
from repro.core.requantization import (
    explicit_overflow_bound,
    explicit_requantized_matmul,
    implicit_overflow_bound,
    implicit_requantized_matmul,
    requantized_matmul,
    rescale_operation_count,
)
from repro.core.calibration import ChunkParams, TenderSiteParams, calibrate_tender
from repro.core.kernels import PackedSiteParams, pack_site_params
from repro.core.executor import TenderExecutor, TenderQuantizer

__all__ = [
    "TenderConfig",
    "ChannelDecomposition",
    "compute_channel_bias",
    "decompose_channels",
    "quantize_decomposed",
    "validate_decomposition",
    "explicit_overflow_bound",
    "explicit_requantized_matmul",
    "implicit_overflow_bound",
    "implicit_requantized_matmul",
    "requantized_matmul",
    "rescale_operation_count",
    "PackedSiteParams",
    "pack_site_params",
    "TenderSiteParams",
    "ChunkParams",
    "calibrate_tender",
    "TenderExecutor",
    "TenderQuantizer",
]
