"""Tender: decomposed quantization with runtime requantization (the paper's core)."""

from repro.core.config import TenderConfig
from repro.core.decomposition import (
    ChannelDecomposition,
    compute_channel_bias,
    decompose_channels,
    quantize_decomposed,
    validate_decomposition,
)
from repro.core.requantization import (
    explicit_requantized_matmul,
    implicit_requantized_matmul,
    requantized_matmul,
    rescale_operation_count,
)
from repro.core.calibration import ChunkParams, TenderSiteParams, calibrate_tender
from repro.core.executor import TenderExecutor, TenderQuantizer

__all__ = [
    "TenderConfig",
    "ChannelDecomposition",
    "compute_channel_bias",
    "decompose_channels",
    "quantize_decomposed",
    "validate_decomposition",
    "explicit_requantized_matmul",
    "implicit_requantized_matmul",
    "requantized_matmul",
    "rescale_operation_count",
    "TenderSiteParams",
    "ChunkParams",
    "calibrate_tender",
    "TenderExecutor",
    "TenderQuantizer",
]
