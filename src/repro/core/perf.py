"""Shared perf workload for the kernel benchmark and the tier-1 perf gate.

``benchmarks/bench_executor_kernels.py`` (the perf-trajectory benchmark) and
``tools/check_perf_smoke.py`` (the tier-1 regression gate) must measure the
*same* decode workload, or a change to one silently decouples the gate from
the numbers it is supposed to protect.  Both build their fixture and timing
loop from here.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.calibration import TenderSiteParams, _ChunkedStatistics
from repro.core.config import TenderConfig

#: The canonical decode-projection workload shape: batched decode rows at
#: positions scattered across several calibrated row chunks — the shape the
#: continuous-batching scheduler feeds ``TenderExecutor.project`` every step.
PROJECTION_CHANNELS = 96
PROJECTION_OUT = 128
PROJECTION_BATCH = 16
CALIBRATED_ROWS = 256


def synthetic_projection_site(config: TenderConfig, seed: int = 11) -> Dict[str, TenderSiteParams]:
    """One calibrated matmul site from synthetic outlier-bearing statistics.

    No model training or checkpoint cache involved: channel 5 carries a 40x
    outlier and channel 17 a 12x outlier, giving the multi-group
    decomposition the fast kernels are built around.
    """
    rng = np.random.default_rng(seed)
    calibration = rng.normal(size=(CALIBRATED_ROWS, PROJECTION_CHANNELS))
    calibration[:, 5] *= 40.0
    calibration[:, 17] *= 12.0
    statistics = _ChunkedStatistics(config.row_chunk_size)
    statistics.update(calibration)
    return {"site": statistics.finalize("site", config)}


def decode_projection_operands(seed: int = 29) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(x, positions, weight)`` for one scattered-position decode batch."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(PROJECTION_CHANNELS, PROJECTION_OUT))
    x = rng.normal(size=(PROJECTION_BATCH, PROJECTION_CHANNELS))
    positions = rng.integers(0, CALIBRATED_ROWS, size=PROJECTION_BATCH)
    return x, positions, weight


def best_of(function: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``function()`` over ``repeats`` runs (seconds).

    One warm-up call runs first so lazy caches (packed tables, permuted
    weights) are excluded from the measurement.
    """
    function()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best
