"""Channel decomposition: Tender's "power of alpha" classification rule.

Section III-B: after subtracting the per-channel bias, Tender computes the
absolute maximum of each channel (CMax) and of the whole tensor (TMax), then
assigns channel ``i`` to group ``g`` such that

    TMax / alpha^g  <  CMax_i  <=  TMax / alpha^(g-1),      g = 1 .. G

(channels whose CMax falls below ``TMax / alpha^G`` go to the last group).
Every channel in group ``g`` is quantized with the same scale factor
``TMax / (alpha^(g-1) * (2^(b-1) - 1))``, so the scale factors of neighbouring
groups are exactly ``alpha`` apart — which is what makes requantization
between groups an integer multiply (a 1-bit shift when alpha = 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.granularity import integer_range


@dataclass
class ChannelDecomposition:
    """The result of classifying channels into scale groups.

    Attributes
    ----------
    group_of_channel:
        For each channel, its group index in ``[0, num_groups)``; group 0 has
        the *largest* scale factor (the outlier group) and is computed first.
    group_scales:
        Scale factor of each group, descending by a factor of ``alpha``.
    channel_order:
        Channel indices sorted by group (stable within a group).  This is the
        content of the hardware's Index Buffer: the order in which channels
        are streamed into the systolic array.
    group_sizes:
        Number of channels in each group (possibly zero).
    tensor_absmax:
        TMax used to derive the thresholds.
    alpha, bits:
        The classification parameters, recorded for metadata consumers.
    """

    group_of_channel: np.ndarray
    group_scales: np.ndarray
    channel_order: np.ndarray
    group_sizes: np.ndarray
    tensor_absmax: float
    alpha: int
    bits: int

    @property
    def num_groups(self) -> int:
        return int(self.group_scales.shape[0])

    @property
    def num_channels(self) -> int:
        return int(self.group_of_channel.shape[0])

    def group_boundaries(self) -> np.ndarray:
        """Cumulative channel counts marking where rescale bubbles occur.

        In the ordered channel stream, a rescale happens after each of the
        first ``G - 1`` groups (the accelerator inserts a 1-cycle bubble per
        boundary, Section IV-B).  Boundaries for empty groups are still
        reported because the accumulated value must still be rescaled to keep
        the final scale factor correct.
        """
        return np.cumsum(self.group_sizes)[:-1]

    def channel_scales(self) -> np.ndarray:
        """Per-channel scale factor implied by the group assignment."""
        return self.group_scales[self.group_of_channel]


def compute_channel_bias(channel_max: np.ndarray, channel_min: np.ndarray) -> np.ndarray:
    """Per-channel bias: the midpoint ``(max + min) / 2`` (Section III-B, step 1).

    Subtracting it makes each channel symmetric around zero, so symmetric
    quantization uses its full integer range.
    """
    return (np.asarray(channel_max, dtype=np.float64) + np.asarray(channel_min, dtype=np.float64)) / 2.0


def decompose_channels(
    channel_absmax: np.ndarray,
    num_groups: int,
    bits: int,
    alpha: int = 2,
) -> ChannelDecomposition:
    """Classify channels into ``num_groups`` power-of-``alpha`` groups.

    ``channel_absmax`` is CMax *after* bias subtraction.  The returned
    decomposition is deterministic and independent of the channel order.
    """
    channel_absmax = np.asarray(channel_absmax, dtype=np.float64)
    if channel_absmax.ndim != 1:
        raise QuantizationError("channel_absmax must be one-dimensional")
    if num_groups < 1:
        raise QuantizationError("num_groups must be >= 1")
    if np.any(channel_absmax < 0):
        raise QuantizationError("channel_absmax must be non-negative")

    qmax = integer_range(bits)
    tensor_absmax = float(channel_absmax.max()) if channel_absmax.size else 0.0
    if tensor_absmax == 0.0:
        # Degenerate all-zero tensor: a single group with a tiny scale.
        group_of_channel = np.full(channel_absmax.shape, num_groups - 1, dtype=np.int64)
        if alpha > 0:
            group_scales = 1e-12 / np.power(alpha, np.arange(num_groups), dtype=np.float64)
        else:
            group_scales = np.full(num_groups, 1e-12)
        channel_order = np.arange(channel_absmax.size, dtype=np.int64)
        group_sizes = np.bincount(group_of_channel, minlength=num_groups)
        return ChannelDecomposition(
            group_of_channel=group_of_channel,
            group_scales=group_scales,
            channel_order=channel_order,
            group_sizes=group_sizes,
            tensor_absmax=tensor_absmax,
            alpha=alpha,
            bits=bits,
        )

    # Thresholds: group g (1-indexed) covers (TMax/alpha^g, TMax/alpha^(g-1)].
    # Compute the 1-indexed group by counting how many thresholds exceed CMax,
    # then clamp to G (small channels all land in the last, finest group).
    with np.errstate(divide="ignore", over="ignore"):
        ratios = np.where(channel_absmax > 0.0, tensor_absmax / channel_absmax, np.inf)
    group_float = np.floor(np.log(ratios) / np.log(alpha))
    group_index = np.clip(group_float, 0, num_groups - 1).astype(np.int64)
    # Handle the boundary CMax == TMax/alpha^(g-1) exactly: log gives an
    # integer; floor keeps it in group g (correct since the interval is
    # half-open on the left and closed on the right).

    # alpha^g * qmax is an exact small integer in float64, so this vectorized
    # division is bit-identical to the per-group Python construction.
    group_scales = tensor_absmax / (np.power(alpha, np.arange(num_groups), dtype=np.float64) * qmax)
    channel_order = np.argsort(group_index, kind="stable").astype(np.int64)
    group_sizes = np.bincount(group_index, minlength=num_groups)
    return ChannelDecomposition(
        group_of_channel=group_index,
        group_scales=group_scales,
        channel_order=channel_order,
        group_sizes=group_sizes,
        tensor_absmax=tensor_absmax,
        alpha=alpha,
        bits=bits,
    )


def validate_decomposition(decomposition: ChannelDecomposition, channel_absmax: np.ndarray) -> None:
    """Check the classification invariant of Equation 3 (used by tests).

    Every channel's CMax must not exceed the upper threshold of its group, and
    for groups other than the last it must exceed the lower threshold.
    """
    channel_absmax = np.asarray(channel_absmax, dtype=np.float64)
    alpha = decomposition.alpha
    tmax = decomposition.tensor_absmax
    for channel, group in enumerate(decomposition.group_of_channel):
        upper = tmax / (alpha**group)
        lower = tmax / (alpha ** (group + 1))
        cmax = channel_absmax[channel]
        if cmax > upper * (1 + 1e-9):
            raise QuantizationError(
                f"channel {channel} with CMax {cmax} exceeds its group upper bound {upper}"
            )
        if group < decomposition.num_groups - 1 and cmax <= lower * (1 - 1e-9) and cmax > 0:
            raise QuantizationError(
                f"channel {channel} with CMax {cmax} should be in a finer group (lower bound {lower})"
            )


def quantize_decomposed(
    values: np.ndarray,
    decomposition: ChannelDecomposition,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize a (rows, channels) activation with per-group scale factors.

    Returns ``(quantized, per_channel_scale)`` where ``quantized`` is int32 and
    clipping follows the symmetric range of the configured bit width.
    """
    qmax = integer_range(decomposition.bits)
    scales = decomposition.channel_scales()
    quantized = np.round(values / scales)
    quantized = np.clip(quantized, -qmax, qmax).astype(np.int32)
    return quantized, scales
