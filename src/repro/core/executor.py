"""The Tender matmul executor: decomposed quantization at every matmul site.

This is the software realisation of Figure 4's computation flow:

1. subtract the calibrated per-channel bias,
2. quantize each channel with its group's scale factor (static, calibrated
   decomposition; groups are powers of ``alpha`` apart),
3. multiply with the per-column-quantized weight using either implicit
   (shift-accumulate, Equation 2) or explicit (per-group FP accumulate,
   Equation 1) requantization,
4. add back the bias contribution ``bias @ W`` and the layer bias.

Activation-activation matmuls (``X_Q X_K^T`` and ``X_S X_V``) are quantized
only when the configuration enables them ("Tender (all)" in Tables II/III and
all BERT results in Table IV); they use dynamic per-head decomposition since
their operands are produced at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.calibration import TenderSiteParams, calibrate_tender
from repro.core.config import TenderConfig
from repro.core.decomposition import (
    ChannelDecomposition,
    compute_channel_bias,
    decompose_channels,
    quantize_decomposed,
)
from repro.core.requantization import requantized_matmul
from repro.errors import CalibrationError
from repro.models.inference import TransformerRunner
from repro.models.weights import ModelWeights
from repro.quant.granularity import Granularity, compute_scale
from repro.quant.quantize import quantize_symmetric


class TenderExecutor:
    """Matmul executor implementing Tender's decomposed quantization."""

    def __init__(
        self,
        site_params: Dict[str, TenderSiteParams],
        config: Optional[TenderConfig] = None,
        implicit: bool = True,
    ) -> None:
        self.site_params = site_params
        self.config = config or TenderConfig()
        #: Whether to use implicit (shift-accumulate) or explicit requantization.
        self.implicit = implicit
        self._weight_cache: Dict[str, tuple] = {}
        self._bias_projection_cache: Dict[str, List[np.ndarray]] = {}
        #: Simple counters useful for tests and the GPU latency model.
        self.stats = {"projections": 0, "attention_matmuls": 0, "rescales": 0}

    # ------------------------------------------------------------------
    # Weight handling
    # ------------------------------------------------------------------
    def _quantized_weight(self, name: str, weight: np.ndarray):
        """Per-column symmetric weight quantization, cached per site."""
        if name not in self._weight_cache:
            scale = compute_scale(weight, self.config.bits, Granularity.PER_COLUMN)
            values = quantize_symmetric(weight, scale, self.config.bits)
            self._weight_cache[name] = (values, scale)
        return self._weight_cache[name]

    def _bias_projection(self, name: str, weight: np.ndarray) -> List[np.ndarray]:
        """Pre-computed ``bias @ W`` per chunk (added back after the int matmul)."""
        if name not in self._bias_projection_cache:
            params = self.site_params[name]
            self._bias_projection_cache[name] = [chunk.bias @ weight for chunk in params.chunks]
        return self._bias_projection_cache[name]

    # ------------------------------------------------------------------
    # Projection path (activation x weight)
    # ------------------------------------------------------------------
    def project(self, name, x, weight, bias):
        if name not in self.site_params:
            raise CalibrationError(f"no Tender calibration for matmul site {name!r}")
        self.stats["projections"] += 1
        params = self.site_params[name]
        q_weight, w_scale = self._quantized_weight(name, weight)
        bias_projections = self._bias_projection(name, weight)

        rows = x.shape[0]
        chunk_size = self.config.row_chunk_size
        output = np.empty((rows, weight.shape[1]), dtype=np.float64)
        num_chunks = (rows + chunk_size - 1) // chunk_size
        for chunk_index in range(num_chunks):
            row_slice = slice(chunk_index * chunk_size, min((chunk_index + 1) * chunk_size, rows))
            chunk_params = params.chunk(chunk_index)
            chunk_x = x[row_slice]
            if self.config.subtract_bias:
                chunk_x = chunk_x - chunk_params.bias
            quantized, _ = quantize_decomposed(chunk_x, chunk_params.decomposition)
            result = requantized_matmul(
                quantized,
                chunk_params.decomposition,
                q_weight,
                w_scale,
                implicit=self.implicit,
            )
            if self.config.subtract_bias:
                compensation_index = min(chunk_index, len(bias_projections) - 1)
                result = result + bias_projections[compensation_index]
            output[row_slice] = result
            self.stats["rescales"] += chunk_params.decomposition.num_groups - 1
        if bias is not None:
            output = output + bias
        return output

    # ------------------------------------------------------------------
    # Activation-activation path (X_Q X_K^T and X_S X_V)
    # ------------------------------------------------------------------
    def attention_matmul(self, name, a, b):
        if not self.config.quantize_attention:
            return a @ b
        self.stats["attention_matmuls"] += 1
        batch, heads = a.shape[0], a.shape[1]
        output = np.empty(a.shape[:-1] + (b.shape[-1],), dtype=np.float64)
        for batch_index in range(batch):
            for head_index in range(heads):
                left = a[batch_index, head_index]
                right = b[batch_index, head_index]
                output[batch_index, head_index] = self._dynamic_tender_matmul(left, right)
        return output

    def _dynamic_tender_matmul(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Tender quantization of one head's activation-activation product.

        ``left`` plays the role of the decomposed activation (its columns are
        the reduction channels); ``right`` is quantized per output column like
        a weight.  Decomposition is dynamic because both operands only exist
        at runtime; the paper notes the same algorithm applies to
        activation-activation matmuls (Section III-A).
        """
        config = self.config
        channel_max = left.max(axis=0)
        channel_min = left.min(axis=0)
        if config.subtract_bias:
            bias = compute_channel_bias(channel_max, channel_min)
            shifted = left - bias
            absmax = (channel_max - channel_min) / 2.0
        else:
            bias = None
            shifted = left
            absmax = np.maximum(np.abs(channel_max), np.abs(channel_min))
        decomposition = decompose_channels(
            absmax, num_groups=config.num_groups, bits=config.bits, alpha=config.alpha
        )
        quantized, _ = quantize_decomposed(shifted, decomposition)
        right_scale = compute_scale(right, config.bits, Granularity.PER_COLUMN)
        right_q = quantize_symmetric(right, right_scale, config.bits)
        result = requantized_matmul(quantized, decomposition, right_q, right_scale, implicit=self.implicit)
        if bias is not None:
            result = result + bias @ right
        self.stats["rescales"] += decomposition.num_groups - 1
        return result


class TenderQuantizer:
    """High-level API: calibrate a model and return a quantized runner.

    Example
    -------
    >>> quantizer = TenderQuantizer(TenderConfig(bits=8, num_groups=8))
    >>> runner = quantizer.quantize(weights, calibration_samples)
    >>> log_probs = runner.log_probs(tokens)
    """

    def __init__(self, config: Optional[TenderConfig] = None, implicit: bool = True) -> None:
        self.config = config or TenderConfig()
        self.implicit = implicit
        self.site_params: Optional[Dict[str, TenderSiteParams]] = None

    def calibrate(
        self, weights: ModelWeights, samples: List[np.ndarray], classify: bool = False
    ) -> Dict[str, TenderSiteParams]:
        """Compute and store calibration parameters for ``weights``."""
        self.site_params = calibrate_tender(weights, samples, self.config, classify=classify)
        return self.site_params

    def build_executor(self) -> TenderExecutor:
        """Build an executor from previously computed calibration parameters."""
        if self.site_params is None:
            raise CalibrationError("call calibrate() before build_executor()")
        return TenderExecutor(self.site_params, self.config, implicit=self.implicit)

    def quantize(
        self, weights: ModelWeights, samples: List[np.ndarray], classify: bool = False
    ) -> TransformerRunner:
        """Calibrate and return a :class:`TransformerRunner` using Tender."""
        self.calibrate(weights, samples, classify=classify)
        return TransformerRunner(weights, self.build_executor())
