"""The Tender matmul executor: decomposed quantization at every matmul site.

This is the software realisation of Figure 4's computation flow:

1. subtract the calibrated per-channel bias,
2. quantize each channel with its group's scale factor (static, calibrated
   decomposition; groups are powers of ``alpha`` apart),
3. multiply with the per-column-quantized weight using either implicit
   (shift-accumulate, Equation 2) or explicit (per-group FP accumulate,
   Equation 1) requantization,
4. add back the bias contribution ``bias @ W`` and the layer bias.

Activation-activation matmuls (``X_Q X_K^T`` and ``X_S X_V``) are quantized
only when the configuration enables them ("Tender (all)" in Tables II/III and
all BERT results in Table IV); they use dynamic per-head decomposition since
their operands are produced at runtime.

Two implementations back every matmul site.  The *reference* paths follow the
equations literally (per-chunk Python loop, per-group gathered or masked
products, full-array accumulator overflow scans); the *fast* paths
(:mod:`repro.core.kernels`, on by default via ``fast_kernels=True``) mirror
the accelerator's Index-Buffer dataflow — packed per-chunk calibration
tables, group-contiguous or fused integer matmuls, analytic overflow bounds —
and are bit-identical to the reference, which stays selectable for
regression tests and benchmarking.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.calibration import TenderSiteParams, calibrate_tender
from repro.core.config import TenderConfig
from repro.core.decomposition import (
    ChannelDecomposition,
    compute_channel_bias,
    decompose_channels,
    quantize_decomposed,
)
from repro.core.kernels import (
    fused_implicit_matmul,
    ordered_explicit_matmul,
    ordered_implicit_matmul,
    stacked_explicit_matmul,
    stacked_implicit_bound,
    stacked_implicit_matmul,
)
from repro.core.requantization import requantized_matmul
from repro.errors import CalibrationError, QuantizationError
from repro.models.inference import TransformerRunner
from repro.models.weights import ModelWeights
from repro.quant.granularity import Granularity, compute_scale, integer_range
from repro.quant.quantize import quantize_symmetric

#: Hardware accumulator range (Section IV-B), shared with the requantization kernels.
_ACC_MAX = 2**31 - 1
_ACC_MIN = -(2**31)


class TenderExecutor:
    """Matmul executor implementing Tender's decomposed quantization."""

    #: The inference engine passes per-row token positions when this is set,
    #: so the row-chunk lookup stays consistent between full-sequence forwards
    #: and the incremental (KV-cached) decode path.
    uses_positions = True

    def __init__(
        self,
        site_params: Dict[str, TenderSiteParams],
        config: Optional[TenderConfig] = None,
        implicit: bool = True,
        vectorized_attention: bool = True,
        fast_kernels: bool = True,
    ) -> None:
        self.site_params = site_params
        self.config = config or TenderConfig()
        #: Whether to use implicit (shift-accumulate) or explicit requantization.
        self.implicit = implicit
        #: Whether activation-activation matmuls use the batched (stacked-head)
        #: kernel or the reference per-batch/per-head loop.  Both produce
        #: bit-identical results; the loop is kept for regression tests.
        self.vectorized_attention = vectorized_attention
        #: Whether the Index-Buffer-ordered fast kernels (repro.core.kernels)
        #: serve the hot path.  They are bit-identical to the reference
        #: implementations (pinned by tests/core/test_fast_kernels.py), which
        #: stay selectable for regression testing and benchmarking.
        self.fast_kernels = fast_kernels
        self._weight_cache: Dict[str, tuple] = {}
        self._weight64_cache: Dict[str, np.ndarray] = {}
        self._permuted_weight_cache: Dict[tuple, np.ndarray] = {}
        self._bias_projection_cache: Dict[str, List[np.ndarray]] = {}
        self._bias_projection_stack_cache: Dict[str, np.ndarray] = {}
        #: Simple counters useful for tests and the GPU latency model.
        self.stats = {"projections": 0, "attention_matmuls": 0, "rescales": 0}

    # ------------------------------------------------------------------
    # Weight handling
    # ------------------------------------------------------------------
    def _quantized_weight(self, name: str, weight: np.ndarray):
        """Per-column symmetric weight quantization, cached per site."""
        if name not in self._weight_cache:
            scale = compute_scale(weight, self.config.bits, Granularity.PER_COLUMN)
            values = quantize_symmetric(weight, scale, self.config.bits)
            self._weight_cache[name] = (values, scale)
        return self._weight_cache[name]

    def _bias_projection(self, name: str, weight: np.ndarray) -> List[np.ndarray]:
        """Pre-computed ``bias @ W`` per chunk (added back after the int matmul)."""
        if name not in self._bias_projection_cache:
            params = self.site_params[name]
            self._bias_projection_cache[name] = [chunk.bias @ weight for chunk in params.chunks]
        return self._bias_projection_cache[name]

    def _bias_projection_stack(self, name: str, weight: np.ndarray) -> np.ndarray:
        """The per-chunk ``bias @ W`` compensations as one (chunks, out) table.

        Stacks the exact per-chunk products of :meth:`_bias_projection` (same
        1-D BLAS calls, hence bit-identical values) so the fast path can
        gather each row's compensation by chunk index.
        """
        if name not in self._bias_projection_stack_cache:
            self._bias_projection_stack_cache[name] = np.stack(self._bias_projection(name, weight))
        return self._bias_projection_stack_cache[name]

    def _weight_f64(self, name: str, quantized_weight: np.ndarray) -> np.ndarray:
        """The quantized weight as integer-valued float64, cached per site.

        The fast kernels carry exact integers in float64 so their matmuls
        dispatch to BLAS (see the dtype note in :mod:`repro.core.kernels`).
        """
        cached = self._weight64_cache.get(name)
        if cached is None:
            cached = self._weight64_cache[name] = quantized_weight.astype(np.float64)
        return cached

    def _permuted_weight(self, name: str, chunk_index: int, quantized_weight, packed) -> np.ndarray:
        """Weight rows in a chunk's Index-Buffer order, cached per (site, chunk).

        The reference path re-gathers ``G`` row subsets of the weight on
        every call; the hardware instead streams the weight through the
        systolic array already sorted by the Index Buffer.  Caching the
        permuted weight makes every group a contiguous row slice.
        """
        key = (name, chunk_index)
        cached = self._permuted_weight_cache.get(key)
        if cached is None:
            order = packed.channel_order[chunk_index]
            cached = self._permuted_weight_cache[key] = self._weight_f64(name, quantized_weight)[order]
        return cached

    # ------------------------------------------------------------------
    # Projection path (activation x weight)
    # ------------------------------------------------------------------
    def project(self, name, x, weight, bias, positions=None):
        """Decomposed-quantized ``x @ weight + bias``.

        ``positions`` (optional) gives the token position of each row of ``x``;
        row-chunk calibration parameters are then looked up by position rather
        than by flat row index.  Full-sequence forwards of a single sequence
        are unaffected (row index == position); the incremental decode path
        relies on this so a token's quantization parameters do not depend on
        how its request was batched.

        With ``fast_kernels`` (the default) the packed Index-Buffer path
        serves the call — one gather of the per-chunk calibration tables
        indexed by ``positions // chunk_size``, one vectorized quantize, and
        a fused or group-contiguous integer matmul; the reference per-chunk
        loop is kept selectable and both produce bit-identical outputs.
        """
        if name not in self.site_params:
            raise CalibrationError(f"no Tender calibration for matmul site {name!r}")
        self.stats["projections"] += 1
        params = self.site_params[name]
        q_weight, w_scale = self._quantized_weight(name, weight)

        rows = x.shape[0]
        chunk_size = self.config.row_chunk_size
        if positions is None:
            row_chunk = np.arange(rows, dtype=np.int64) // chunk_size
        else:
            row_chunk = np.asarray(positions, dtype=np.int64).reshape(-1) // chunk_size
            if row_chunk.shape[0] != rows:
                raise CalibrationError(
                    f"positions has {row_chunk.shape[0]} entries for {rows} activation rows"
                )
        if self.fast_kernels:
            output = self._project_fast(name, params, x, row_chunk, q_weight, w_scale, weight)
        else:
            output = self._project_reference(name, params, x, row_chunk, q_weight, w_scale, weight)
        self.stats["rescales"] += (self.config.num_groups - 1) * int(np.unique(row_chunk).size)
        if bias is not None:
            output = output + bias
        return output

    @staticmethod
    def _iter_chunk_rows(row_chunk: np.ndarray):
        """Yield ``(chunk_index, row_indices)`` from one stable argsort pass.

        Replaces the former O(chunks x rows) pattern of rescanning every row
        with ``np.nonzero(row_chunk == chunk)`` per chunk; the stable sort
        keeps each chunk's row indices ascending, exactly as ``nonzero``
        produced them.
        """
        order = np.argsort(row_chunk, kind="stable")
        unique_chunks, first = np.unique(row_chunk[order], return_index=True)
        boundaries = np.append(first, row_chunk.size)
        for position, chunk_index in enumerate(unique_chunks):
            yield int(chunk_index), order[boundaries[position] : boundaries[position + 1]]

    def _project_reference(self, name, params, x, row_chunk, q_weight, w_scale, weight):
        """Reference projection: per-chunk loop of gathered-group matmuls."""
        bias_projections = self._bias_projection(name, weight)
        output = np.empty((x.shape[0], weight.shape[1]), dtype=np.float64)
        for chunk_index, row_indices in self._iter_chunk_rows(row_chunk):
            chunk_params = params.chunk(chunk_index)
            chunk_x = x[row_indices]
            if self.config.subtract_bias:
                chunk_x = chunk_x - chunk_params.bias
            quantized, _ = quantize_decomposed(chunk_x, chunk_params.decomposition)
            result = requantized_matmul(
                quantized,
                chunk_params.decomposition,
                q_weight,
                w_scale,
                implicit=self.implicit,
            )
            if self.config.subtract_bias:
                compensation_index = min(chunk_index, len(bias_projections) - 1)
                result = result + bias_projections[compensation_index]
            output[row_indices] = result
        return output

    def _project_fast(self, name, params, x, row_chunk, q_weight, w_scale, weight):
        """Packed fast projection: gather, quantize, fused/grouped matmul.

        Every row's calibration metadata (bias, per-channel scales, rescale
        weights) is gathered from the packed tables by chunk index in one
        shot, and quantization runs over the whole batch at once.  The
        implicit path then needs no Python loop at all: when the analytic
        overflow bound fits the 32-bit accumulator (the common case), the
        alpha-weighted fused matmul produces the final accumulator directly.
        Otherwise — and for the explicit path, whose per-group FP accumulate
        is inherently ordered — rows are grouped by chunk with a single
        argsort pass and each chunk runs the group-contiguous ordered kernel
        against its cached Index-Buffer-permuted weight.
        """
        packed = params.packed()
        chunk_idx = np.minimum(row_chunk, packed.num_chunks - 1)
        if self.config.subtract_bias:
            shifted = x - packed.bias[chunk_idx]
        else:
            shifted = x
        # Integer-valued float64 (exact — see the dtype note in kernels.py),
        # so every downstream multiply runs on BLAS.
        quantized = np.clip(
            np.round(shifted / packed.channel_scales[chunk_idx]), -packed.qmax, packed.qmax
        )
        if self.implicit and packed.implicit_bounds[chunk_idx].max(initial=0.0) <= _ACC_MAX:
            result = fused_implicit_matmul(
                quantized,
                packed.alpha_weights[chunk_idx],
                packed.final_scales[chunk_idx],
                self._weight_f64(name, q_weight),
                w_scale,
            )
        else:
            result = np.empty((x.shape[0], weight.shape[1]), dtype=np.float64)
            for chunk_index, row_indices in self._iter_chunk_rows(chunk_idx):
                ordered = quantized[np.ix_(row_indices, packed.channel_order[chunk_index])]
                ordered_weight = self._permuted_weight(name, chunk_index, q_weight, packed)
                if self.implicit:
                    result[row_indices] = ordered_implicit_matmul(
                        ordered,
                        ordered_weight,
                        packed.group_sizes[chunk_index],
                        packed.final_scales[chunk_index],
                        w_scale,
                        packed.alpha,
                        scan_overflow=bool(packed.implicit_bounds[chunk_index] > _ACC_MAX),
                    )
                else:
                    result[row_indices] = ordered_explicit_matmul(
                        ordered,
                        ordered_weight,
                        packed.group_sizes[chunk_index],
                        packed.group_scales[chunk_index],
                        w_scale,
                        scan_groups=packed.explicit_bounds[chunk_index] > _ACC_MAX,
                    )
        if self.config.subtract_bias:
            result = result + self._bias_projection_stack(name, weight)[chunk_idx]
        return result

    # ------------------------------------------------------------------
    # Activation-activation path (X_Q X_K^T and X_S X_V)
    # ------------------------------------------------------------------
    @property
    def plain_attention(self):
        """True when ``attention_matmul`` is a plain product (QK^T/SV left in
        floating point), so the runner may use the fused paged kernel; with
        ``quantize_attention`` the dynamic per-head statistics need the dense
        operands, so the gather path is kept."""
        return not self.config.quantize_attention

    def attention_matmul(self, name, a, b):
        if not self.config.quantize_attention:
            return a @ b
        self.stats["attention_matmuls"] += 1
        if self.fast_kernels:
            return self._attention_matmul_fast(a, b)
        if self.vectorized_attention:
            return self._attention_matmul_vectorized(a, b)
        return self._attention_matmul_loop(a, b)

    def _attention_matmul_loop(self, a, b):
        """Reference implementation: one dynamic Tender matmul per (batch, head)."""
        batch, heads = a.shape[0], a.shape[1]
        output = np.empty(a.shape[:-1] + (b.shape[-1],), dtype=np.float64)
        for batch_index in range(batch):
            for head_index in range(heads):
                left = a[batch_index, head_index]
                right = b[batch_index, head_index]
                output[batch_index, head_index] = self._dynamic_tender_matmul(left, right)
        return output

    def _quantize_attention_operands(self, a, b):
        """Stacked dynamic Tender quantization of both attention operands.

        The shared preamble of the vectorized reference kernel and the fast
        Index-Buffer kernels: per-(batch, head) bias subtraction,
        power-of-alpha channel classification (the same rule as
        ``repro.core.decomposition.decompose_channels``, vectorized over
        heads), activation quantization, and per-column quantization of the
        right operand.  Returns ``(quantized, group_index, group_scales,
        right_q, right_scale, bias)``; every operation is elementwise, so
        the values are bit-identical to the per-head reference loop.

        ``quantized`` and ``right_q`` are integer-valued float64 (exact
        integers — see the dtype note in :mod:`repro.core.kernels`): the
        fast kernels consume them directly on BLAS, and the reference
        grouped kernels widen them to int64 at entry.
        """
        config = self.config
        qmax = integer_range(config.bits)
        num_groups, alpha = config.num_groups, config.alpha

        channel_max = a.max(axis=-2)
        channel_min = a.min(axis=-2)
        if config.subtract_bias:
            bias = compute_channel_bias(channel_max, channel_min)
            shifted = a - bias[..., None, :]
            absmax = (channel_max - channel_min) / 2.0
        else:
            bias = None
            shifted = a
            absmax = np.maximum(np.abs(channel_max), np.abs(channel_min))

        tensor_absmax = absmax.max(axis=-1)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            ratios = np.where(absmax > 0.0, tensor_absmax[..., None] / absmax, np.inf)
            group_index = np.clip(
                np.floor(np.log(ratios) / np.log(alpha)), 0, num_groups - 1
            ).astype(np.int64)
        # alpha^g * qmax stays an exact small integer in float64, so these
        # vectorized scale constructions match the former per-group Python
        # list comprehensions bit for bit.
        alpha_powers = np.power(alpha, np.arange(num_groups), dtype=np.float64)
        group_scales = np.where(
            tensor_absmax[..., None] > 0.0,
            tensor_absmax[..., None] / (alpha_powers * qmax),
            1e-12 / alpha_powers,
        )
        channel_scales = np.take_along_axis(group_scales, group_index, axis=-1)
        quantized = np.clip(np.round(shifted / channel_scales[..., None, :]), -qmax, qmax)

        # Per-column (per output feature) quantization of the right operand.
        right_scale = np.maximum(np.abs(b).max(axis=-2, keepdims=True) / qmax, 1e-12)
        right_q = np.clip(np.round(b / right_scale), -qmax, qmax)
        return quantized, group_index, group_scales, right_q, right_scale, bias

    def _attention_matmul_vectorized(self, a, b):
        """Batched dynamic Tender matmul over all (batch, head) pairs at once.

        Produces bit-identical results to :meth:`_attention_matmul_loop`: every
        floating-point operation is elementwise (hence order-independent) and
        the integer group partial sums are exact, so collapsing the Python
        loops into stacked einsum/matmul calls changes performance only.
        Per-group channel gathers are replaced by masked full-width integer
        matmuls, which keeps a single kernel shape across heads even though
        each head has its own channel-to-group assignment (the fast kernels
        remove that redundancy; this path is the pinned reference).
        """
        num_groups = self.config.num_groups
        lead = a.shape[:-2]
        quantized, group_index, group_scales, right_q, right_scale, bias = (
            self._quantize_attention_operands(a, b)
        )

        if self.implicit:
            result = self._implicit_grouped_matmul(
                quantized, group_index, group_scales, right_q, right_scale
            )
        else:
            result = self._explicit_grouped_matmul(
                quantized, group_index, group_scales, right_q, right_scale
            )

        if bias is not None:
            # Stacked ``bias @ right`` products; BLAS evaluates each head's
            # row-times-matrix product with the same reduction order as the
            # reference loop's 1-D ``bias @ right``, so results stay
            # bit-identical (the regression suite checks this).
            result = result + bias[..., None, :] @ b
        self.stats["rescales"] += int(np.prod(lead, dtype=np.int64)) * (num_groups - 1)
        return result

    def _attention_matmul_fast(self, a, b):
        """Index-Buffer-ordered fast attention path over stacked heads.

        Shares the exact quantization preamble with the reference kernels,
        then multiplies without masked full-width products: the implicit
        path fuses all groups into one alpha-weighted integer matmul
        (falling back to the scanning reference kernel only when the
        analytic bound says the 32-bit accumulator could overflow), and the
        explicit path multiplies per-head group-contiguous segments.
        Bit-identical to both reference paths.
        """
        config = self.config
        num_groups, alpha = config.num_groups, config.alpha
        qmax = integer_range(config.bits)
        lead = a.shape[:-2]
        quantized, group_index, group_scales, right_q, right_scale, bias = (
            self._quantize_attention_operands(a, b)
        )

        if self.implicit:
            if stacked_implicit_bound(group_index, alpha, num_groups, qmax) <= _ACC_MAX:
                result = stacked_implicit_matmul(
                    quantized, group_index, group_scales, right_q, right_scale, alpha, num_groups
                )
            else:
                # The analytic bound says the accumulator could leave the
                # 32-bit range: run the scanning reference kernel, which
                # raises exactly when the hardware would saturate.
                result = self._implicit_grouped_matmul(
                    quantized, group_index, group_scales, right_q, right_scale
                )
        else:
            result = stacked_explicit_matmul(
                quantized, group_index, group_scales, right_q, right_scale, num_groups, qmax
            )

        if bias is not None:
            result = result + bias[..., None, :] @ b
        self.stats["rescales"] += int(np.prod(lead, dtype=np.int64)) * (num_groups - 1)
        return result

    def _implicit_grouped_matmul(self, quantized, group_index, group_scales, right_q, right_scale):
        """Equation 2 over stacked heads: integer accumulate, rescale by alpha."""
        quantized = quantized.astype(np.int64, copy=False)
        right_q = right_q.astype(np.int64, copy=False)
        alpha = self.config.alpha
        lead_mn = quantized.shape[:-1] + (right_q.shape[-1],)
        accumulator = np.zeros(lead_mn, dtype=np.int64)
        for group in range(self.config.num_groups):
            if group > 0:
                accumulator = accumulator * alpha
            mask = group_index == group
            if mask.any():
                accumulator = accumulator + (quantized * mask[..., None, :]) @ right_q
            if accumulator.max(initial=0) > _ACC_MAX or accumulator.min(initial=0) < _ACC_MIN:
                raise QuantizationError(
                    "implicit requantization overflowed the 32-bit accumulator; "
                    "reduce the number of groups or the reduction length"
                )
        final_scale = group_scales[..., -1][..., None, None]
        return accumulator.astype(np.float64) * final_scale * right_scale

    def _explicit_grouped_matmul(self, quantized, group_index, group_scales, right_q, right_scale):
        """Equation 1 over stacked heads: dequantize and accumulate each group."""
        quantized = quantized.astype(np.int64, copy=False)
        right_q = right_q.astype(np.int64, copy=False)
        lead_mn = quantized.shape[:-1] + (right_q.shape[-1],)
        result = np.zeros(lead_mn, dtype=np.float64)
        for group in range(self.config.num_groups):
            mask = group_index == group
            if not mask.any():
                continue
            partial = (quantized * mask[..., None, :]) @ right_q
            if partial.max(initial=0) > _ACC_MAX or partial.min(initial=0) < _ACC_MIN:
                raise QuantizationError(
                    "integer matmul overflowed the 32-bit accumulator; reduce the "
                    "reduction length or the operand bit widths"
                )
            group_scale = group_scales[..., group][..., None, None]
            result = result + partial.astype(np.float64) * group_scale * right_scale
        return result

    def _dynamic_tender_matmul(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Tender quantization of one head's activation-activation product.

        ``left`` plays the role of the decomposed activation (its columns are
        the reduction channels); ``right`` is quantized per output column like
        a weight.  Decomposition is dynamic because both operands only exist
        at runtime; the paper notes the same algorithm applies to
        activation-activation matmuls (Section III-A).
        """
        config = self.config
        channel_max = left.max(axis=0)
        channel_min = left.min(axis=0)
        if config.subtract_bias:
            bias = compute_channel_bias(channel_max, channel_min)
            shifted = left - bias
            absmax = (channel_max - channel_min) / 2.0
        else:
            bias = None
            shifted = left
            absmax = np.maximum(np.abs(channel_max), np.abs(channel_min))
        decomposition = decompose_channels(
            absmax, num_groups=config.num_groups, bits=config.bits, alpha=config.alpha
        )
        quantized, _ = quantize_decomposed(shifted, decomposition)
        right_scale = compute_scale(right, config.bits, Granularity.PER_COLUMN)
        right_q = quantize_symmetric(right, right_scale, config.bits)
        result = requantized_matmul(quantized, decomposition, right_q, right_scale, implicit=self.implicit)
        if bias is not None:
            result = result + bias @ right
        self.stats["rescales"] += decomposition.num_groups - 1
        return result


class TenderQuantizer:
    """High-level API: calibrate a model and return a quantized runner.

    Example
    -------
    >>> quantizer = TenderQuantizer(TenderConfig(bits=8, num_groups=8))
    >>> runner = quantizer.quantize(weights, calibration_samples)
    >>> log_probs = runner.log_probs(tokens)
    """

    def __init__(
        self,
        config: Optional[TenderConfig] = None,
        implicit: bool = True,
        fast_kernels: bool = True,
    ) -> None:
        self.config = config or TenderConfig()
        self.implicit = implicit
        self.fast_kernels = fast_kernels
        self.site_params: Optional[Dict[str, TenderSiteParams]] = None

    def calibrate(
        self, weights: ModelWeights, samples: List[np.ndarray], classify: bool = False
    ) -> Dict[str, TenderSiteParams]:
        """Compute and store calibration parameters for ``weights``."""
        self.site_params = calibrate_tender(weights, samples, self.config, classify=classify)
        return self.site_params

    def build_executor(self) -> TenderExecutor:
        """Build an executor from previously computed calibration parameters."""
        if self.site_params is None:
            raise CalibrationError("call calibrate() before build_executor()")
        return TenderExecutor(
            self.site_params, self.config, implicit=self.implicit, fast_kernels=self.fast_kernels
        )

    def quantize(
        self, weights: ModelWeights, samples: List[np.ndarray], classify: bool = False
    ) -> TransformerRunner:
        """Calibrate and return a :class:`TransformerRunner` using Tender."""
        self.calibrate(weights, samples, classify=classify)
        return TransformerRunner(weights, self.build_executor())
