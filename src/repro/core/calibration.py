"""Offline calibration for Tender.

Section III-B ("Optimization"): channel decomposition, channel biases, and
scale factors are all pre-computed during calibration so that runtime only
applies metadata.  Calibration additionally happens *per row chunk* (the paper
uses chunks of 256 token rows) to capture intra-channel variance, and the
resulting per-chunk parameters are reused across all sequences at runtime.

This module runs calibration samples through the floating-point model,
collects per-site/per-chunk channel statistics, and converts them into the
:class:`TenderSiteParams` the executor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import TenderConfig
from repro.core.decomposition import ChannelDecomposition, compute_channel_bias, decompose_channels
from repro.errors import CalibrationError
from repro.models.inference import FloatExecutor, TransformerRunner
from repro.models.weights import ModelWeights


@dataclass
class ChunkParams:
    """Calibrated parameters of one row chunk of one matmul site."""

    bias: np.ndarray
    decomposition: ChannelDecomposition


@dataclass
class TenderSiteParams:
    """Calibrated parameters of one matmul site (all of its row chunks)."""

    name: str
    chunks: List[ChunkParams] = field(default_factory=list)
    #: Lazily built dense tables for the fast kernels (see :meth:`packed`).
    _packed: Optional[object] = field(default=None, init=False, repr=False, compare=False)

    def chunk(self, index: int) -> ChunkParams:
        """Parameters for chunk ``index``; rows beyond calibration reuse the last chunk."""
        if not self.chunks:
            raise CalibrationError(f"site {self.name!r} has no calibrated chunks")
        return self.chunks[min(index, len(self.chunks) - 1)]

    def packed(self):
        """Dense chunk-indexed calibration tables for the fast kernel path.

        Stacks every chunk's bias, per-channel scales, Index-Buffer channel
        order, group boundaries, implicit rescale weights, and analytic
        overflow bounds into ``(num_chunks, ...)`` arrays
        (:class:`repro.core.kernels.PackedSiteParams`), so the executor's
        ``project`` can serve batched decode rows at arbitrary positions
        with one gather indexed by ``positions // chunk_size`` instead of a
        Python loop over chunks.  Built on first use and cached; all
        metadata (bit width, alpha, group count) comes from the chunks' own
        decompositions, the same source the reference per-chunk loop reads.
        """
        if self._packed is None:
            from repro.core.kernels import pack_site_params

            if not self.chunks:
                raise CalibrationError(f"site {self.name!r} has no calibrated chunks")
            self._packed = pack_site_params(self.chunks)
        return self._packed


class _ChunkedStatistics:
    """Per-row-chunk channel max/min accumulated over calibration samples."""

    def __init__(self, chunk_size: int) -> None:
        self.chunk_size = chunk_size
        self.channel_max: List[np.ndarray] = []
        self.channel_min: List[np.ndarray] = []

    def update(self, x: np.ndarray) -> None:
        rows, channels = x.shape
        num_chunks = (rows + self.chunk_size - 1) // self.chunk_size
        for chunk_index in range(num_chunks):
            chunk = x[chunk_index * self.chunk_size : (chunk_index + 1) * self.chunk_size]
            cmax = chunk.max(axis=0)
            cmin = chunk.min(axis=0)
            if chunk_index >= len(self.channel_max):
                self.channel_max.append(cmax.copy())
                self.channel_min.append(cmin.copy())
            else:
                if self.channel_max[chunk_index].shape != cmax.shape:
                    raise CalibrationError("calibration samples disagree on channel dimension")
                np.maximum(self.channel_max[chunk_index], cmax, out=self.channel_max[chunk_index])
                np.minimum(self.channel_min[chunk_index], cmin, out=self.channel_min[chunk_index])

    def finalize(self, name: str, config: TenderConfig) -> TenderSiteParams:
        params = TenderSiteParams(name=name)
        for cmax, cmin in zip(self.channel_max, self.channel_min):
            if config.subtract_bias:
                bias = compute_channel_bias(cmax, cmin)
                absmax = (cmax - cmin) / 2.0
            else:
                bias = np.zeros_like(cmax)
                absmax = np.maximum(np.abs(cmax), np.abs(cmin))
            decomposition = decompose_channels(
                absmax, num_groups=config.num_groups, bits=config.bits, alpha=config.alpha
            )
            params.chunks.append(ChunkParams(bias=bias, decomposition=decomposition))
        return params


class _TenderCalibrationExecutor:
    """Executor wrapper that feeds projection inputs to the chunked statistics."""

    def __init__(self, config: TenderConfig) -> None:
        self.config = config
        self.base = FloatExecutor()
        self.statistics: Dict[str, _ChunkedStatistics] = {}

    def _record(self, name: str, x: np.ndarray) -> None:
        self.statistics.setdefault(name, _ChunkedStatistics(self.config.row_chunk_size)).update(x)

    def project(self, name, x, weight, bias):
        self._record(name, x)
        return self.base.project(name, x, weight, bias)

    def attention_matmul(self, name, a, b):
        # Activation-activation matmuls are quantized dynamically per head (see
        # TenderExecutor); no static statistics are needed for them.
        return self.base.attention_matmul(name, a, b)


def calibrate_tender(
    weights: ModelWeights,
    samples: List[np.ndarray],
    config: Optional[TenderConfig] = None,
    classify: bool = False,
) -> Dict[str, TenderSiteParams]:
    """Run calibration samples and return per-site Tender parameters.

    Parameters
    ----------
    weights:
        The floating-point model to calibrate.
    samples:
        Token sequences (1-D arrays) used as calibration data; the paper uses
        128 Pile sequences, scaled down here.
    config:
        Tender configuration (bit width, number of groups, chunk size, ...).
    classify:
        Run the classifier head instead of the LM head (BERT-like models).
    """
    if not samples:
        raise CalibrationError("calibration requires at least one sample")
    config = config or TenderConfig()
    executor = _TenderCalibrationExecutor(config)
    runner = TransformerRunner(weights, executor)
    for sample in samples:
        sample = np.asarray(sample)
        if sample.ndim == 1:
            sample = sample[None, :]
        if classify:
            runner.classify(sample)
        else:
            runner.logits(sample)
    return {
        name: stats.finalize(name, config) for name, stats in executor.statistics.items()
    }
