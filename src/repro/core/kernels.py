"""Index-Buffer-ordered fast kernels for the Tender hot path.

The accelerator never multiplies a masked full-width tile: its Index Buffer
streams channels into the systolic array *sorted by scale group* (Section
IV-B), so each group occupies a contiguous slice of the channel stream and
the only per-group work is the one-cycle rescale bubble between groups.
This module is the software mirror of that dataflow:

* :func:`pack_site_params` turns a site's per-chunk calibration data
  (:class:`~repro.core.calibration.ChunkParams`) into dense arrays indexed
  by ``positions // chunk_size`` — the software Index Buffer.  Biases,
  per-channel scales, channel permutations, group boundaries, and analytic
  overflow bounds are all precomputed once.
* :func:`fused_implicit_matmul` collapses implicit (Equation 2)
  requantization into a *single* integer matmul: scaling channel ``c`` by
  ``alpha^(G-1-g_c)`` up front is exactly the accumulator rescaling the
  per-PE shifter performs, so the fused product equals the reference
  accumulator bit for bit — with no Python loop over row chunks *or*
  groups.
* :func:`ordered_implicit_matmul` / :func:`ordered_explicit_matmul` multiply
  contiguous per-group column slices of operands permuted once by
  ``ChannelDecomposition.channel_order`` (no masks, no full-width
  products) — the static projection kernels.
* :func:`stacked_implicit_matmul` / :func:`stacked_explicit_matmul` serve
  the dynamic per-head attention path, where every (batch, head) pair
  carries its own channel-to-group map: the implicit kernel fuses all
  groups into one product (strictly better than contiguity), while the
  explicit kernel keeps the group-masked structure on BLAS because the
  ragged per-head boundaries make gather-based contiguity a measured net
  loss (see its docstring).
* :func:`paged_attention` is the serving-side expression of the same
  principle: instead of fancy-indexing paged KV blocks into a dense copy
  before attention (a materialised operand reorder), it multiplies
  zero-copy strided views of consecutive-block runs straight out of
  :class:`~repro.serve.PagedKVCache` storage and assembles the scores the
  dense path would have produced, bit for bit.

Every kernel is bit-identical to the reference implementations in
:mod:`repro.core.requantization` and ``TenderExecutor``: integer partial
sums are exact regardless of evaluation order, and the floating-point
rescale/accumulate sequence is kept operation-for-operation the same.  The
per-group ``accumulator.max()`` scans of the reference are replaced by
analytic bounds (``qmax^2`` times the alpha-weighted reduction length,
computed at pack time); a scan only runs when the bound shows the 32-bit
accumulator could actually overflow, and callers fall back to the scanning
reference when it can.

A note on dtypes: the kernels here carry integer-valued operands in
*float64* so the multiplies dispatch to BLAS instead of NumPy's slow
generic integer loops.  This is still exact integer arithmetic, not an
approximation: operand magnitudes are at most ``qmax * alpha^(G-1)``
(~2^14 for INT8/G=8), every accumulator state is bounded by the analytic
overflow bound (checked against 2^31) or scanned group by group, and IEEE
float64 represents every integer up to 2^53 exactly — so no product or
partial sum can ever round, regardless of BLAS's reduction order, and the
results match the reference int64 pipeline bit for bit (pinned by
``tests/core/test_fast_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.requantization import (
    _ACC_MAX,
    _ACC_MIN,
    EXPLICIT_OVERFLOW_MESSAGE,
    IMPLICIT_OVERFLOW_MESSAGE,
)
from repro.errors import QuantizationError
from repro.quant.granularity import integer_range
from repro.tensor.ops import softmax


@dataclass(frozen=True)
class PackedSiteParams:
    """A matmul site's calibration tables as dense, chunk-indexed arrays.

    This is the software analogue of the hardware Index Buffer contents:
    everything the runtime needs to quantize and multiply a row is looked up
    by ``chunk = position // row_chunk_size`` with one gather — no Python
    loop over chunks.  All arrays share the leading ``num_chunks`` axis.

    Attributes
    ----------
    bias:
        ``(num_chunks, channels)`` per-channel midpoints to subtract.
    channel_scales:
        ``(num_chunks, channels)`` per-channel quantization scales (each
        channel's group scale, in original channel order).
    alpha_weights:
        ``(num_chunks, channels)`` integer weights ``alpha^(G-1-g_c)``: the
        total rescale each channel's contribution receives by the end of
        implicit requantization.  Multiplying quantized channels by these
        fuses Equation 2 into one integer matmul.
    channel_order:
        ``(num_chunks, channels)`` the Index Buffer order (channels sorted
        by group, stable).
    group_sizes:
        ``(num_chunks, num_groups)`` contiguous slice widths of each group
        in the ordered channel stream.
    group_scales:
        ``(num_chunks, num_groups)`` per-group scale factors.
    final_scales:
        ``(num_chunks,)`` the last (finest) group's scale — the single
        dequantization factor of the implicit path.
    implicit_bounds:
        ``(num_chunks,)`` analytic worst-case accumulator magnitude of the
        implicit path: ``qmax^2 * sum_c alpha^(G-1-g_c)``.  Bounds every
        intermediate accumulator state, so when it fits in 32 bits no
        overflow scan is needed at all.
    explicit_bounds:
        ``(num_chunks, num_groups)`` analytic worst-case per-group partial
        product magnitude ``qmax^2 * group_size`` — the explicit kernel
        scans a group only when its bound can actually overflow.
    qmax / alpha / num_groups / num_chunks:
        Scalar metadata shared by every chunk.
    """

    bias: np.ndarray
    channel_scales: np.ndarray
    alpha_weights: np.ndarray
    channel_order: np.ndarray
    group_sizes: np.ndarray
    group_scales: np.ndarray
    final_scales: np.ndarray
    implicit_bounds: np.ndarray
    explicit_bounds: np.ndarray
    qmax: int
    alpha: int
    num_groups: int
    num_chunks: int


def pack_site_params(chunks: Sequence) -> PackedSiteParams:
    """Pack a site's list of :class:`ChunkParams` into dense arrays.

    ``chunks`` must be non-empty and agree on channel count, group count,
    bit width, and alpha (guaranteed by calibration, which derives every
    chunk from one config).  All metadata is taken from the chunks' own
    decompositions — exactly the values the reference per-chunk loop uses —
    so the packed tables stay bit-faithful even if an executor is built
    with a config that disagrees with the calibration.  Called once per
    site; the executor caches the result.
    """
    if not chunks:
        raise QuantizationError("cannot pack a site with no calibrated chunks")
    reference = chunks[0].decomposition
    qmax = integer_range(reference.bits)
    alpha = reference.alpha
    num_groups = reference.num_groups
    bias = np.stack([np.asarray(chunk.bias, dtype=np.float64) for chunk in chunks])
    channel_scales = np.stack([chunk.decomposition.channel_scales() for chunk in chunks])
    group_of_channel = np.stack([chunk.decomposition.group_of_channel for chunk in chunks])
    channel_order = np.stack([chunk.decomposition.channel_order for chunk in chunks])
    group_sizes = np.stack([chunk.decomposition.group_sizes for chunk in chunks]).astype(np.int64)
    group_scales = np.stack([chunk.decomposition.group_scales for chunk in chunks])
    # Float64 so the fused matmul runs on BLAS; the powers are exact integers.
    alpha_weights = np.power(alpha, num_groups - 1 - group_of_channel).astype(np.float64)
    implicit_bounds = float(qmax) ** 2 * alpha_weights.sum(axis=1)
    explicit_bounds = float(qmax) ** 2 * group_sizes.astype(np.float64)
    return PackedSiteParams(
        bias=bias,
        channel_scales=channel_scales,
        alpha_weights=alpha_weights,
        channel_order=channel_order,
        group_sizes=group_sizes,
        group_scales=group_scales,
        final_scales=group_scales[:, -1].copy(),
        implicit_bounds=implicit_bounds,
        explicit_bounds=explicit_bounds,
        qmax=qmax,
        alpha=alpha,
        num_groups=num_groups,
        num_chunks=len(chunks),
    )


# ----------------------------------------------------------------------
# Static projection kernels (activation x weight)
# ----------------------------------------------------------------------
def fused_implicit_matmul(
    quantized: np.ndarray,
    alpha_weights: np.ndarray,
    final_scales: np.ndarray,
    quantized_weight: np.ndarray,
    weight_scale: np.ndarray,
) -> np.ndarray:
    """Implicit requantization (Equation 2) as one fused integer matmul.

    ``quantized`` is ``(rows, channels)`` integer-valued float64,
    ``alpha_weights`` the per-row gathered ``alpha^(G-1-g_c)`` table,
    ``final_scales`` the per-row final group scale, ``quantized_weight`` the
    per-column-quantized weight (also integer-valued float64).  The
    alpha-weighted product equals the reference implicit accumulator exactly
    (integer arithmetic is exact, and each channel's contribution is
    rescaled ``G-1-g_c`` times in both formulations), so the result is
    bit-identical with zero Python loops.  Callers must have verified the
    analytic overflow bound first — it also guarantees every BLAS partial
    sum stays far below 2^53, where float64 integer arithmetic is exact.
    """
    accumulator = (quantized * alpha_weights) @ quantized_weight
    return accumulator * final_scales[:, None] * weight_scale


def ordered_implicit_matmul(
    ordered_activation: np.ndarray,
    ordered_weight: np.ndarray,
    group_sizes: np.ndarray,
    final_scale: float,
    weight_scale: np.ndarray,
    alpha: int,
    scan_overflow: bool,
) -> np.ndarray:
    """Implicit requantization over group-contiguous column slices.

    Operands are already permuted into Index-Buffer order, so each group is
    the contiguous slice ``[start, start+size)`` — no masks, no gathers, no
    full-width products.  With ``scan_overflow`` the accumulator is checked
    after every group exactly like the reference (its states are identical
    integers), so overflow raises in precisely the same cases.
    """
    rows = ordered_activation.shape[0]
    out_features = ordered_weight.shape[1]
    accumulator = np.zeros((rows, out_features), dtype=np.float64)
    start = 0
    for group, size in enumerate(group_sizes):
        if group > 0:
            accumulator = accumulator * alpha
        if size:
            stop = start + size
            accumulator = accumulator + ordered_activation[:, start:stop] @ ordered_weight[start:stop, :]
            start = stop
        if scan_overflow and (
            accumulator.max(initial=0.0) > _ACC_MAX or accumulator.min(initial=0.0) < _ACC_MIN
        ):
            raise QuantizationError(IMPLICIT_OVERFLOW_MESSAGE)
    return accumulator * final_scale * weight_scale


def ordered_explicit_matmul(
    ordered_activation: np.ndarray,
    ordered_weight: np.ndarray,
    group_sizes: np.ndarray,
    group_scales: np.ndarray,
    weight_scale: np.ndarray,
    scan_groups: np.ndarray,
) -> np.ndarray:
    """Explicit requantization (Equation 1) over group-contiguous slices.

    Floating-point accumulation runs group by group in the reference order
    (empty groups skipped), so results match
    :func:`repro.core.requantization.explicit_requantized_matmul` bit for
    bit; ``scan_groups`` marks the groups whose pack-time analytic bound
    (``PackedSiteParams.explicit_bounds``) shows the 32-bit accumulator is
    actually reachable — only those partial products are scanned.
    """
    rows = ordered_activation.shape[0]
    out_features = ordered_weight.shape[1]
    result = np.zeros((rows, out_features), dtype=np.float64)
    start = 0
    for group, size in enumerate(group_sizes):
        if not size:
            continue
        stop = start + size
        partial = ordered_activation[:, start:stop] @ ordered_weight[start:stop, :]
        start = stop
        if scan_groups[group] and (
            partial.max(initial=0.0) > _ACC_MAX or partial.min(initial=0.0) < _ACC_MIN
        ):
            raise QuantizationError(EXPLICIT_OVERFLOW_MESSAGE)
        result += partial * group_scales[group] * weight_scale
    return result


# ----------------------------------------------------------------------
# Stacked per-head attention kernels (activation x activation)
# ----------------------------------------------------------------------
def stacked_implicit_bound(group_index: np.ndarray, alpha: int, num_groups: int, qmax: int) -> float:
    """Worst-case implicit accumulator magnitude across all stacked heads.

    ``qmax^2 * sum_c alpha^(G-1-g_c)`` bounds every intermediate accumulator
    state of the reference group loop as well as the fused product, because
    a channel's rescale weight only grows as later groups are processed.
    """
    weights = np.power(float(alpha), (num_groups - 1 - group_index).astype(np.float64))
    return float(qmax) ** 2 * float(weights.sum(axis=-1).max(initial=0.0))


def stacked_implicit_matmul(
    quantized: np.ndarray,
    group_index: np.ndarray,
    group_scales: np.ndarray,
    right_q: np.ndarray,
    right_scale: np.ndarray,
    alpha: int,
    num_groups: int,
) -> np.ndarray:
    """Fused implicit requantization over stacked (batch, head) pairs.

    One alpha-weighted integer matmul per call replaces ``G`` masked
    full-width products and ``G`` accumulator scans; the caller must have
    checked :func:`stacked_implicit_bound` (falling back to the scanning
    reference otherwise), which also guarantees the fused product cannot
    overflow — and keeps every float64 partial sum exact (below 2^53).
    ``quantized`` and ``right_q`` are integer-valued float64.
    """
    weights = np.power(alpha, num_groups - 1 - group_index).astype(np.float64)
    accumulator = (quantized * weights[..., None, :]) @ right_q
    final_scale = group_scales[..., -1][..., None, None]
    return accumulator * final_scale * right_scale


def stacked_explicit_matmul(
    quantized: np.ndarray,
    group_index: np.ndarray,
    group_scales: np.ndarray,
    right_q: np.ndarray,
    right_scale: np.ndarray,
    num_groups: int,
    qmax: int,
) -> np.ndarray:
    """Explicit requantization (Equation 1) over stacked heads on BLAS.

    Every (batch, head) pair has its own channel-to-group map with ragged
    per-head group boundaries, so — unlike the static projection path, whose
    permutations are precomputed per chunk — gathering each head into
    Index-Buffer order costs more than it saves here: fancy-indexing both
    operands per call is strictly slower than BLAS-dispatched zero-masked
    products at every decode and prefill shape we measured.  This kernel
    therefore keeps the reference's group-masked structure but carries the
    integer operands in float64 (exact: partial sums are bounded by
    ``qmax^2 * channels``, far below 2^53) so every product runs on dgemm,
    and replaces the reference's unconditional per-group overflow scans
    with one analytic gate.  FP accumulation order matches the reference
    exactly; ``quantized`` and ``right_q`` are integer-valued float64.
    """
    channels = quantized.shape[-1]
    scan_overflow = float(qmax) ** 2 * channels > _ACC_MAX
    lead_mn = quantized.shape[:-1] + (right_q.shape[-1],)
    result = np.zeros(lead_mn, dtype=np.float64)
    for group in range(num_groups):
        mask = group_index == group
        if not mask.any():
            continue
        partial = (quantized * mask[..., None, :]) @ right_q
        if scan_overflow and (
            partial.max(initial=0.0) > _ACC_MAX or partial.min(initial=0.0) < _ACC_MIN
        ):
            raise QuantizationError(EXPLICIT_OVERFLOW_MESSAGE)
        group_scale = group_scales[..., group][..., None, None]
        result = result + partial * group_scale * right_scale
    return result


def paged_attention(
    queries: np.ndarray,
    key_pool: np.ndarray,
    value_pool: np.ndarray,
    runs: Sequence[Sequence[Tuple[int, int, int]]],
    block_size: int,
    positions: np.ndarray,
    valid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Blocked attention reading K/V straight from paged-pool storage.

    The serving reference path fancy-indexes every slot's blocks into a
    dense per-view K/V copy (``PagedKVCache.gather``) before two dense
    matmuls — the software equivalent of materialising a reordered operand
    the Index Buffer exists to avoid.  This kernel consumes the pool arrays
    directly: with the pool laid out heads-outermost as
    ``(num_heads, num_blocks, block_size, d_head)``, a run of ``k``
    *consecutive* physical blocks reshapes into a zero-copy
    ``(num_heads, k * block_size, d_head)`` strided view, so each run costs
    one QK^T slice and one SV accumulation with no KV bytes moved.

    Bit-exactness contract (pinned by ``tests/core/test_paged_attention.py``
    and the serving parity sweeps): scores are assembled into the same
    ``(batch, heads, q_len, attended)`` array the dense path produces —
    each column is the same length-``d_head`` dot product, untouched
    columns hold the same zeros the gather's zero-fill would — then the
    scale, the ``-1e9`` causal/padding mask, and the shared
    :func:`repro.tensor.ops.softmax` are applied in the identical
    expressions, so the attention probabilities match the reference bit
    for bit.  The SV product accumulates per run; masked columns carry
    exactly-zero probabilities (their scores underflow ``exp``), so
    skipping them is an exact no-op and single-run rows — every fresh
    reservation, since the free list hands out consecutive blocks — are
    bitwise identical to the dense product.  Multi-run rows can differ
    from the dense product only in the final-sum rounding of the context
    vector (~1e-15 relative); under Tender both operands of every
    *subsequent* matmul are statically requantized, which rounds that
    residue away, so Tender logits and tokens stay bit-identical (the FP
    executor's documented parity bar is tokens-identical,
    logits-to-1e-15, same as its other fast paths).

    Parameters
    ----------
    queries : ndarray
        ``(batch, num_heads, q_len, d_head)`` query heads.
    key_pool, value_pool : ndarray
        One layer's pool storage, ``(num_heads, num_blocks, block_size,
        d_head)``.
    runs : sequence of sequence of (int, int, int)
        Per batch row, maximal consecutive physical-block runs as
        ``(first_block_index, first_physical_block, count)`` — the
        ``_BlockIndex.runs`` table.
    block_size : int
        Positions per block.
    positions : ndarray
        ``(batch, q_len)`` absolute position of each query token.
    valid : ndarray, optional
        ``(batch, q_len)`` mask of real (non-padding) rows; padded
        probability rows are replaced by the first row's, exactly as in
        the dense path.

    Returns
    -------
    ndarray
        ``(batch, num_heads, q_len, d_head)`` attention context.
    """
    batch, num_heads, q_len, d_head = queries.shape
    attended = int(positions.max()) + 1
    scores = np.zeros((batch, num_heads, q_len, attended), dtype=np.float64)
    for row in range(batch):
        for first_index, first_physical, count in runs[row]:
            start = first_index * block_size
            if start >= attended:
                break
            stop = min(start + count * block_size, attended)
            key_run = key_pool[:, first_physical : first_physical + count]
            key_run = key_run.reshape(num_heads, count * block_size, d_head)
            scores[row, :, :, start:stop] = queries[row] @ np.swapaxes(
                key_run[:, : stop - start], -1, -2
            )
    scores = scores / np.sqrt(d_head)
    hidden_slots = np.arange(attended)[None, None, None, :] > positions[:, None, :, None]
    scores = np.where(hidden_slots, -1e9, scores)
    attention = softmax(scores, axis=-1)
    if valid is not None and not valid.all():
        attention = np.where(valid[:, None, :, None], attention, attention[:, :, :1, :])
    context = np.zeros((batch, num_heads, q_len, d_head), dtype=np.float64)
    for row in range(batch):
        for first_index, first_physical, count in runs[row]:
            start = first_index * block_size
            if start >= attended:
                break
            stop = min(start + count * block_size, attended)
            value_run = value_pool[:, first_physical : first_physical + count]
            value_run = value_run.reshape(num_heads, count * block_size, d_head)
            context[row] += attention[row, :, :, start:stop] @ value_run[:, : stop - start]
    return context
