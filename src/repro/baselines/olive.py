"""OliVe baseline (Guo et al., ISCA 2023): outlier-victim pair quantization.

OliVe observes that outliers are important but *locally sparse*: it therefore
sacrifices ("prunes") the normal value adjacent to each outlier and reuses its
encoding space to store the outlier with a wide-dynamic-range datatype
(abfloat), while all remaining normal values use a low-bit integer scale
computed without the outliers.  Everything stays memory-aligned, but the
scheme needs encoder/decoder logic in hardware and loses the victims.

The reproduction follows that recipe elementwise:

* the "normal" range is a robust estimate of the bulk of the tensor (a
  multiple of the mean absolute value, so it is insensitive to how many
  channels carry outliers),
* values above the normal range are outliers encoded as
  ``sign * 2^e * (1 + m / 2^mantissa_bits)`` — the adaptive-bias-float
  datatype, with one mantissa bit at 4-bit precision and three at 8-bit,
* each outlier's pair partner (adjacent element) is pruned to zero,
* normal values are quantized with the symmetric integer codebook.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FakeQuantExecutor
from repro.quant.granularity import integer_range


def _abfloat_encode(values: np.ndarray, mantissa_bits: int) -> np.ndarray:
    """Encode outlier values as sign * 2^e * (1 + m/2^mb) with integer e, m."""
    magnitudes = np.maximum(np.abs(values), 1e-30)
    exponents = np.floor(np.log2(magnitudes))
    mantissa_steps = 2**mantissa_bits
    mantissas = np.round((magnitudes / 2.0**exponents - 1.0) * mantissa_steps)
    # A mantissa that rounds up to the next power of two carries into the exponent.
    carry = mantissas >= mantissa_steps
    exponents = exponents + carry
    mantissas = np.where(carry, 0, mantissas)
    decoded = 2.0**exponents * (1.0 + mantissas / mantissa_steps)
    return np.sign(values) * decoded


def _encode_outlier_victim(
    tensor: np.ndarray,
    bits: int,
    normal_range_factor: float,
) -> np.ndarray:
    """Apply OliVe's outlier-victim pair encoding to a tensor."""
    flat = tensor.reshape(-1)
    magnitude = np.abs(flat)
    # Robust bulk estimate: a Gaussian has max ~4-5 sigma and mean|x| ~ 0.8 sigma,
    # so normal_range_factor ~ 6 covers the bulk while excluding genuine outliers.
    bulk = float(magnitude.mean())
    normal_max = normal_range_factor * bulk if bulk > 0 else float(magnitude.max())
    if normal_max == 0.0:
        return tensor.copy()
    qmax = integer_range(bits)
    scale = normal_max / qmax

    outlier_mask = magnitude > normal_max
    result = np.clip(np.round(flat / scale), -qmax, qmax) * scale

    if outlier_mask.any():
        outlier_indices = np.nonzero(outlier_mask)[0]
        victim_indices = outlier_indices ^ 1
        victim_indices = victim_indices[victim_indices < flat.size]
        mantissa_bits = 3 if bits >= 8 else 1
        encoded = _abfloat_encode(flat[outlier_indices], mantissa_bits)
        result[victim_indices] = 0.0
        result[outlier_indices] = encoded
    return result.reshape(tensor.shape)


class OliVeExecutor(FakeQuantExecutor):
    """Outlier-victim pair encoding for activations and weights."""

    def __init__(
        self,
        bits: int,
        quantize_attention: bool = False,
        normal_range_factor: float = 6.0,
    ) -> None:
        super().__init__(bits, quantize_attention)
        self.normal_range_factor = normal_range_factor

    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:
        return _encode_outlier_victim(x, self.bits, self.normal_range_factor)

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        return _encode_outlier_victim(weight, self.bits, self.normal_range_factor)
