"""Block floating-point baselines: MSFP, SMX (shared microexponents), and MXFP.

These are the number formats Tender is compared against in Sections VI-B and
VI-C (Tables VI and VII):

* **MSFP12** (Microsoft floating point) — blocks of 16 elements along a row
  share an 8-bit exponent; each element keeps a sign and a small mantissa.
  ``MSFP12-OL`` is the paper's outlier-oriented variant that shares the
  exponent across 8 elements of a *column* instead.
* **SMX4** (shared microexponents) — two-level scaling: a block of 16
  elements shares an 8-bit exponent and every pair of elements shares an
  extra 1-bit subscale; elements carry very few mantissa bits.
* **MXFP4** (OCP Microscaling) — blocks of 32 elements share an 8-bit
  power-of-two scale and each element is an FP4 (E2M1) number.

All of them constrain scale factors to powers of two but group *adjacent*
elements, so a block that mixes an outlier channel with normal channels
crushes the normal values — which is exactly the failure mode Tables VI and
VII illustrate and Tender's range-based channel grouping avoids.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FakeQuantExecutor

#: FP4 E2M1 magnitude levels of the OCP MXFP4 element datatype.
_FP4_LEVELS = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0])


def _block_reshape(tensor: np.ndarray, block_size: int, axis: int) -> tuple:
    """Pad ``axis`` to a multiple of ``block_size`` and expose the block dim."""
    moved = np.moveaxis(tensor, axis, -1)
    length = moved.shape[-1]
    padded_length = ((length + block_size - 1) // block_size) * block_size
    pad = padded_length - length
    if pad:
        moved = np.concatenate([moved, np.zeros(moved.shape[:-1] + (pad,))], axis=-1)
    blocked = moved.reshape(moved.shape[:-1] + (padded_length // block_size, block_size))
    return blocked, length, moved.shape


def _block_restore(blocked: np.ndarray, length: int, moved_shape: tuple, axis: int) -> np.ndarray:
    merged = blocked.reshape(moved_shape)[..., :length]
    return np.moveaxis(merged, -1, axis)


def _power_of_two_scale(block_max: np.ndarray, element_max: float) -> np.ndarray:
    """Smallest power-of-two scale that fits ``block_max`` into ``element_max``."""
    safe = np.maximum(block_max, 1e-30)
    return np.power(2.0, np.ceil(np.log2(safe / element_max)))


def msfp_quantize(
    tensor: np.ndarray,
    mantissa_bits: int = 4,
    block_size: int = 16,
    axis: int = -1,
) -> np.ndarray:
    """MSFP: shared power-of-two exponent per block, integer mantissas."""
    blocked, length, moved_shape = _block_reshape(tensor, block_size, axis)
    qmax = 2 ** (mantissa_bits - 1) - 1
    block_max = np.abs(blocked).max(axis=-1, keepdims=True)
    scale = _power_of_two_scale(block_max, qmax)
    quantized = np.clip(np.round(blocked / scale), -qmax, qmax) * scale
    return _block_restore(quantized, length, moved_shape, axis)


def smx_quantize(
    tensor: np.ndarray,
    element_bits: int = 3,
    block_size: int = 16,
    subblock_size: int = 2,
    axis: int = -1,
) -> np.ndarray:
    """SMX: block shared exponent plus a 1-bit subscale per subblock."""
    blocked, length, moved_shape = _block_reshape(tensor, block_size, axis)
    qmax = max(2 ** (element_bits - 1) - 1, 1)
    block_max = np.abs(blocked).max(axis=-1, keepdims=True)
    scale = _power_of_two_scale(block_max, qmax)
    # 1-bit subscale: a subblock whose magnitude fits in half the range uses a
    # scale 2x finer.
    sub = blocked.reshape(blocked.shape[:-1] + (block_size // subblock_size, subblock_size))
    sub_max = np.abs(sub).max(axis=-1, keepdims=True)
    sub_scale = np.where(sub_max * 2.0 <= np.expand_dims(scale, -1) * qmax, 0.5, 1.0)
    effective_scale = np.expand_dims(scale, -1) * sub_scale
    quantized = np.clip(np.round(sub / effective_scale), -qmax, qmax) * effective_scale
    quantized = quantized.reshape(blocked.shape)
    return _block_restore(quantized, length, moved_shape, axis)


def mxfp4_quantize(tensor: np.ndarray, block_size: int = 32, axis: int = -1) -> np.ndarray:
    """MXFP4: shared power-of-two scale per block, FP4 (E2M1) elements."""
    blocked, length, moved_shape = _block_reshape(tensor, block_size, axis)
    block_max = np.abs(blocked).max(axis=-1, keepdims=True)
    scale = _power_of_two_scale(block_max, float(_FP4_LEVELS[-1]))
    normalized = blocked / scale
    signs = np.sign(normalized)
    magnitudes = np.abs(normalized)
    indices = np.searchsorted(_FP4_LEVELS, magnitudes)
    indices = np.clip(indices, 1, len(_FP4_LEVELS) - 1)
    lower = _FP4_LEVELS[indices - 1]
    upper = _FP4_LEVELS[indices]
    nearest = np.where(np.abs(magnitudes - lower) <= np.abs(magnitudes - upper), lower, upper)
    quantized = signs * nearest * scale
    return _block_restore(quantized, length, moved_shape, axis)


class MSFPExecutor(FakeQuantExecutor):
    """MSFP12 (row blocks) or MSFP12-OL (column blocks).

    Block sizes default to the paper's 16 (MSFP12) and 8 (MSFP12-OL) scaled by
    the ratio between the stand-in models' hidden size and the full-scale
    models' (DESIGN.md, "block-size scaling"): a block should cover a similar
    fraction of the channel dimension so that the outlier-per-block density is
    comparable to the paper's setting.
    """

    def __init__(
        self,
        outlier_variant: bool = False,
        quantize_attention: bool = False,
        block_size: int | None = None,
    ) -> None:
        super().__init__(bits=4, quantize_attention=quantize_attention)
        self.outlier_variant = outlier_variant
        self.block_axis = 0 if outlier_variant else -1
        self.block_size = block_size if block_size is not None else (4 if outlier_variant else 8)

    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:
        return msfp_quantize(x, mantissa_bits=4, block_size=self.block_size, axis=self.block_axis)

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        return msfp_quantize(weight, mantissa_bits=4, block_size=self.block_size, axis=0)


class SMXExecutor(FakeQuantExecutor):
    """SMX4: shared microexponents with 1-bit subscales (scaled block size)."""

    def __init__(self, quantize_attention: bool = False, block_size: int = 8) -> None:
        super().__init__(bits=4, quantize_attention=quantize_attention)
        self.block_size = block_size

    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:
        return smx_quantize(x, element_bits=2, block_size=self.block_size, subblock_size=2, axis=-1)

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        return smx_quantize(weight, element_bits=2, block_size=self.block_size, subblock_size=2, axis=0)


class MXFP4Executor(FakeQuantExecutor):
    """MXFP4: OCP microscaling FP4 blocks (scaled block size)."""

    def __init__(self, quantize_attention: bool = False, block_size: int = 8) -> None:
        super().__init__(bits=4, quantize_attention=quantize_attention)
        self.block_size = block_size

    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:
        return mxfp4_quantize(x, block_size=self.block_size, axis=-1)

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        return mxfp4_quantize(weight, block_size=self.block_size, axis=0)
