"""SmoothQuant baseline (Xiao et al., ICML 2023).

SmoothQuant migrates quantization difficulty from activations to weights: for
every linear layer it computes a per-input-channel smoothing factor

    s_j = max|X_j|^alpha / max|W_j|^(1 - alpha)

and rewrites ``Y = X W`` as ``Y = (X / s)(s W)``.  The scaled activation has a
flatter channel profile and quantizes well per-row/per-tensor, at the cost of
making the weight slightly harder to quantize.  The paper (Section II-C and
Tables II/III) finds SmoothQuant competitive at INT8 on OPT but fragile on the
Llama family and catastrophic at INT4 because it never isolates outliers.

The smoothing factors are computed from calibration statistics (activation
channel maxima) exactly as in the original method.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import QuantExecutorBase
from repro.errors import CalibrationError
from repro.quant.gemm import int_matmul
from repro.quant.granularity import Granularity, compute_scale
from repro.quant.observers import ActivationObserver
from repro.quant.quantize import quantize_symmetric


class SmoothQuantExecutor(QuantExecutorBase):
    """Per-layer activation-to-weight difficulty migration."""

    def __init__(
        self,
        bits: int,
        observer: ActivationObserver,
        migration_strength: float = 0.5,
        quantize_attention: bool = False,
    ) -> None:
        super().__init__(bits)
        if not 0.0 <= migration_strength <= 1.0:
            raise CalibrationError("migration_strength must be in [0, 1]")
        self.observer = observer
        self.migration_strength = migration_strength
        self.quantize_attention = quantize_attention
        self._smoothing_cache: Dict[str, np.ndarray] = {}
        self._smoothed_weight_cache: Dict[str, tuple] = {}

    def _smoothing_factors(self, name: str, weight: np.ndarray) -> np.ndarray:
        if name in self._smoothing_cache:
            return self._smoothing_cache[name]
        if name not in self.observer:
            raise CalibrationError(f"SmoothQuant has no calibration statistics for site {name!r}")
        activation_max = self.observer.get(name).channel_absmax
        weight_max = np.abs(weight).max(axis=1)
        alpha = self.migration_strength
        factors = np.power(np.maximum(activation_max, 1e-8), alpha) / np.power(
            np.maximum(weight_max, 1e-8), 1.0 - alpha
        )
        factors = np.maximum(factors, 1e-8)
        self._smoothing_cache[name] = factors
        return factors

    def _smoothed_weight(self, name: str, weight: np.ndarray):
        if name not in self._smoothed_weight_cache:
            factors = self._smoothing_factors(name, weight)
            smoothed = weight * factors[:, None]
            scale = compute_scale(smoothed, self.bits, Granularity.PER_COLUMN)
            values = quantize_symmetric(smoothed, scale, self.bits)
            self._smoothed_weight_cache[name] = (values, scale)
        return self._smoothed_weight_cache[name]

    def project(self, name, x, weight, bias):
        factors = self._smoothing_factors(name, weight)
        q_weight, w_scale = self._smoothed_weight(name, weight)
        smoothed_x = x / factors
        a_scale = compute_scale(smoothed_x, self.bits, Granularity.PER_ROW)
        q_x = quantize_symmetric(smoothed_x, a_scale, self.bits)
        out = int_matmul(q_x, q_weight).astype(np.float64) * a_scale * w_scale
        if bias is not None:
            out = out + bias
        return out

    def attention_matmul(self, name, a, b):
        if not self.quantize_attention:
            return a @ b
        # No weight to migrate into for activation-activation products;
        # fall back to per-row symmetric quantization of both operands.
        from repro.quant.quantize import fake_quantize

        a_dq = fake_quantize(a, self.bits, Granularity.PER_ROW)
        b_dq = fake_quantize(np.swapaxes(b, -1, -2), self.bits, Granularity.PER_ROW)
        return a_dq @ np.swapaxes(b_dq, -1, -2)
