"""Shared infrastructure for baseline quantization executors.

Every baseline in Tables I-IV, VI, VII is implemented as a
:class:`repro.models.inference.MatmulExecutor`.  This module provides the
common pieces: a weight-quantization cache, the uniform-granularity executor
used for Table I (per-tensor / per-row / per-column activation quantization),
and small helpers shared by the more elaborate schemes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.quant.gemm import int_matmul
from repro.quant.granularity import Granularity, compute_scale
from repro.quant.quantize import fake_quantize, quantize_symmetric


class QuantExecutorBase:
    """Base class holding a per-site cache of quantized weights."""

    def __init__(self, bits: int, weight_granularity: Granularity = Granularity.PER_COLUMN) -> None:
        self.bits = bits
        self.weight_granularity = weight_granularity
        self._weight_cache: Dict[str, tuple] = {}

    def _quantized_weight(self, name: str, weight: np.ndarray):
        """Quantize (and cache) the weight for one matmul site."""
        if name not in self._weight_cache:
            scale = compute_scale(weight, self.bits, self.weight_granularity)
            values = quantize_symmetric(weight, scale, self.bits)
            self._weight_cache[name] = (values, scale)
        return self._weight_cache[name]

    def attention_matmul(self, name, a, b):
        """Baselines leave activation-activation matmuls in floating point.

        This matches the paper's "fair comparison" setting for Table II, where
        quantization of matrix multiplication between activations is disabled
        for every scheme.  Schemes that do quantize them override this.
        """
        return a @ b


class UniformQuantExecutor(QuantExecutorBase):
    """Uniform symmetric activation quantization at a chosen granularity.

    Used by the Table I study.  Per-tensor and per-row activation scales are
    constant along the reduction axis, so those paths run on the emulated
    integer pipeline; per-column scales vary along the reduction axis and can
    only be realised as fake quantization (which is exactly why the paper
    calls per-column activation quantization impractical on integer
    hardware).
    """

    def __init__(
        self,
        bits: int,
        activation_granularity: Granularity = Granularity.PER_TENSOR,
        weight_granularity: Granularity = Granularity.PER_COLUMN,
        quantize_attention: bool = False,
    ) -> None:
        super().__init__(bits, weight_granularity)
        self.activation_granularity = activation_granularity
        self.quantize_attention = quantize_attention

    def project(self, name, x, weight, bias):
        q_weight, w_scale = self._quantized_weight(name, weight)
        if self.activation_granularity in (Granularity.PER_TENSOR, Granularity.PER_ROW):
            a_scale = compute_scale(x, self.bits, self.activation_granularity)
            q_x = quantize_symmetric(x, a_scale, self.bits)
            out = int_matmul(q_x, q_weight).astype(np.float64) * a_scale * w_scale
        else:
            # Per-column activation scales cannot ride through the integer
            # reduction; emulate with fake quantization (the accuracy upper
            # bound the paper reports in Table I).
            x_dq = fake_quantize(x, self.bits, self.activation_granularity)
            w_dq = q_weight.astype(np.float64) * w_scale
            out = x_dq @ w_dq
        if bias is not None:
            out = out + bias
        return out

    def attention_matmul(self, name, a, b):
        if not self.quantize_attention:
            return a @ b
        a_dq = fake_quantize(a, self.bits, Granularity.PER_ROW)
        b_dq = fake_quantize(np.swapaxes(b, -1, -2), self.bits, Granularity.PER_ROW)
        return a_dq @ np.swapaxes(b_dq, -1, -2)


class FakeQuantExecutor(QuantExecutorBase):
    """Executor template for schemes defined by an elementwise codec.

    Subclasses implement :meth:`encode_activation` / :meth:`encode_weight`
    returning the dequantized (reconstructed) tensors; the matmul itself runs
    in floating point over the reconstructions.  This is the standard way to
    evaluate the *accuracy* of custom-datatype schemes (ANT, OliVe, MSFP, MX)
    whose arithmetic is not representable in a plain integer pipeline.
    """

    def __init__(self, bits: int, quantize_attention: bool = False) -> None:
        super().__init__(bits)
        self.quantize_attention = quantize_attention
        self._encoded_weight_cache: Dict[str, np.ndarray] = {}

    # Subclass hooks -----------------------------------------------------
    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    # MatmulExecutor interface -------------------------------------------
    def _encoded_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        if name not in self._encoded_weight_cache:
            self._encoded_weight_cache[name] = self.encode_weight(name, weight)
        return self._encoded_weight_cache[name]

    def project(self, name, x, weight, bias):
        x_dq = self.encode_activation(name, x)
        w_dq = self._encoded_weight(name, weight)
        out = x_dq @ w_dq
        if bias is not None:
            out = out + bias
        return out

    def attention_matmul(self, name, a, b):
        if not self.quantize_attention:
            return a @ b
        a_dq = self.encode_activation(f"{name}.a", a.reshape(-1, a.shape[-1])).reshape(a.shape)
        b_t = np.swapaxes(b, -1, -2)
        b_dq = self.encode_activation(f"{name}.b", b_t.reshape(-1, b_t.shape[-1])).reshape(b_t.shape)
        return a_dq @ np.swapaxes(b_dq, -1, -2)
