"""ANT baseline (Guo et al., MICRO 2022): adaptive numerical datatypes.

ANT picks, per tensor, the datatype (integer, power-of-two, or the hybrid
"flint" float-int type) that minimises quantization error, and quantizes the
tensor with a per-tensor scale.  The decoder attached to ANT's systolic array
converts the chosen datatype into exponent + integer before the MAC.

For the accuracy study the relevant behaviour is the per-tensor granularity
combined with non-uniform codebooks: flint spends its levels near zero and on
a wide dynamic range, which helps bell-shaped tensors but — as Tables II and
III show — still cannot isolate strong channel outliers, so ANT degrades
noticeably on the OPT family and at INT4.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.base import FakeQuantExecutor
from repro.quant.granularity import integer_range


def _int_codebook(bits: int) -> np.ndarray:
    """Symmetric uniform integer codebook, normalized to [-1, 1]."""
    qmax = integer_range(bits)
    return np.arange(-qmax, qmax + 1, dtype=np.float64) / qmax


def _pot_codebook(bits: int) -> np.ndarray:
    """Power-of-two codebook: ±2^-k levels plus zero, normalized to [-1, 1]."""
    num_levels = 2 ** (bits - 1) - 1
    magnitudes = np.array([2.0**-k for k in range(num_levels)], dtype=np.float64)
    codebook = np.concatenate([-magnitudes, [0.0], magnitudes])
    return np.unique(codebook)


def _flint_codebook(bits: int) -> np.ndarray:
    """Flint codebook: float-int hybrid levels, normalized to [-1, 1].

    Following the ANT description, flint mixes exponent and mantissa bits so
    that small magnitudes get dense levels and large magnitudes keep dynamic
    range.  The codebook below enumerates ``mantissa * 2^-exponent`` with a
    mantissa width that shrinks as the exponent grows, truncated to the
    2^bits - 1 most useful levels.
    """
    levels = [0.0]
    max_exponent = 2 ** (bits - 1)
    for exponent in range(max_exponent):
        mantissa_bits = max(bits - 2 - exponent // 2, 1)
        for mantissa in range(1, 2**mantissa_bits + 1):
            value = (mantissa / 2**mantissa_bits) * 2.0**-exponent
            levels.append(value)
    levels = np.unique(np.asarray(levels))
    # Keep the largest distinct levels so the codebook has 2^(bits-1) positive entries.
    positive = np.sort(levels)[-(2 ** (bits - 1) - 1) :]
    return np.unique(np.concatenate([-positive, [0.0], positive]))


_CODEBOOK_BUILDERS = {
    "int": _int_codebook,
    "pot": _pot_codebook,
    "flint": _flint_codebook,
}


def quantize_to_codebook(values: np.ndarray, codebook: np.ndarray, scale: float) -> np.ndarray:
    """Map ``values`` to the nearest codebook entry (codebook is in [-1, 1])."""
    normalized = values / scale
    clipped = np.clip(normalized, codebook[0], codebook[-1])
    positions = np.searchsorted(codebook, clipped)
    positions = np.clip(positions, 1, len(codebook) - 1)
    left = codebook[positions - 1]
    right = codebook[positions]
    nearest = np.where(np.abs(clipped - left) <= np.abs(clipped - right), left, right)
    return nearest * scale


class ANTExecutor(FakeQuantExecutor):
    """Per-tensor adaptive datatype selection (int / power-of-two / flint)."""

    def __init__(self, bits: int, quantize_attention: bool = False) -> None:
        super().__init__(bits, quantize_attention)
        self._codebooks = {name: builder(bits) for name, builder in _CODEBOOK_BUILDERS.items()}
        #: Datatype chosen per site, exposed for tests and analysis.
        self.chosen_datatypes: Dict[str, str] = {}

    def _encode(self, name: str, tensor: np.ndarray) -> np.ndarray:
        scale = float(np.abs(tensor).max())
        if scale == 0.0:
            return tensor.copy()
        best_name, best_error, best_values = None, np.inf, None
        for datatype, codebook in self._codebooks.items():
            candidate = quantize_to_codebook(tensor, codebook, scale)
            error = float(np.mean((candidate - tensor) ** 2))
            if error < best_error:
                best_name, best_error, best_values = datatype, error, candidate
        self.chosen_datatypes[name] = best_name
        return best_values

    def encode_activation(self, name: str, x: np.ndarray) -> np.ndarray:
        return self._encode(f"{name}.act", x)

    def encode_weight(self, name: str, weight: np.ndarray) -> np.ndarray:
        return self._encode(f"{name}.weight", weight)
