"""Quantization baselines the paper compares Tender against."""

from repro.baselines.ant import ANTExecutor, quantize_to_codebook
from repro.baselines.base import FakeQuantExecutor, QuantExecutorBase, UniformQuantExecutor
from repro.baselines.blockfloat import (
    MSFPExecutor,
    MXFP4Executor,
    SMXExecutor,
    msfp_quantize,
    mxfp4_quantize,
    smx_quantize,
)
from repro.baselines.llm_int8 import LLMInt8Executor
from repro.baselines.olive import OliVeExecutor
from repro.baselines.registry import (
    SCHEME_REGISTRY,
    SchemeRequest,
    available_schemes,
    build_executor,
    build_runner,
)
from repro.baselines.rptq import RPTQExecutor, kmeans_1d
from repro.baselines.smoothquant import SmoothQuantExecutor

__all__ = [
    "QuantExecutorBase",
    "UniformQuantExecutor",
    "FakeQuantExecutor",
    "SmoothQuantExecutor",
    "LLMInt8Executor",
    "ANTExecutor",
    "quantize_to_codebook",
    "OliVeExecutor",
    "MSFPExecutor",
    "SMXExecutor",
    "MXFP4Executor",
    "msfp_quantize",
    "smx_quantize",
    "mxfp4_quantize",
    "RPTQExecutor",
    "kmeans_1d",
    "SchemeRequest",
    "SCHEME_REGISTRY",
    "available_schemes",
    "build_executor",
    "build_runner",
]
