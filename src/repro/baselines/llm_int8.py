"""LLM.int8() baseline (Dettmers et al., NeurIPS 2022).

LLM.int8() keeps the few activation channels whose magnitude exceeds a fixed
threshold in 16-bit floating point and quantizes everything else to INT8
(vector-wise: per-row activations x per-column weights).  The outlier part and
the normal part are multiplied separately and summed — the "mixed-precision
decomposition" whose dequantization overhead the paper discusses in
Sections II-C and III-B (Figure 5a).

Accuracy-wise the scheme is strong (outliers are exact); its cost is the extra
floating-point GEMM, which is what the GPU latency model (Figure 12) and the
accelerator comparison charge it for.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import QuantExecutorBase
from repro.quant.gemm import int_matmul
from repro.quant.granularity import Granularity, compute_scale
from repro.quant.quantize import quantize_symmetric


class LLMInt8Executor(QuantExecutorBase):
    """Mixed-precision decomposition with a magnitude threshold."""

    def __init__(self, bits: int = 8, outlier_threshold: float = 6.0) -> None:
        super().__init__(bits)
        self.outlier_threshold = outlier_threshold
        #: Count of outlier columns seen, useful for tests / the GPU model.
        self.outlier_columns_seen = 0

    def project(self, name, x, weight, bias):
        channel_max = np.abs(x).max(axis=0)
        outlier_mask = channel_max > self.outlier_threshold
        self.outlier_columns_seen += int(outlier_mask.sum())
        normal_mask = ~outlier_mask

        out = np.zeros((x.shape[0], weight.shape[1]), dtype=np.float64)
        if normal_mask.any():
            x_normal = x[:, normal_mask]
            w_normal = weight[normal_mask, :]
            a_scale = compute_scale(x_normal, self.bits, Granularity.PER_ROW)
            w_scale = compute_scale(w_normal, self.bits, Granularity.PER_COLUMN)
            q_x = quantize_symmetric(x_normal, a_scale, self.bits)
            q_w = quantize_symmetric(w_normal, w_scale, self.bits)
            out += int_matmul(q_x, q_w).astype(np.float64) * a_scale * w_scale
        if outlier_mask.any():
            # Outlier channels stay in floating point (FP16 in the original).
            out += x[:, outlier_mask] @ weight[outlier_mask, :]
        if bias is not None:
            out = out + bias
        return out
