"""RPTQ-style baseline (Yuan et al., 2023): reorder-based clustering PTQ.

RPTQ groups activation channels by K-means clustering on their value ranges
and quantizes each cluster with its own (asymmetric) parameters.  The paper
discusses it in Related Work as the closest algorithmic relative of Tender's
decomposition, with two drawbacks Tender removes: clustering is too expensive
to run at runtime, and each cluster's partial product must be explicitly
dequantized and accumulated (shorter reduction axes, more FP work).

The reproduction clusters channel (min, max) ranges with a small K-means and
runs the per-cluster matmuls with explicit FP accumulation — the accuracy
reference point for "grouping without the power-of-two constraint".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import QuantExecutorBase
from repro.errors import CalibrationError
from repro.quant.gemm import int_matmul
from repro.quant.granularity import Granularity, compute_scale, integer_range
from repro.quant.observers import ActivationObserver
from repro.quant.quantize import quantize_symmetric


def kmeans_1d(values: np.ndarray, num_clusters: int, iterations: int = 25, seed: int = 0) -> np.ndarray:
    """Tiny 1-D K-means returning the cluster index of each value."""
    values = np.asarray(values, dtype=np.float64)
    unique = np.unique(values)
    num_clusters = min(num_clusters, unique.size)
    rng = np.random.default_rng(seed)
    centers = np.sort(rng.choice(unique, size=num_clusters, replace=False))
    assignment = np.zeros(values.shape, dtype=np.int64)
    for _ in range(iterations):
        assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        new_centers = centers.copy()
        for cluster in range(num_clusters):
            members = values[assignment == cluster]
            if members.size:
                new_centers[cluster] = members.mean()
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    return assignment


class RPTQExecutor(QuantExecutorBase):
    """Cluster channels by calibrated range; per-cluster scales, explicit accumulate."""

    def __init__(
        self,
        bits: int,
        observer: ActivationObserver,
        num_clusters: int = 8,
    ) -> None:
        super().__init__(bits)
        self.observer = observer
        self.num_clusters = num_clusters
        self._clusters: Dict[str, np.ndarray] = {}

    def _cluster_assignment(self, name: str) -> np.ndarray:
        if name not in self._clusters:
            if name not in self.observer:
                raise CalibrationError(f"RPTQ has no calibration statistics for site {name!r}")
            channel_absmax = self.observer.get(name).channel_absmax
            self._clusters[name] = kmeans_1d(np.log2(channel_absmax + 1e-8), self.num_clusters)
        return self._clusters[name]

    def project(self, name, x, weight, bias):
        assignment = self._cluster_assignment(name)
        q_weight, w_scale = self._quantized_weight(name, weight)
        qmax = integer_range(self.bits)
        out = np.zeros((x.shape[0], weight.shape[1]), dtype=np.float64)
        for cluster in np.unique(assignment):
            channels = np.nonzero(assignment == cluster)[0]
            x_part = x[:, channels]
            scale = max(float(np.abs(x_part).max()) / qmax, 1e-12)
            q_x = quantize_symmetric(x_part, np.asarray(scale), self.bits)
            partial = int_matmul(q_x, q_weight[channels, :]).astype(np.float64)
            out += partial * scale * w_scale
        if bias is not None:
            out = out + bias
        return out
