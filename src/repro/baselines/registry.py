"""Scheme registry: build any quantization scheme by name.

The evaluation harness (``repro.eval``) and the experiment modules refer to
quantization schemes by the names used in the paper's tables ("SmoothQuant",
"ANT", "OliVe", "Tender", ...).  This registry maps those names to executor
factories so that every experiment is a declarative list of scheme names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.ant import ANTExecutor
from repro.baselines.base import UniformQuantExecutor
from repro.baselines.blockfloat import MSFPExecutor, MXFP4Executor, SMXExecutor
from repro.baselines.llm_int8 import LLMInt8Executor
from repro.baselines.olive import OliVeExecutor
from repro.baselines.rptq import RPTQExecutor
from repro.baselines.smoothquant import SmoothQuantExecutor
from repro.core.config import TenderConfig
from repro.core.executor import TenderQuantizer
from repro.errors import ConfigurationError
from repro.models.inference import FloatExecutor, MatmulExecutor, TransformerRunner, run_calibration
from repro.models.weights import ModelWeights
from repro.quant.granularity import Granularity


@dataclass
class SchemeRequest:
    """Everything a scheme factory may need to build its executor."""

    weights: ModelWeights
    calibration: Sequence[np.ndarray]
    bits: int = 8
    quantize_attention: bool = False
    classify: bool = False
    #: Extra per-scheme options (e.g. Tender's number of groups).
    options: Optional[dict] = None

    def option(self, key: str, default):
        if self.options and key in self.options:
            return self.options[key]
        return default


SchemeFactory = Callable[[SchemeRequest], MatmulExecutor]


def _needs_observer(request: SchemeRequest):
    return run_calibration(request.weights, list(request.calibration), classify=request.classify)


def _build_fp(request: SchemeRequest) -> MatmulExecutor:
    return FloatExecutor()


def _build_uniform(granularity: Granularity) -> SchemeFactory:
    def factory(request: SchemeRequest) -> MatmulExecutor:
        return UniformQuantExecutor(
            bits=request.bits,
            activation_granularity=granularity,
            quantize_attention=request.quantize_attention,
        )

    return factory


def _build_smoothquant(request: SchemeRequest) -> MatmulExecutor:
    observer = _needs_observer(request)
    return SmoothQuantExecutor(
        bits=request.bits,
        observer=observer,
        migration_strength=request.option("migration_strength", 0.5),
        quantize_attention=request.quantize_attention,
    )


def _build_llm_int8(request: SchemeRequest) -> MatmulExecutor:
    return LLMInt8Executor(bits=request.bits, outlier_threshold=request.option("outlier_threshold", 6.0))


def _build_ant(request: SchemeRequest) -> MatmulExecutor:
    return ANTExecutor(bits=request.bits, quantize_attention=request.quantize_attention)


def _build_olive(request: SchemeRequest) -> MatmulExecutor:
    return OliVeExecutor(bits=request.bits, quantize_attention=request.quantize_attention)


def _build_rptq(request: SchemeRequest) -> MatmulExecutor:
    observer = _needs_observer(request)
    return RPTQExecutor(
        bits=request.bits, observer=observer, num_clusters=request.option("num_clusters", 8)
    )


def _build_msfp(outlier_variant: bool) -> SchemeFactory:
    def factory(request: SchemeRequest) -> MatmulExecutor:
        return MSFPExecutor(outlier_variant=outlier_variant, quantize_attention=request.quantize_attention)

    return factory


def _build_smx(request: SchemeRequest) -> MatmulExecutor:
    return SMXExecutor(quantize_attention=request.quantize_attention)


def _build_mxfp4(request: SchemeRequest) -> MatmulExecutor:
    return MXFP4Executor(quantize_attention=request.quantize_attention)


def _build_tender(request: SchemeRequest) -> MatmulExecutor:
    config = TenderConfig(
        bits=request.bits,
        num_groups=request.option("num_groups", 8),
        alpha=request.option("alpha", 2),
        row_chunk_size=request.option("row_chunk_size", 64),
        quantize_attention=request.quantize_attention,
        subtract_bias=request.option("subtract_bias", True),
    )
    quantizer = TenderQuantizer(config, implicit=request.option("implicit", True))
    quantizer.calibrate(request.weights, list(request.calibration), classify=request.classify)
    return quantizer.build_executor()


#: Scheme name -> factory.  Names match the paper's tables; lower-case aliases
#: are accepted by :func:`build_executor`.
SCHEME_REGISTRY: Dict[str, SchemeFactory] = {
    "Base": _build_fp,
    "FP16": _build_fp,
    "INT8 per-tensor": _build_uniform(Granularity.PER_TENSOR),
    "INT8 per-row": _build_uniform(Granularity.PER_ROW),
    "INT8 per-column": _build_uniform(Granularity.PER_COLUMN),
    "per-tensor": _build_uniform(Granularity.PER_TENSOR),
    "per-row": _build_uniform(Granularity.PER_ROW),
    "per-column": _build_uniform(Granularity.PER_COLUMN),
    "SmoothQuant": _build_smoothquant,
    "LLM.int8": _build_llm_int8,
    "ANT": _build_ant,
    "OliVe": _build_olive,
    "RPTQ": _build_rptq,
    "MSFP12": _build_msfp(outlier_variant=False),
    "MSFP12-OL": _build_msfp(outlier_variant=True),
    "SMX4": _build_smx,
    "MXFP4": _build_mxfp4,
    "Tender": _build_tender,
}


def available_schemes() -> List[str]:
    """Names accepted by :func:`build_executor`."""
    return sorted(SCHEME_REGISTRY)


def build_executor(scheme: str, request: SchemeRequest) -> MatmulExecutor:
    """Build the executor for ``scheme``; raises for unknown names."""
    key = scheme
    if key not in SCHEME_REGISTRY:
        matches = [name for name in SCHEME_REGISTRY if name.lower() == scheme.lower()]
        if not matches:
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; available: {available_schemes()}"
            )
        key = matches[0]
    return SCHEME_REGISTRY[key](request)


def build_runner(scheme: str, request: SchemeRequest) -> TransformerRunner:
    """Build a ready-to-evaluate :class:`TransformerRunner` for ``scheme``."""
    executor = build_executor(scheme, request)
    return TransformerRunner(request.weights, executor)
