"""Tests of Tender's channel decomposition (power-of-alpha classification)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    compute_channel_bias,
    decompose_channels,
    quantize_decomposed,
    validate_decomposition,
)
from repro.errors import QuantizationError
from repro.quant import integer_range


class TestChannelBias:
    def test_midpoint_of_max_and_min(self):
        bias = compute_channel_bias(np.array([4.0, 10.0]), np.array([-2.0, 6.0]))
        np.testing.assert_allclose(bias, [1.0, 8.0])

    def test_symmetric_channel_has_zero_bias(self):
        bias = compute_channel_bias(np.array([3.0]), np.array([-3.0]))
        np.testing.assert_allclose(bias, [0.0])

    def test_bias_subtraction_never_increases_absmax(self, rng):
        """The property the paper relies on: bias centering optimizes bit usage."""
        values = rng.normal(size=(64, 16)) + rng.normal(size=16) * 5
        channel_max = values.max(axis=0)
        channel_min = values.min(axis=0)
        bias = compute_channel_bias(channel_max, channel_min)
        before = np.abs(values).max(axis=0)
        after = np.abs(values - bias).max(axis=0)
        assert (after <= before + 1e-12).all()


class TestDecomposeChannels:
    def test_classification_rule_equation3(self):
        cmax = np.array([22.4, 11.2 + 1e-9, 5.0, 1.0, 22.4 / 2**5])
        decomposition = decompose_channels(cmax, num_groups=4, bits=8)
        validate_decomposition(decomposition, cmax)
        # Largest channel is always in group 0.
        assert decomposition.group_of_channel[0] == 0
        # Channels below TMax / alpha^G are clamped into the last group.
        assert decomposition.group_of_channel[4] == 3

    def test_group_scales_are_powers_of_alpha_apart(self):
        cmax = np.array([16.0, 8.0, 4.0, 1.0])
        decomposition = decompose_channels(cmax, num_groups=5, bits=8, alpha=2)
        ratios = decomposition.group_scales[:-1] / decomposition.group_scales[1:]
        np.testing.assert_allclose(ratios, 2.0)

    def test_alpha_other_than_two(self):
        cmax = np.array([27.0, 9.0, 3.0, 1.0])
        decomposition = decompose_channels(cmax, num_groups=4, bits=8, alpha=3)
        ratios = decomposition.group_scales[:-1] / decomposition.group_scales[1:]
        np.testing.assert_allclose(ratios, 3.0)
        validate_decomposition(decomposition, cmax)

    def test_top_scale_covers_tensor_max(self):
        cmax = np.array([10.0, 1.0, 0.3])
        decomposition = decompose_channels(cmax, num_groups=4, bits=4)
        assert decomposition.group_scales[0] == pytest.approx(10.0 / integer_range(4))

    def test_channel_order_sorted_by_group(self):
        cmax = np.array([1.0, 16.0, 2.0, 8.0])
        decomposition = decompose_channels(cmax, num_groups=5, bits=8)
        groups_in_order = decomposition.group_of_channel[decomposition.channel_order]
        assert (np.diff(groups_in_order) >= 0).all()

    def test_group_sizes_sum_to_channels(self):
        cmax = np.abs(np.random.default_rng(0).normal(size=37)) + 0.01
        decomposition = decompose_channels(cmax, num_groups=6, bits=8)
        assert decomposition.group_sizes.sum() == 37
        assert decomposition.num_channels == 37

    def test_group_boundaries_count(self):
        cmax = np.array([8.0, 4.0, 2.0, 1.0])
        decomposition = decompose_channels(cmax, num_groups=4, bits=8)
        assert decomposition.group_boundaries().shape == (3,)

    def test_single_group_degenerates_to_per_tensor(self):
        cmax = np.array([5.0, 1.0, 0.1])
        decomposition = decompose_channels(cmax, num_groups=1, bits=8)
        assert (decomposition.group_of_channel == 0).all()

    def test_all_zero_tensor_handled(self):
        decomposition = decompose_channels(np.zeros(8), num_groups=4, bits=8)
        assert decomposition.group_sizes.sum() == 8
        assert (decomposition.group_scales > 0).all()

    def test_rejects_negative_cmax(self):
        with pytest.raises(QuantizationError):
            decompose_channels(np.array([-1.0, 2.0]), num_groups=2, bits=8)

    def test_rejects_bad_shapes_and_groups(self):
        with pytest.raises(QuantizationError):
            decompose_channels(np.ones((2, 2)), num_groups=2, bits=8)
        with pytest.raises(QuantizationError):
            decompose_channels(np.ones(4), num_groups=0, bits=8)

    def test_validate_detects_wrong_assignment(self):
        cmax = np.array([16.0, 1.0])
        decomposition = decompose_channels(cmax, num_groups=4, bits=8)
        decomposition.group_of_channel[0] = 3  # deliberately corrupt
        with pytest.raises(QuantizationError):
            validate_decomposition(decomposition, cmax)

    @given(
        arrays(np.float64, st.integers(2, 48).map(lambda n: (n,)), elements=st.floats(0.0, 1e4)),
        st.integers(1, 16),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_equation3_invariant_property(self, cmax, num_groups, bits):
        decomposition = decompose_channels(cmax, num_groups=num_groups, bits=bits)
        validate_decomposition(decomposition, cmax)
        assert decomposition.group_sizes.sum() == cmax.shape[0]
        # Every channel belongs to exactly one group in range.
        assert decomposition.group_of_channel.min() >= 0
        assert decomposition.group_of_channel.max() < num_groups


class TestQuantizeDecomposed:
    def test_values_within_bit_range(self, rng):
        values = rng.normal(size=(32, 16)) * np.exp(rng.normal(size=16) * 2)
        cmax = np.abs(values).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=8, bits=4)
        quantized, scales = quantize_decomposed(values, decomposition)
        assert quantized.max() <= integer_range(4)
        assert quantized.min() >= -integer_range(4)
        assert scales.shape == (16,)

    def test_guaranteed_quantization_level_lower_bound(self, rng):
        """The 'why 2' property: every channel uses at least half the levels.

        A channel's CMax is more than half its group's upper threshold, so the
        largest quantized magnitude in each channel is at least (qmax-1)/2.
        """
        values = rng.uniform(-1, 1, size=(256, 24)) * np.exp(rng.uniform(0, 6, size=24))
        cmax = np.abs(values).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=12, bits=8)
        quantized, _ = quantize_decomposed(values, decomposition)
        per_channel_peak = np.abs(quantized).max(axis=0)
        assert (per_channel_peak >= (integer_range(8) - 1) // 2).all()

    def test_reconstruction_error_bounded_by_channel_scale(self, rng):
        values = rng.normal(size=(64, 12)) * np.exp(rng.normal(size=12))
        cmax = np.abs(values).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=8, bits=8)
        quantized, scales = quantize_decomposed(values, decomposition)
        error = np.abs(quantized * scales - values)
        assert (error <= scales * 0.5 + 1e-12).all()
