"""Parity of the gather-free paged attention kernel with the dense reference.

``paged_attention`` reads K/V from ``PagedKVCache`` block storage through
zero-copy consecutive-run views and must reproduce the gather-then-dense
attention of ``TransformerRunner._attention_cached``: the attention
*probabilities* are bit-identical by construction (same assembled scores,
same mask, same shared softmax), single-run rows are bit-identical through
the SV product too, and multi-run rows may differ only by the final-sum
rounding of the context accumulation (~1e-15, squashed by Tender's static
requantization of every subsequent matmul — see the serving sweeps in
``tests/serve/test_fused_paged_attention.py`` for the end-to-end
bit-identical bar).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import paged_attention
from repro.serve import PagedKVCache
from repro.tensor.ops import softmax

BLOCK = 4


def dense_reference(queries, view, layer, positions, valid=None):
    """The gather-then-dense attention math, expression for expression."""
    d_head = queries.shape[-1]
    attended = int(positions.max()) + 1
    cached_keys, cached_values = view.view(layer, attended)
    scores = (queries @ np.swapaxes(cached_keys, -1, -2)) / np.sqrt(d_head)
    hidden = np.arange(attended)[None, None, None, :] > positions[:, None, :, None]
    scores = np.where(hidden, -1e9, scores)
    attention = softmax(scores, axis=-1)
    if valid is not None and not valid.all():
        attention = np.where(valid[:, None, :, None], attention, attention[:, :, :1, :])
    return attention @ cached_values, attention


def fill_slots(pool, rng, lengths, *, fragment=False):
    """Reserve one slot per length (optionally fragmenting the free list)."""
    if fragment:
        # Interleave reserve/free so later tables span non-consecutive blocks.
        holes = [pool.reserve(BLOCK) for _ in range(3)]
        for hole in holes[::2]:
            pool.free(hole)
    slots = []
    for length in lengths:
        slot = pool.reserve(length)
        keys = rng.normal(size=(1, 2, length, BLOCK))
        values = rng.normal(size=(1, 2, length, BLOCK))
        pool.write(0, [slot], keys, values, np.arange(length)[None, :])
        pool.set_length(slot, length)
        slots.append(slot)
    return slots


def run_both(pool, slots, rng, positions, valid=None, q_len=1):
    view = pool.view(slots)
    queries = rng.normal(size=(len(slots), 2, q_len, BLOCK))
    key_pool, value_pool, runs, block_size = view.attention_operands(0)
    fused = paged_attention(queries, key_pool, value_pool, runs, block_size, positions, valid)
    reference, attention = dense_reference(queries, view, 0, positions, valid)
    return fused, reference, attention, runs


class TestDecodeParity:
    @pytest.mark.parametrize("length", [BLOCK, BLOCK + 1, 3 * BLOCK, 3 * BLOCK + 1])
    def test_block_boundary_contexts_bitwise(self, rng, length):
        """Contexts exactly at and one past a block multiple, fresh slots.

        Fresh reservations get consecutive blocks (one run per row), so the
        whole context — not just the probabilities — is bit-identical.
        """
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [length, length])
        positions = np.full((2, 1), length - 1)
        fused, reference, _, runs = run_both(pool, slots, rng, positions)
        assert all(len(row_runs) == 1 for row_runs in runs)
        np.testing.assert_array_equal(fused, reference)

    def test_fragmented_tables_multi_run(self, rng):
        """Non-consecutive block tables: probabilities exact, context ~1e-15."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [3 * BLOCK, 2 * BLOCK + 2], fragment=True)
        positions = np.array([[3 * BLOCK - 1], [2 * BLOCK + 1]])
        fused, reference, _, runs = run_both(pool, slots, rng, positions)
        assert any(len(row_runs) > 1 for row_runs in runs)
        np.testing.assert_allclose(fused, reference, rtol=0.0, atol=1e-12)

    def test_ragged_batch(self, rng):
        """Short rows see zero-filled history past their reservation, masked."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [11, 5, 8])
        positions = np.array([[10], [4], [7]])
        fused, reference, _, _ = run_both(pool, slots, rng, positions)
        np.testing.assert_allclose(fused, reference, rtol=0.0, atol=1e-12)

    def test_masked_probabilities_are_exact_zero(self, rng):
        """Masked columns carry exactly-zero probability in both paths, so
        skipping them in the per-run SV product is an exact no-op."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [9, 5])
        positions = np.array([[8], [4]])
        _, _, attention, _ = run_both(pool, slots, rng, positions)
        assert (attention[1, :, :, 5:] == 0.0).all()


class TestMultiTokenQueries:
    def test_verify_shaped_window_bitwise(self, rng):
        """q_len > 1 with per-token positions — the speculative verify shape."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [10, 10])
        positions = np.stack([np.arange(7, 10), np.arange(7, 10)])
        fused, reference, _, _ = run_both(pool, slots, rng, positions, q_len=3)
        np.testing.assert_array_equal(fused, reference)

    def test_valid_mask_replicates_padding_neutralisation(self, rng):
        """Padded rows take the first row's probabilities, as in the dense path."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [9, 6])
        positions = np.stack([np.arange(6, 9), np.arange(3, 6)])
        valid = np.array([[True, True, True], [True, True, False]])
        fused, reference, _, _ = run_both(pool, slots, rng, positions, valid=valid, q_len=3)
        np.testing.assert_array_equal(fused, reference)


class TestStorageContract:
    def test_run_views_share_pool_memory(self, rng):
        """The kernel's per-run K/V views must alias pool storage (no copy)."""
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [3 * BLOCK])
        view = pool.view(slots)
        key_pool, _, runs, block_size = view.attention_operands(0)
        (first_index, first_physical, count) = runs[0][0]
        run_view = key_pool[:, first_physical : first_physical + count].reshape(
            2, count * block_size, BLOCK
        )
        assert np.shares_memory(run_view, pool.key_blocks[0])

    def test_gather_tallies_bytes_fused_path_does_not(self, rng):
        pool = PagedKVCache(num_layers=1, num_heads=2, d_head=BLOCK, block_size=BLOCK, num_blocks=16)
        slots = fill_slots(pool, rng, [8, 8])
        view = pool.view(slots)
        queries = rng.normal(size=(2, 2, 1, BLOCK))
        positions = np.array([[7], [7]])
        assert pool.gather_bytes == 0
        key_pool, value_pool, runs, block_size = view.attention_operands(0)
        paged_attention(queries, key_pool, value_pool, runs, block_size, positions)
        assert pool.gather_bytes == 0
        view.view(0, 8)
        assert pool.gather_bytes == 2 * 2 * 2 * 8 * BLOCK * 8  # k+v, rows, heads, len, d, f64
