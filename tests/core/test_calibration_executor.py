"""Tests of Tender calibration and the Tender matmul executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderExecutor, TenderQuantizer, calibrate_tender
from repro.errors import CalibrationError, ConfigurationError
from repro.models import TransformerRunner
from repro.quant import Granularity, compute_scale
from repro.quant.quantize import fake_quantize


class TestTenderConfig:
    def test_defaults_valid(self):
        config = TenderConfig()
        assert config.bits == 8 and config.alpha == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bits": 1},
            {"bits": 16},
            {"num_groups": 0},
            {"alpha": 1},
            {"row_chunk_size": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenderConfig(**kwargs)


class TestCalibration:
    def test_covers_all_projection_sites(self, outlier_weights, calibration):
        params = calibrate_tender(outlier_weights, calibration, TenderConfig(row_chunk_size=16))
        expected_sites = {"lm_head"}
        for layer in range(outlier_weights.num_layers):
            for proj in ("q_proj", "k_proj", "v_proj", "out_proj"):
                expected_sites.add(f"block{layer}.attn.{proj}")
            for proj in ("fc1", "fc2"):
                expected_sites.add(f"block{layer}.ffn.{proj}")
        assert expected_sites == set(params)

    def test_row_chunking_creates_multiple_chunks(self, outlier_weights, calibration):
        params = calibrate_tender(outlier_weights, calibration, TenderConfig(row_chunk_size=16))
        site = params["block0.attn.q_proj"]
        # Calibration sequences are 48 tokens, so 3 chunks of 16 rows.
        assert len(site.chunks) == 3

    def test_chunk_index_clamps_to_last(self, outlier_weights, calibration):
        params = calibrate_tender(outlier_weights, calibration, TenderConfig(row_chunk_size=16))
        site = params["block0.attn.q_proj"]
        assert site.chunk(999) is site.chunks[-1]

    def test_empty_samples_rejected(self, outlier_weights):
        with pytest.raises(CalibrationError):
            calibrate_tender(outlier_weights, [], TenderConfig())

    def test_bias_disabled_gives_zero_bias(self, outlier_weights, calibration):
        params = calibrate_tender(
            outlier_weights, calibration, TenderConfig(subtract_bias=False, row_chunk_size=32)
        )
        chunk = params["block0.attn.q_proj"].chunks[0]
        np.testing.assert_allclose(chunk.bias, 0.0)

    def test_decomposition_identifies_outlier_channels(self, outlier_weights, calibration):
        params = calibrate_tender(outlier_weights, calibration, TenderConfig(num_groups=8, row_chunk_size=32))
        chunk = params["block0.attn.q_proj"].chunks[0]
        outlier_channels = outlier_weights.outlier_channels
        groups = chunk.decomposition.group_of_channel
        normal_channels = np.setdiff1d(np.arange(groups.shape[0]), outlier_channels)
        assert groups[outlier_channels].mean() < groups[normal_channels].mean()


class TestTenderExecutor:
    def test_projection_close_to_float_reference(self, outlier_weights, calibration, eval_tokens):
        from repro.models import capture_activations

        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16)
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        block = outlier_weights.blocks[0]
        # Static calibration only applies to in-distribution activations, so
        # probe with the model's actual attention input.
        x = capture_activations(outlier_weights, eval_tokens[:32])["block0.attn.q_proj"]
        result = executor.project("block0.attn.q_proj", x, block.attn.wq, block.attn.bq)
        reference = x @ block.attn.wq + block.attn.bq
        relative = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        # Tender should track the (impractical-in-hardware) dynamic per-column
        # reference and clearly beat per-row quantization on this outlier site.
        per_column = fake_quantize(x, 8, Granularity.PER_COLUMN) @ fake_quantize(
            block.attn.wq, 8, Granularity.PER_COLUMN
        ) + block.attn.bq
        per_row = fake_quantize(x, 8, Granularity.PER_ROW) @ fake_quantize(
            block.attn.wq, 8, Granularity.PER_COLUMN
        ) + block.attn.bq
        per_column_rel = np.linalg.norm(per_column - reference) / np.linalg.norm(reference)
        per_row_rel = np.linalg.norm(per_row - reference) / np.linalg.norm(reference)
        assert relative < per_column_rel * 1.5
        assert relative < per_row_rel * 0.6

    def test_unknown_site_raises(self, outlier_weights, calibration, rng):
        config = TenderConfig()
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        with pytest.raises(CalibrationError):
            executor.project("not.a.site", rng.normal(size=(4, 8)), rng.normal(size=(8, 4)), None)

    def test_implicit_and_explicit_paths_match(self, outlier_weights, calibration, eval_tokens):
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16)
        quantizer = TenderQuantizer(config, implicit=True)
        implicit_runner = quantizer.quantize(outlier_weights, calibration)
        explicit_runner = TransformerRunner(
            outlier_weights, TenderQuantizer(config, implicit=False).quantize(outlier_weights, calibration).executor
        )
        tokens = eval_tokens[:32]
        np.testing.assert_allclose(
            implicit_runner.logits(tokens[None, :]),
            explicit_runner.logits(tokens[None, :]),
            rtol=1e-9, atol=1e-9,
        )

    def test_attention_matmuls_not_quantized_by_default(self, outlier_weights, calibration, rng):
        config = TenderConfig(bits=8)
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        a = rng.normal(size=(1, 2, 4, 8))
        b = rng.normal(size=(1, 2, 8, 4))
        np.testing.assert_allclose(executor.attention_matmul("block0.attn.qk", a, b), a @ b)
        assert executor.stats["attention_matmuls"] == 0

    def test_attention_matmuls_quantized_when_enabled(self, outlier_weights, calibration, rng):
        config = TenderConfig(bits=8, quantize_attention=True, num_groups=6)
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        a = rng.normal(size=(1, 2, 6, 8))
        b = rng.normal(size=(1, 2, 8, 6))
        result = executor.attention_matmul("block0.attn.qk", a, b)
        reference = a @ b
        assert executor.stats["attention_matmuls"] == 1
        relative = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        assert 0 < relative < 0.05

    def test_rescale_counter_tracks_groups(self, outlier_weights, calibration, rng):
        config = TenderConfig(bits=8, num_groups=5, row_chunk_size=64)
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        block = outlier_weights.blocks[0]
        x = rng.normal(size=(16, outlier_weights.config.d_model))
        executor.project("block0.attn.q_proj", x, block.attn.wq, block.attn.bq)
        assert executor.stats["rescales"] == 4  # one chunk, num_groups - 1


class TestTenderQuantizer:
    def test_build_executor_requires_calibration(self):
        with pytest.raises(CalibrationError):
            TenderQuantizer().build_executor()

    def test_quantize_returns_runner_with_reasonable_outputs(self, outlier_weights, calibration, eval_tokens):
        runner = TenderQuantizer(TenderConfig(bits=8, num_groups=8, row_chunk_size=16)).quantize(
            outlier_weights, calibration
        )
        fp_runner = TransformerRunner(outlier_weights)
        tokens = eval_tokens[:48]
        quantized_probs = runner.log_probs(tokens[None, :])
        fp_probs = fp_runner.log_probs(tokens[None, :])
        # Average per-token log-prob difference should be small for INT8.
        assert np.abs(quantized_probs - fp_probs).mean() < 0.1

    def test_int8_tender_beats_per_tensor_int8(self, outlier_weights, calibration, eval_tokens):
        """Core accuracy claim at the matmul level: Tender error << per-tensor error."""
        from repro.models import capture_activations

        config = TenderConfig(bits=4, num_groups=10, row_chunk_size=16)
        params = calibrate_tender(outlier_weights, calibration, config)
        executor = TenderExecutor(params, config)
        block = outlier_weights.blocks[0]
        x = capture_activations(outlier_weights, eval_tokens[:32])["block0.attn.q_proj"]
        reference = x @ block.attn.wq
        tender_result = executor.project("block0.attn.q_proj", x, block.attn.wq, None)
        per_tensor = fake_quantize(x, 4, Granularity.PER_TENSOR) @ fake_quantize(
            block.attn.wq, 4, Granularity.PER_COLUMN
        )
        tender_error = np.linalg.norm(tender_result - reference)
        per_tensor_error = np.linalg.norm(per_tensor - reference)
        assert tender_error < per_tensor_error / 3
