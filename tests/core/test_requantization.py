"""Tests of runtime requantization: Equations 1 and 2 must agree exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    decompose_channels,
    explicit_requantized_matmul,
    implicit_requantized_matmul,
    quantize_decomposed,
    requantized_matmul,
    rescale_operation_count,
)
from repro.errors import QuantizationError
from repro.quant import Granularity, compute_scale, quantize_symmetric


def make_decomposed_operands(rng, rows=16, channels=24, out_features=8, bits=8, num_groups=6,
                             outlier_factor=40.0):
    """Quantized activation (with outlier channels) and per-column weight."""
    activation = rng.normal(size=(rows, channels))
    activation[:, 1] *= outlier_factor
    activation[:, 7] *= outlier_factor / 3
    cmax = np.abs(activation).max(axis=0)
    decomposition = decompose_channels(cmax, num_groups=num_groups, bits=bits)
    quantized, _ = quantize_decomposed(activation, decomposition)
    weight = rng.normal(size=(channels, out_features))
    w_scale = compute_scale(weight, bits, Granularity.PER_COLUMN)
    q_weight = quantize_symmetric(weight, w_scale, bits)
    return activation, weight, quantized, decomposition, q_weight, w_scale


class TestEquivalence:
    def test_implicit_equals_explicit_exactly(self, rng):
        _, _, q_act, decomposition, q_weight, w_scale = make_decomposed_operands(rng)
        explicit = explicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        implicit = implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        np.testing.assert_allclose(implicit, explicit, rtol=1e-12, atol=1e-12)

    def test_equivalence_with_alpha_three(self, rng):
        activation = rng.normal(size=(8, 12))
        activation[:, 0] *= 30
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=4, bits=8, alpha=3)
        q_act, _ = quantize_decomposed(activation, decomposition)
        weight = rng.normal(size=(12, 5))
        w_scale = compute_scale(weight, 8, Granularity.PER_COLUMN)
        q_weight = quantize_symmetric(weight, w_scale, 8)
        explicit = explicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        implicit = implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        np.testing.assert_allclose(implicit, explicit, rtol=1e-12)

    def test_equivalence_with_empty_groups(self, rng):
        """Groups with no channels still rescale the accumulator correctly."""
        activation = rng.normal(size=(4, 6))
        activation[:, 0] *= 100  # big gap: intermediate groups stay empty
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=10, bits=8)
        assert (decomposition.group_sizes == 0).any()
        q_act, _ = quantize_decomposed(activation, decomposition)
        weight = rng.normal(size=(6, 3))
        w_scale = compute_scale(weight, 8, Granularity.PER_COLUMN)
        q_weight = quantize_symmetric(weight, w_scale, 8)
        np.testing.assert_allclose(
            implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            explicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            rtol=1e-12,
        )

    def test_dispatch_helper(self, rng):
        _, _, q_act, decomposition, q_weight, w_scale = make_decomposed_operands(rng)
        np.testing.assert_allclose(
            requantized_matmul(q_act, decomposition, q_weight, w_scale, implicit=True),
            requantized_matmul(q_act, decomposition, q_weight, w_scale, implicit=False),
            rtol=1e-12,
        )

    @given(st.integers(1, 12), st.sampled_from([4, 8]), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, num_groups, bits, seed):
        rng = np.random.default_rng(seed)
        activation = rng.normal(size=(6, 10)) * np.exp(rng.uniform(0, 4, size=10))
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=num_groups, bits=bits)
        q_act, _ = quantize_decomposed(activation, decomposition)
        weight = rng.normal(size=(10, 4))
        w_scale = compute_scale(weight, bits, Granularity.PER_COLUMN)
        q_weight = quantize_symmetric(weight, w_scale, bits)
        np.testing.assert_allclose(
            implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            explicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            rtol=1e-10, atol=1e-10,
        )


class TestGoldenEquivalenceSweep:
    """Seeded sweep: implicit and explicit requantization agree everywhere.

    Covers randomized operand shapes, alphas, group counts, and — at the
    executor level — row-chunk counts, so the equivalence that the hardware
    relies on (Equation 1 == Equation 2) holds across the whole configuration
    space, not just the defaults.
    """

    @pytest.mark.parametrize("alpha", [2, 3, 4])
    @pytest.mark.parametrize("num_groups", [1, 3, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_implicit_matches_explicit(self, alpha, num_groups, seed):
        rng = np.random.default_rng(1000 * alpha + 100 * num_groups + seed)
        rows = int(rng.integers(1, 24))
        channels = int(rng.integers(2, 48))
        out_features = int(rng.integers(1, 16))
        bits = int(rng.choice([4, 6, 8]))
        activation = rng.normal(size=(rows, channels)) * np.exp(rng.uniform(0, 5, size=channels))
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=num_groups, bits=bits, alpha=alpha)
        q_act, _ = quantize_decomposed(activation, decomposition)
        weight = rng.normal(size=(channels, out_features))
        w_scale = compute_scale(weight, bits, Granularity.PER_COLUMN)
        q_weight = quantize_symmetric(weight, w_scale, bits)
        np.testing.assert_allclose(
            implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            explicit_requantized_matmul(q_act, decomposition, q_weight, w_scale),
            rtol=1e-10, atol=1e-10,
        )

    @pytest.mark.parametrize("row_chunk_size", [4, 16, 64])
    def test_executor_paths_agree_across_chunk_counts(
        self, row_chunk_size, outlier_weights, calibration
    ):
        """Full executors agree too, whatever the number of row chunks."""
        from repro.core import TenderConfig, TenderQuantizer

        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=row_chunk_size)
        quantizer = TenderQuantizer(config, implicit=True)
        site_params = quantizer.calibrate(outlier_weights, list(calibration[:2]))
        from repro.core import TenderExecutor

        implicit_exec = TenderExecutor(site_params, config, implicit=True)
        explicit_exec = TenderExecutor(site_params, config, implicit=False)
        rng = np.random.default_rng(row_chunk_size)
        site = next(name for name in site_params if name.endswith("q_proj"))
        d_model = outlier_weights.config.d_model
        x = rng.normal(size=(3 * row_chunk_size + 5, d_model)) * 3.0
        weight = outlier_weights.blocks[0].attn.wq
        bias = outlier_weights.blocks[0].attn.bq
        np.testing.assert_allclose(
            implicit_exec.project(site, x, weight, bias),
            explicit_exec.project(site, x, weight, bias),
            rtol=1e-9, atol=1e-9,
        )


class TestAccuracy:
    def test_decomposed_matmul_tracks_float_product(self, rng):
        activation, weight, q_act, decomposition, q_weight, w_scale = make_decomposed_operands(rng)
        result = implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        reference = activation @ weight
        relative = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        assert relative < 0.02

    def test_decomposition_beats_per_tensor_on_outliers(self, rng):
        activation, weight, q_act, decomposition, q_weight, w_scale = make_decomposed_operands(
            rng, bits=4, num_groups=8
        )
        reference = activation @ weight
        decomposed = implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        a_scale = compute_scale(activation, 4, Granularity.PER_TENSOR)
        per_tensor = (
            quantize_symmetric(activation, a_scale, 4).astype(np.int64) @ q_weight.astype(np.int64)
        ) * a_scale * w_scale
        err_decomposed = np.linalg.norm(decomposed - reference)
        err_per_tensor = np.linalg.norm(per_tensor - reference)
        # Both paths share the same INT4 weight error, so the activation-side
        # advantage shows up as a clear (but not unbounded) reduction.
        assert err_decomposed < err_per_tensor / 1.2

    def test_overflow_detection(self, rng):
        activation = rng.normal(size=(2, 4)) * 1e3
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=2, bits=8)
        q_act, _ = quantize_decomposed(activation, decomposition)
        q_weight = np.full((4, 2), 127, dtype=np.int32)
        # Forge an absurd accumulator by repeating the shift many times via a
        # decomposition with a huge number of groups over a tiny range.
        big_decomposition = decompose_channels(cmax, num_groups=40, bits=8)
        q_big, _ = quantize_decomposed(activation, big_decomposition)
        with pytest.raises(QuantizationError):
            implicit_requantized_matmul(q_big * 0 + 127, big_decomposition, q_weight, np.ones((1, 2)))

    def test_rescale_operation_count(self, rng):
        _, _, _, decomposition, _, _ = make_decomposed_operands(rng, num_groups=6)
        assert rescale_operation_count(decomposition) == 5
