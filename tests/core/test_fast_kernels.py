"""Bit-exactness sweep: fast Index-Buffer kernels vs the reference paths.

The fast kernels (``repro.core.kernels``, default via ``fast_kernels=True``)
must match the reference implementations *exactly* (``np.array_equal``, not
allclose) across requantization modes, bias subtraction, ragged decode
positions, empty groups, and degenerate inputs — and must raise the same
``QuantizationError`` on 32-bit accumulator overflow.  These tests pin the
tentpole guarantee that making the software mirror the hardware dataflow
changes performance only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TenderConfig, TenderExecutor, pack_site_params
from repro.core.calibration import _ChunkedStatistics
from repro.errors import QuantizationError

CHANNELS, OUT = 48, 24


def calibrated_site(rng, config, channels=CHANNELS, chunks=5, outliers=True):
    """Site params calibrated from synthetic statistics (several row chunks)."""
    calibration = rng.normal(size=(chunks * config.row_chunk_size, channels))
    if outliers:
        calibration[:, 3] *= 50.0
        calibration[:, 11] *= 9.0
        calibration[:, 29] *= 3.0
    statistics = _ChunkedStatistics(config.row_chunk_size)
    statistics.update(calibration)
    return {"site": statistics.finalize("site", config)}


def make_pair(rng, implicit=True, **config_kwargs):
    """(fast, reference) executors sharing one calibrated site."""
    defaults = dict(bits=8, num_groups=8, row_chunk_size=16, quantize_attention=True)
    defaults.update(config_kwargs)
    config = TenderConfig(**defaults)
    params = calibrated_site(rng, config)
    fast = TenderExecutor(params, config, implicit=implicit, fast_kernels=True)
    reference = TenderExecutor(params, config, implicit=implicit, fast_kernels=False)
    return fast, reference, config


class TestProjectionBitExact:
    @pytest.mark.parametrize("implicit", [True, False])
    @pytest.mark.parametrize("subtract_bias", [True, False])
    @pytest.mark.parametrize("alpha", [2, 3])
    def test_full_sequence(self, rng, implicit, subtract_bias, alpha):
        fast, reference, _ = make_pair(rng, implicit, subtract_bias=subtract_bias, alpha=alpha)
        weight = rng.normal(size=(CHANNELS, OUT))
        layer_bias = rng.normal(size=OUT)
        x = rng.normal(size=(40, CHANNELS))
        x[:, 3] *= 40.0
        assert np.array_equal(
            fast.project("site", x, weight, layer_bias),
            reference.project("site", x, weight, layer_bias),
        )
        assert fast.stats == reference.stats

    @pytest.mark.parametrize("implicit", [True, False])
    @pytest.mark.parametrize("subtract_bias", [True, False])
    def test_ragged_decode_positions(self, rng, implicit, subtract_bias):
        """Batched decode rows at scattered, duplicated, and out-of-range positions."""
        fast, reference, _ = make_pair(rng, implicit, subtract_bias=subtract_bias)
        weight = rng.normal(size=(CHANNELS, OUT))
        x = rng.normal(size=(9, CHANNELS))
        # Positions span several chunks, repeat, arrive unsorted, and reach
        # beyond the calibrated range (which must reuse the last chunk).
        positions = np.array([90, 0, 17, 31, 33, 5, 64, 200, 17])
        assert np.array_equal(
            fast.project("site", x, weight, None, positions=positions),
            reference.project("site", x, weight, None, positions=positions),
        )
        assert fast.stats == reference.stats

    @pytest.mark.parametrize("implicit", [True, False])
    def test_lowbit_and_few_groups(self, rng, implicit):
        fast, reference, _ = make_pair(rng, implicit, bits=4, num_groups=3)
        weight = rng.normal(size=(CHANNELS, OUT))
        x = rng.normal(size=(20, CHANNELS))
        assert np.array_equal(
            fast.project("site", x, weight, None), reference.project("site", x, weight, None)
        )

    def test_single_group_degenerates_to_plain_int_matmul(self, rng):
        fast, reference, _ = make_pair(rng, implicit=True, num_groups=1)
        weight = rng.normal(size=(CHANNELS, OUT))
        x = rng.normal(size=(8, CHANNELS))
        assert np.array_equal(
            fast.project("site", x, weight, None), reference.project("site", x, weight, None)
        )

    @pytest.mark.parametrize("implicit", [True, False])
    def test_empty_groups_from_outlier_gap(self, rng, implicit):
        """A huge outlier pushes all other channels past several empty groups."""
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16, quantize_attention=True)
        calibration = rng.normal(size=(32, CHANNELS))
        calibration[:, 0] *= 500.0  # groups 1..5 end up empty
        statistics = _ChunkedStatistics(16)
        statistics.update(calibration)
        params = {"site": statistics.finalize("site", config)}
        fast = TenderExecutor(params, config, implicit=implicit, fast_kernels=True)
        reference = TenderExecutor(params, config, implicit=implicit, fast_kernels=False)
        decomposition = params["site"].chunks[0].decomposition
        assert (decomposition.group_sizes == 0).any(), "fixture should produce empty groups"
        weight = rng.normal(size=(CHANNELS, OUT))
        x = rng.normal(size=(12, CHANNELS))
        x[:, 0] *= 400.0
        assert np.array_equal(
            fast.project("site", x, weight, None), reference.project("site", x, weight, None)
        )


def overflow_site(channels, config):
    """Calibration whose quantized activations can saturate the accumulator."""
    calibration = np.ones((config.row_chunk_size, channels)) * 10.0
    calibration[::2] *= -1.0  # symmetric range: zero bias, absmax 10 everywhere
    statistics = _ChunkedStatistics(config.row_chunk_size)
    statistics.update(calibration)
    return {"site": statistics.finalize("site", config)}


class TestOverflowGuard:
    def test_implicit_overflow_raises_on_both_paths(self):
        """Rescaled accumulation past 2^31 must still raise on the fast path."""
        channels = 1100  # qmax^2 * channels * alpha^(G-1) > 2^31
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16)
        params = overflow_site(channels, config)
        weight = np.ones((channels, 3))
        x = np.ones((2, channels)) * 10.0
        for fast_kernels in (True, False):
            executor = TenderExecutor(params, config, implicit=True, fast_kernels=fast_kernels)
            with pytest.raises(QuantizationError, match="implicit requantization overflowed"):
                executor.project("site", x, weight, None)

    def test_explicit_overflow_raises_on_both_paths(self):
        channels = 140_000  # qmax^2 * channels > 2^31 in a single group
        config = TenderConfig(bits=8, num_groups=4, row_chunk_size=16)
        params = overflow_site(channels, config)
        weight = np.ones((channels, 2))
        x = np.ones((1, channels)) * 10.0
        for fast_kernels in (True, False):
            executor = TenderExecutor(params, config, implicit=False, fast_kernels=fast_kernels)
            with pytest.raises(QuantizationError, match="integer matmul overflowed"):
                executor.project("site", x, weight, None)

    def test_fallback_path_is_bit_identical_when_bound_exceeds(self, rng):
        """Bound can overflow but the data does not: fast falls back, stays exact."""
        channels = 1100
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16)
        params = overflow_site(channels, config)
        packed = params["site"].packed()
        assert packed.implicit_bounds.max() > 2**31 - 1, "fixture must trip the bound"
        weight = np.ones((channels, 3))
        x = rng.normal(size=(4, channels)) * 0.01
        outputs = [
            TenderExecutor(params, config, implicit=True, fast_kernels=fk).project(
                "site", x, weight, None
            )
            for fk in (True, False)
        ]
        assert np.array_equal(outputs[0], outputs[1])

    def test_attention_overflow_parity(self):
        """Stacked implicit attention saturating 2^31 raises on every path."""
        channels = 1100
        config = TenderConfig(
            bits=8, num_groups=8, quantize_attention=True, subtract_bias=False
        )
        a = np.ones((1, 1, 2, channels)) * 10.0
        b = np.ones((1, 1, channels, 3))
        for fast_kernels, vectorized in ((True, True), (False, True), (False, False)):
            executor = TenderExecutor(
                {}, config, implicit=True, fast_kernels=fast_kernels, vectorized_attention=vectorized
            )
            with pytest.raises(QuantizationError, match="implicit requantization overflowed"):
                executor.attention_matmul("qk", a, b)


def attention_operands(rng, batch=3, heads=4, rows=7, channels=16, out=9, outlier=50.0):
    a = rng.normal(size=(batch, heads, rows, channels))
    a[..., 1] *= outlier
    b = rng.normal(size=(batch, heads, channels, out))
    return a, b


class TestAttentionBitExact:
    @pytest.mark.parametrize("implicit", [True, False])
    @pytest.mark.parametrize("alpha", [2, 3])
    @pytest.mark.parametrize("bits", [4, 8])
    @pytest.mark.parametrize("subtract_bias", [True, False])
    def test_fast_equals_loop_and_vectorized(self, rng, implicit, alpha, bits, subtract_bias):
        config = TenderConfig(
            bits=bits, num_groups=6, alpha=alpha, subtract_bias=subtract_bias,
            quantize_attention=True,
        )
        fast = TenderExecutor({}, config, implicit=implicit, fast_kernels=True)
        reference = TenderExecutor({}, config, implicit=implicit, fast_kernels=False)
        loop = TenderExecutor(
            {}, config, implicit=implicit, fast_kernels=False, vectorized_attention=False
        )
        a, b = attention_operands(rng)
        fast_out = fast.attention_matmul("qk", a, b)
        assert np.array_equal(fast_out, loop.attention_matmul("qk", a, b))
        assert np.array_equal(fast_out, reference.attention_matmul("qk", a, b))
        assert fast.stats == reference.stats == loop.stats

    def test_decode_shape_single_row_queries(self, rng):
        config = TenderConfig(bits=8, num_groups=8, quantize_attention=True)
        fast = TenderExecutor({}, config, fast_kernels=True)
        loop = TenderExecutor({}, config, fast_kernels=False, vectorized_attention=False)
        a, b = attention_operands(rng, batch=8, heads=4, rows=1, channels=16, out=40)
        assert np.array_equal(fast.attention_matmul("qk", a, b), loop.attention_matmul("qk", a, b))

    def test_degenerate_all_zero_head(self, rng):
        config = TenderConfig(bits=8, num_groups=4, quantize_attention=True)
        fast = TenderExecutor({}, config, fast_kernels=True)
        loop = TenderExecutor({}, config, fast_kernels=False, vectorized_attention=False)
        a, b = attention_operands(rng, batch=2, heads=2, rows=5, channels=8, out=3)
        a[0, 1] = 0.0
        assert np.array_equal(fast.attention_matmul("qk", a, b), loop.attention_matmul("qk", a, b))

    def test_heads_with_different_group_assignments(self, rng):
        config = TenderConfig(bits=8, num_groups=8, quantize_attention=True)
        fast = TenderExecutor({}, config, fast_kernels=True)
        loop = TenderExecutor({}, config, fast_kernels=False, vectorized_attention=False)
        a, b = attention_operands(rng, batch=2, heads=3, rows=6, channels=12)
        a[0, 0, :, 2] *= 400.0
        a[1, 2] *= 0.01
        assert np.array_equal(fast.attention_matmul("qk", a, b), loop.attention_matmul("qk", a, b))


class TestPackedTables:
    def test_packed_tables_are_consistent_with_decompositions(self, rng):
        config = TenderConfig(bits=8, num_groups=8, row_chunk_size=16)
        params = calibrated_site(rng, config)["site"]
        packed = pack_site_params(params.chunks)
        assert packed.num_chunks == len(params.chunks)
        # Scalar metadata comes from the decompositions, not the executor config.
        assert packed.qmax == 127
        assert packed.alpha == config.alpha
        assert packed.num_groups == config.num_groups
        for index, chunk in enumerate(params.chunks):
            decomposition = chunk.decomposition
            assert np.array_equal(packed.channel_order[index], decomposition.channel_order)
            assert np.array_equal(packed.group_sizes[index], decomposition.group_sizes)
            assert np.array_equal(packed.group_scales[index], decomposition.group_scales)
            assert np.array_equal(packed.channel_scales[index], decomposition.channel_scales())
            assert packed.final_scales[index] == decomposition.group_scales[-1]
            # Rescale weights are alpha^(G-1-g) per channel, straight from
            # the chunk's own decomposition metadata.
            expected = np.power(
                float(decomposition.alpha),
                decomposition.num_groups - 1 - decomposition.group_of_channel,
            )
            assert np.array_equal(packed.alpha_weights[index], expected)

    def test_packed_is_cached_on_site_params(self, rng):
        config = TenderConfig(bits=8, num_groups=4, row_chunk_size=16)
        params = calibrated_site(rng, config)["site"]
        assert params.packed() is params.packed()
