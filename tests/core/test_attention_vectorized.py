"""Regression: the batched Tender attention kernel vs the reference loop.

The vectorized path must match the seed's per-batch/per-head loop bit for bit
(``np.array_equal``, not allclose) across requantization modes, alphas, bit
widths, and degenerate inputs — and the executor's stats counters must advance
identically on both paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TenderConfig
from repro.core.executor import TenderExecutor
from repro.errors import QuantizationError


def make_executor(implicit=True, vectorized=True, **config_kwargs) -> TenderExecutor:
    defaults = dict(bits=8, num_groups=6, quantize_attention=True)
    defaults.update(config_kwargs)
    return TenderExecutor({}, TenderConfig(**defaults), implicit=implicit, vectorized_attention=vectorized)


def attention_operands(rng, batch=3, heads=4, rows=7, channels=16, out=9, outlier=50.0):
    a = rng.normal(size=(batch, heads, rows, channels))
    a[..., 1] *= outlier
    b = rng.normal(size=(batch, heads, channels, out))
    return a, b


class TestBitForBit:
    @pytest.mark.parametrize("implicit", [True, False])
    @pytest.mark.parametrize("alpha", [2, 3])
    @pytest.mark.parametrize("bits", [4, 8])
    @pytest.mark.parametrize("subtract_bias", [True, False])
    def test_vectorized_equals_loop(self, rng, implicit, alpha, bits, subtract_bias):
        executor = make_executor(
            implicit=implicit, alpha=alpha, bits=bits, subtract_bias=subtract_bias
        )
        a, b = attention_operands(rng)
        loop = executor._attention_matmul_loop(a, b)
        vectorized = executor._attention_matmul_vectorized(a, b)
        assert np.array_equal(loop, vectorized)

    def test_decode_shape_single_row_queries(self, rng):
        executor = make_executor()
        a, b = attention_operands(rng, batch=8, heads=4, rows=1, channels=16, out=40)
        assert np.array_equal(
            executor._attention_matmul_loop(a, b), executor._attention_matmul_vectorized(a, b)
        )

    def test_degenerate_all_zero_head(self, rng):
        executor = make_executor(num_groups=4)
        a, b = attention_operands(rng, batch=2, heads=2, rows=5, channels=8, out=3)
        a[0, 1] = 0.0  # one head is entirely zero -> degenerate decomposition
        assert np.array_equal(
            executor._attention_matmul_loop(a, b), executor._attention_matmul_vectorized(a, b)
        )

    def test_heads_with_different_group_assignments(self, rng):
        """Each head gets its own channel-to-group map; masking must respect it."""
        executor = make_executor(num_groups=8)
        a, b = attention_operands(rng, batch=2, heads=3, rows=6, channels=12)
        a[0, 0, :, 2] *= 400.0   # head (0,0): extreme outlier -> empty middle groups
        a[1, 2] *= 0.01          # head (1,2): uniformly tiny values
        assert np.array_equal(
            executor._attention_matmul_loop(a, b), executor._attention_matmul_vectorized(a, b)
        )


class TestDispatchAndStats:
    def test_attention_matmul_dispatches_to_vectorized(self, rng):
        loop_executor = make_executor(vectorized=False)
        vec_executor = make_executor(vectorized=True)
        a, b = attention_operands(rng)
        assert np.array_equal(
            loop_executor.attention_matmul("qk", a, b), vec_executor.attention_matmul("qk", a, b)
        )

    def test_stats_counters_match_loop_path(self, rng):
        loop_executor = make_executor(vectorized=False)
        vec_executor = make_executor(vectorized=True)
        a, b = attention_operands(rng, batch=3, heads=4)
        for _ in range(2):
            loop_executor.attention_matmul("qk", a, b)
            vec_executor.attention_matmul("qk", a, b)
        assert loop_executor.stats == vec_executor.stats
        assert vec_executor.stats["attention_matmuls"] == 2
        # (G - 1) rescales per (batch, head) pair per call.
        assert vec_executor.stats["rescales"] == 2 * 3 * 4 * 5

    def test_unquantized_attention_untouched(self, rng):
        executor = make_executor(quantize_attention=False)
        a, b = attention_operands(rng)
        np.testing.assert_array_equal(executor.attention_matmul("qk", a, b), a @ b)
        assert executor.stats["attention_matmuls"] == 0


class TestOverflow:
    # Constant rows keep the decomposition deterministic, so bias subtraction
    # must be off (the midpoint shift would otherwise zero the tensor).  The
    # enormous channel-0 outlier leaves ~19 empty groups between the outlier
    # and normal groups; the rescale at each boundary overflows INT32.
    @staticmethod
    def overflow_operands():
        a = np.full((1, 1, 2, 4), 1000.0)
        a[..., 0] = 1e9
        b = np.full((1, 1, 4, 2), 1000.0)
        return a, b

    def test_vectorized_implicit_overflow_raises(self):
        executor = make_executor(num_groups=40, subtract_bias=False)
        a, b = self.overflow_operands()
        with pytest.raises(QuantizationError):
            executor._attention_matmul_vectorized(a, b)

    def test_loop_and_vectorized_raise_alike(self):
        a, b = self.overflow_operands()
        for vectorized in (False, True):
            executor = make_executor(num_groups=40, subtract_bias=False, vectorized=vectorized)
            with pytest.raises(QuantizationError):
                executor.attention_matmul("qk", a, b)
