"""Tests of the uniform quantization primitives, including property-based ones."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.quant import (
    Granularity,
    QuantizedTensor,
    compute_scale,
    dequantize_asymmetric,
    fake_quantize,
    integer_range,
    quantization_mse,
    quantize_asymmetric,
    quantize_symmetric,
    quantize_tensor,
)


class TestIntegerRange:
    def test_known_values(self):
        assert integer_range(8) == 127
        assert integer_range(4) == 7
        assert integer_range(2) == 1

    @pytest.mark.parametrize("bits", [0, 1, 33])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(QuantizationError):
            integer_range(bits)


class TestComputeScale:
    def test_per_tensor_scale_value(self):
        tensor = np.array([[1.0, -2.0], [0.5, 1.27]])
        scale = compute_scale(tensor, 8, Granularity.PER_TENSOR)
        np.testing.assert_allclose(scale, 2.0 / 127)

    def test_per_row_shape_and_values(self, rng):
        tensor = rng.normal(size=(5, 8))
        scale = compute_scale(tensor, 8, Granularity.PER_ROW)
        assert scale.shape == (5, 1)
        np.testing.assert_allclose(scale[:, 0], np.abs(tensor).max(axis=1) / 127)

    def test_per_column_shape(self, rng):
        tensor = rng.normal(size=(5, 8))
        scale = compute_scale(tensor, 8, Granularity.PER_COLUMN)
        assert scale.shape == (1, 8)

    def test_per_group_requires_decomposition(self, rng):
        with pytest.raises(QuantizationError):
            compute_scale(rng.normal(size=(4, 4)), 8, Granularity.PER_GROUP)

    def test_zero_tensor_gets_positive_scale(self):
        scale = compute_scale(np.zeros((3, 3)), 8, Granularity.PER_TENSOR)
        assert scale > 0


class TestSymmetricQuantization:
    def test_roundtrip_error_bounded_by_half_scale(self, rng):
        tensor = rng.normal(size=(16, 16)) * 3
        scale = compute_scale(tensor, 8, Granularity.PER_TENSOR)
        quantized = quantize_symmetric(tensor, scale, 8)
        restored = quantized * scale
        assert np.abs(tensor - restored).max() <= float(scale) / 2 + 1e-12

    def test_values_stay_in_integer_range(self, rng):
        tensor = rng.normal(size=(8, 8)) * 100
        scale = compute_scale(tensor, 4, Granularity.PER_TENSOR)
        quantized = quantize_symmetric(tensor, scale, 4)
        assert quantized.max() <= 7 and quantized.min() >= -7

    def test_quantize_tensor_container(self, rng):
        tensor = rng.normal(size=(6, 6))
        quantized = quantize_tensor(tensor, 8, Granularity.PER_ROW)
        assert isinstance(quantized, QuantizedTensor)
        assert quantized.shape == (6, 6)
        assert quantized.granularity == Granularity.PER_ROW

    def test_quantized_tensor_rejects_out_of_range_values(self):
        with pytest.raises(QuantizationError):
            QuantizedTensor(values=np.array([300]), scale=np.array(1.0), bits=8)

    def test_dequantize_with_bias_restores_offset(self, rng):
        tensor = rng.normal(size=(4, 4)) + 10.0
        bias = np.full(4, 10.0)
        shifted = tensor - bias
        scale = compute_scale(shifted, 8, Granularity.PER_TENSOR)
        quantized = QuantizedTensor(
            values=quantize_symmetric(shifted, scale, 8), scale=scale, bits=8, bias=bias
        )
        np.testing.assert_allclose(quantized.dequantize(), tensor, atol=float(scale))

    def test_fake_quantize_reduces_precision_not_shape(self, rng):
        tensor = rng.normal(size=(5, 7))
        fake = fake_quantize(tensor, 4)
        assert fake.shape == tensor.shape
        assert not np.allclose(fake, tensor)

    def test_mse_decreases_with_more_bits(self, rng):
        tensor = rng.normal(size=(32, 32))
        mse4 = quantization_mse(tensor, quantize_tensor(tensor, 4))
        mse8 = quantization_mse(tensor, quantize_tensor(tensor, 8))
        assert mse8 < mse4

    def test_finer_granularity_never_hurts_on_outlier_tensor(self, rng):
        tensor = rng.normal(size=(32, 32))
        tensor[:, 3] *= 50  # one outlier channel
        per_tensor = quantization_mse(tensor, quantize_tensor(tensor, 8, Granularity.PER_TENSOR))
        per_column = quantization_mse(tensor, quantize_tensor(tensor, 8, Granularity.PER_COLUMN))
        assert per_column < per_tensor


class TestAsymmetricQuantization:
    def test_roundtrip_error_bounded(self, rng):
        tensor = rng.normal(size=(10, 10)) + 5.0
        quantized, scale, zero_point = quantize_asymmetric(tensor, 8)
        restored = dequantize_asymmetric(quantized, scale, zero_point)
        assert np.abs(tensor - restored).max() <= float(np.max(scale)) * 1.01

    def test_handles_strictly_positive_tensors_efficiently(self, rng):
        tensor = rng.uniform(10, 11, size=(20, 20))
        _, scale_asym, _ = quantize_asymmetric(tensor, 8)
        scale_sym = compute_scale(tensor, 8, Granularity.PER_TENSOR)
        # Asymmetric quantization spends its range on [10, 11] only.
        assert float(np.max(scale_asym)) < float(scale_sym)


class TestQuantizationProperties:
    @given(
        arrays(np.float64, (8, 8), elements=st.floats(-1000, 1000)),
        st.sampled_from([4, 6, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_error_bound_property(self, tensor, bits):
        scale = compute_scale(tensor, bits, Granularity.PER_TENSOR)
        quantized = quantize_symmetric(tensor, scale, bits)
        restored = quantized * scale
        assert np.abs(tensor - restored).max() <= float(scale) * 0.5 + 1e-9

    @given(arrays(np.float64, (6, 6), elements=st.floats(-100, 100)))
    @settings(max_examples=40, deadline=None)
    def test_quantization_is_idempotent(self, tensor):
        scale = compute_scale(tensor, 8, Granularity.PER_TENSOR)
        once = quantize_symmetric(tensor, scale, 8) * scale
        twice = quantize_symmetric(once, scale, 8) * scale
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        arrays(np.float64, (4, 12), elements=st.floats(-100, 100)),
        st.sampled_from([Granularity.PER_TENSOR, Granularity.PER_ROW, Granularity.PER_COLUMN]),
    )
    @settings(max_examples=40, deadline=None)
    def test_per_granularity_error_bound(self, tensor, granularity):
        quantized = quantize_tensor(tensor, 8, granularity)
        error = np.abs(tensor - quantized.dequantize())
        bound = np.broadcast_to(quantized.scale, tensor.shape) * 0.5 + 1e-9
        assert (error <= bound).all()
