"""Tests of calibration observers and tensor statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.quant import ActivationObserver, TensorStatistics


class TestTensorStatistics:
    def test_channel_max_min_track_extremes(self):
        stats = TensorStatistics()
        stats.update(np.array([[1.0, -2.0], [3.0, 0.5]]))
        stats.update(np.array([[-5.0, 4.0], [0.0, 0.0]]))
        np.testing.assert_allclose(stats.channel_max, [3.0, 4.0])
        np.testing.assert_allclose(stats.channel_min, [-5.0, -2.0])

    def test_channel_absmax_and_bias(self):
        stats = TensorStatistics()
        stats.update(np.array([[2.0, 10.0], [-4.0, 6.0]]))
        np.testing.assert_allclose(stats.channel_absmax, [4.0, 10.0])
        np.testing.assert_allclose(stats.channel_bias, [-1.0, 8.0])

    def test_tensor_absmax_and_rms(self):
        stats = TensorStatistics()
        stats.update(np.array([[3.0, -4.0]]))
        assert stats.tensor_absmax == 4.0
        np.testing.assert_allclose(stats.rms, np.sqrt((9 + 16) / 2))

    def test_handles_3d_batches_by_flattening(self):
        stats = TensorStatistics()
        stats.update(np.ones((2, 3, 4)))
        assert stats.channel_max.shape == (4,)

    def test_mismatched_channels_rejected(self):
        stats = TensorStatistics()
        stats.update(np.ones((2, 4)))
        with pytest.raises(CalibrationError):
            stats.update(np.ones((2, 5)))

    def test_empty_statistics_raise(self):
        stats = TensorStatistics()
        with pytest.raises(CalibrationError):
            _ = stats.channel_absmax
        with pytest.raises(CalibrationError):
            _ = stats.rms


class TestActivationObserver:
    def test_observe_and_get(self):
        observer = ActivationObserver()
        observer.observe("site.a", np.ones((2, 3)))
        observer.observe("site.a", 2 * np.ones((2, 3)))
        assert observer.get("site.a").num_batches == 2
        assert "site.a" in observer
        assert len(observer) == 1

    def test_get_unknown_site_raises(self):
        with pytest.raises(CalibrationError):
            ActivationObserver().get("missing")

    def test_names_sorted(self):
        observer = ActivationObserver()
        observer.observe("b", np.ones((1, 2)))
        observer.observe("a", np.ones((1, 2)))
        assert observer.names() == ["a", "b"]
