"""Tests of the integer GEMM emulation and accumulator semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.quant import (
    Granularity,
    compute_scale,
    int_matmul,
    quantize_symmetric,
    quantized_matmul,
    shift_left,
)


class TestIntMatmul:
    def test_matches_float_matmul_exactly(self, rng):
        a = rng.integers(-127, 128, size=(8, 16)).astype(np.int32)
        b = rng.integers(-127, 128, size=(16, 4)).astype(np.int32)
        np.testing.assert_array_equal(int_matmul(a, b), a.astype(np.int64) @ b.astype(np.int64))

    def test_rejects_float_operands(self, rng):
        with pytest.raises(QuantizationError):
            int_matmul(rng.normal(size=(2, 2)), rng.integers(0, 5, size=(2, 2)))

    def test_detects_accumulator_overflow(self):
        a = np.full((1, 300_000), 127, dtype=np.int64)
        b = np.full((300_000, 1), 127, dtype=np.int64)
        with pytest.raises(QuantizationError):
            int_matmul(a, b)

    def test_overflow_check_can_be_disabled(self):
        a = np.full((1, 300_000), 127, dtype=np.int64)
        b = np.full((300_000, 1), 127, dtype=np.int64)
        result = int_matmul(a, b, check_overflow=False)
        assert result[0, 0] == 127 * 127 * 300_000


class TestIntMatmulEdgeCases:
    def test_empty_row_operand(self):
        a = np.zeros((0, 4), dtype=np.int32)
        b = np.ones((4, 3), dtype=np.int32)
        result = int_matmul(a, b)
        assert result.shape == (0, 3)
        assert result.dtype == np.int64

    def test_empty_reduction_axis(self):
        """K == 0: the product is all zeros and must not trip the overflow check."""
        a = np.zeros((2, 0), dtype=np.int32)
        b = np.zeros((0, 3), dtype=np.int32)
        result = int_matmul(a, b)
        np.testing.assert_array_equal(result, np.zeros((2, 3), dtype=np.int64))

    def test_empty_column_operand(self):
        a = np.ones((2, 4), dtype=np.int32)
        b = np.zeros((4, 0), dtype=np.int32)
        assert int_matmul(a, b).shape == (2, 0)

    def test_exact_accumulator_maximum_accepted(self):
        a = np.array([[1]], dtype=np.int64)
        b = np.array([[2**31 - 1]], dtype=np.int64)
        assert int_matmul(a, b)[0, 0] == 2**31 - 1

    def test_one_past_accumulator_maximum_rejected(self):
        a = np.array([[1]], dtype=np.int64)
        b = np.array([[2**31]], dtype=np.int64)
        with pytest.raises(QuantizationError):
            int_matmul(a, b)

    def test_exact_accumulator_minimum_accepted(self):
        a = np.array([[1]], dtype=np.int64)
        b = np.array([[-(2**31)]], dtype=np.int64)
        assert int_matmul(a, b)[0, 0] == -(2**31)

    def test_one_past_accumulator_minimum_rejected(self):
        a = np.array([[1]], dtype=np.int64)
        b = np.array([[-(2**31) - 1]], dtype=np.int64)
        with pytest.raises(QuantizationError):
            int_matmul(a, b)

    def test_boundary_passthrough_without_check(self):
        """check_overflow=False returns out-of-range accumulators untouched."""
        a = np.array([[3]], dtype=np.int64)
        b = np.array([[2**31]], dtype=np.int64)
        result = int_matmul(a, b, check_overflow=False)
        assert result[0, 0] == 3 * 2**31
        below = int_matmul(a, -b, check_overflow=False)
        assert below[0, 0] == -3 * 2**31

    def test_passthrough_preserves_exact_values_at_int64_scale(self):
        a = np.array([[2**31, -(2**31)]], dtype=np.int64)
        b = np.array([[2**30], [2**30]], dtype=np.int64)
        result = int_matmul(a, b, check_overflow=False)
        assert result[0, 0] == 0


class TestQuantizedMatmul:
    def test_approximates_float_product(self, rng):
        x = rng.normal(size=(16, 32))
        w = rng.normal(size=(32, 8))
        x_scale = compute_scale(x, 8, Granularity.PER_ROW)
        w_scale = compute_scale(w, 8, Granularity.PER_COLUMN)
        result = quantized_matmul(
            quantize_symmetric(x, x_scale, 8), x_scale, quantize_symmetric(w, w_scale, 8), w_scale
        )
        reference = x @ w
        relative_error = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        assert relative_error < 0.02

    def test_error_shrinks_with_bits(self, rng):
        x = rng.normal(size=(8, 16))
        w = rng.normal(size=(16, 8))
        reference = x @ w
        errors = {}
        for bits in (4, 8):
            x_scale = compute_scale(x, bits, Granularity.PER_ROW)
            w_scale = compute_scale(w, bits, Granularity.PER_COLUMN)
            result = quantized_matmul(
                quantize_symmetric(x, x_scale, bits), x_scale,
                quantize_symmetric(w, w_scale, bits), w_scale,
            )
            errors[bits] = np.linalg.norm(result - reference)
        assert errors[8] < errors[4]


class TestShiftLeft:
    def test_doubles_values(self):
        acc = np.array([[3, -5]], dtype=np.int64)
        np.testing.assert_array_equal(shift_left(acc), [[6, -10]])

    def test_multi_bit_shift(self):
        acc = np.array([1], dtype=np.int64)
        assert shift_left(acc, bits=3)[0] == 8

    def test_detects_overflow(self):
        acc = np.array([2**30 + 1], dtype=np.int64)
        with pytest.raises(QuantizationError):
            shift_left(acc, bits=1)

    @given(arrays(np.int64, (4, 4), elements=st.integers(-(2**20), 2**20)))
    @settings(max_examples=40, deadline=None)
    def test_shift_equals_multiplication_by_two(self, acc):
        np.testing.assert_array_equal(shift_left(acc), acc * 2)
