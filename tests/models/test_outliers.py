"""Tests of outlier injection: function preservation and channel structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    OutlierSpec,
    TransformerRunner,
    capture_activations,
    choose_outlier_channels,
    inject_outliers,
    measure_channel_ranges,
    outlier_ratio,
)


class TestInjection:
    def test_model_function_is_preserved(self, tiny_weights, outlier_weights, eval_tokens):
        """The central substitution claim: injection never changes the FP outputs."""
        tokens = eval_tokens[:32][None, :]
        original = TransformerRunner(tiny_weights).logits(tokens)
        injected = TransformerRunner(outlier_weights).logits(tokens)
        np.testing.assert_allclose(injected, original, rtol=1e-8, atol=1e-8)

    def test_outlier_channels_recorded_and_sorted(self, outlier_weights, outlier_spec):
        channels = outlier_weights.outlier_channels
        assert channels.shape == (outlier_spec.total_channels,)
        assert (np.diff(channels) > 0).all()

    def test_activation_ranges_amplified_in_outlier_channels(self, tiny_weights, outlier_weights, eval_tokens):
        sample = eval_tokens[:48]
        before = capture_activations(tiny_weights, sample)["block0.attn.q_proj"]
        after = capture_activations(outlier_weights, sample)["block0.attn.q_proj"]
        channels = outlier_weights.outlier_channels
        before_ranges = measure_channel_ranges(before)[channels]
        after_ranges = measure_channel_ranges(after)[channels]
        assert (after_ranges > 5 * before_ranges).all()

    def test_outlier_ratio_increases(self, tiny_weights, outlier_weights, eval_tokens):
        sample = eval_tokens[:48]
        before = outlier_ratio(capture_activations(tiny_weights, sample)["block0.ffn.fc1"])
        after = outlier_ratio(capture_activations(outlier_weights, sample)["block0.ffn.fc1"])
        assert after > before * 3

    def test_outliers_persist_across_layers(self, outlier_weights, eval_tokens):
        """Figure 3's observation: the same channels are hot in every layer."""
        captured = capture_activations(outlier_weights, eval_tokens[:48])
        channels = outlier_weights.outlier_channels
        for layer in range(outlier_weights.num_layers):
            ranges = measure_channel_ranges(captured[f"block{layer}.attn.q_proj"])
            median = np.median(ranges)
            assert (ranges[channels] > 4 * median).all()

    def test_explicit_channel_selection(self, tiny_weights):
        spec = OutlierSpec(num_scale_channels=1, num_shift_channels=1, scale_magnitude=10, shift_magnitude=5)
        injected = inject_outliers(tiny_weights, spec=spec, channels=[3, 17])
        np.testing.assert_array_equal(injected.outlier_channels, [3, 17])

    def test_zero_channels_is_identity_structure(self, tiny_weights):
        spec = OutlierSpec(num_scale_channels=0, num_shift_channels=0)
        injected = inject_outliers(tiny_weights, spec=spec)
        assert injected.outlier_channels.size == 0
        np.testing.assert_allclose(injected.blocks[0].attn.wq, tiny_weights.blocks[0].attn.wq)


class TestValidation:
    def test_rejects_magnitude_below_one(self, tiny_weights):
        with pytest.raises(ConfigurationError):
            inject_outliers(tiny_weights, spec=OutlierSpec(scale_magnitude=0.5))

    def test_rejects_spec_plus_overrides(self, tiny_weights):
        with pytest.raises(ConfigurationError):
            inject_outliers(tiny_weights, spec=OutlierSpec(), scale_magnitude=10.0)

    def test_rejects_out_of_range_channels(self, tiny_weights):
        spec = OutlierSpec(num_scale_channels=1, num_shift_channels=0)
        with pytest.raises(ConfigurationError):
            inject_outliers(tiny_weights, spec=spec, channels=[10_000])

    def test_rejects_wrong_channel_count(self, tiny_weights):
        spec = OutlierSpec(num_scale_channels=2, num_shift_channels=1)
        with pytest.raises(ConfigurationError):
            inject_outliers(tiny_weights, spec=spec, channels=[1, 2])

    def test_choose_channels_bounds(self):
        channels = choose_outlier_channels(64, 5, seed=1)
        assert channels.shape == (5,)
        assert channels.min() >= 0 and channels.max() < 64
        with pytest.raises(ConfigurationError):
            choose_outlier_channels(8, 8)
