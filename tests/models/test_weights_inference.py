"""Tests of weight extraction, serialization, and the executor-based runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    CapturingExecutor,
    FloatExecutor,
    ModelWeights,
    ObservingExecutor,
    TransformerRunner,
    capture_activations,
    extract_weights,
    run_calibration,
)
from repro.nn import TransformerClassifier, TransformerConfig


class TestWeightExtraction:
    def test_runner_matches_autograd_model(self, tiny_trained_model, tiny_weights, eval_tokens):
        """The plain-NumPy inference path must agree with the training model."""
        tokens = eval_tokens[:24][None, :]
        autograd_logits = tiny_trained_model(tokens).numpy()
        runner_logits = TransformerRunner(tiny_weights).logits(tokens)
        np.testing.assert_allclose(runner_logits, autograd_logits, rtol=1e-8, atol=1e-8)

    def test_to_from_arrays_roundtrip(self, tiny_weights, eval_tokens):
        arrays = tiny_weights.to_arrays()
        rebuilt = ModelWeights.from_arrays(tiny_weights.config, arrays)
        tokens = eval_tokens[:16][None, :]
        np.testing.assert_allclose(
            TransformerRunner(rebuilt).logits(tokens), TransformerRunner(tiny_weights).logits(tokens)
        )

    def test_copy_is_independent(self, tiny_weights):
        copy = tiny_weights.copy()
        copy.blocks[0].attn.wq[:] = 0.0
        assert not np.allclose(tiny_weights.blocks[0].attn.wq, 0.0)

    def test_classifier_extraction(self, rng):
        config = TransformerConfig(
            vocab_size=60, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            causal=False, num_classes=2, max_seq_len=16,
        )
        model = TransformerClassifier(config)
        weights = extract_weights(model)
        assert weights.classifier_weight is not None
        tokens = rng.integers(0, 60, size=(2, 8))
        np.testing.assert_allclose(
            TransformerRunner(weights).classify(tokens), model(tokens).numpy(), rtol=1e-8
        )


class TestTransformerRunner:
    def test_log_probs_normalize(self, tiny_weights, eval_tokens):
        log_probs = TransformerRunner(tiny_weights).log_probs(eval_tokens[:16][None, :])
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=-1), 1.0, rtol=1e-9)

    def test_rejects_overlong_sequences(self, tiny_weights):
        runner = TransformerRunner(tiny_weights)
        with pytest.raises(ConfigurationError):
            runner.logits(np.zeros(tiny_weights.config.max_seq_len + 1, dtype=int))

    def test_classify_requires_classifier_head(self, tiny_weights):
        with pytest.raises(ConfigurationError):
            TransformerRunner(tiny_weights).classify(np.array([[1, 2, 3]]))

    def test_1d_tokens_accepted(self, tiny_weights, eval_tokens):
        logits = TransformerRunner(tiny_weights).logits(eval_tokens[:8])
        assert logits.shape[0] == 1


class TestExecutors:
    def test_observing_executor_collects_every_projection_site(self, tiny_weights, eval_tokens):
        observer = run_calibration(tiny_weights, [eval_tokens[:16]])
        assert "block0.attn.q_proj" in observer
        assert "block0.ffn.fc1" in observer
        assert "lm_head" in observer
        # Activation-activation operands are recorded with .a / .b suffixes.
        assert "block0.attn.qk.a" in observer
        assert "block0.attn.sv.b" in observer

    def test_observing_executor_does_not_change_results(self, tiny_weights, eval_tokens):
        tokens = eval_tokens[:16][None, :]
        plain = TransformerRunner(tiny_weights, FloatExecutor()).logits(tokens)
        observed = TransformerRunner(tiny_weights, ObservingExecutor()).logits(tokens)
        np.testing.assert_allclose(plain, observed)

    def test_capturing_executor_stores_first_inputs(self, tiny_weights, eval_tokens):
        captured = capture_activations(tiny_weights, eval_tokens[:16])
        activation = captured["block0.attn.q_proj"]
        assert activation.shape == (16, tiny_weights.config.d_model)

    def test_capturing_executor_keeps_first_call_only(self, tiny_weights, eval_tokens):
        executor = CapturingExecutor()
        runner = TransformerRunner(tiny_weights, executor)
        runner.logits(eval_tokens[:8][None, :])
        first = executor.captured["block0.attn.q_proj"].copy()
        runner.logits(eval_tokens[8:24][None, :])
        np.testing.assert_allclose(executor.captured["block0.attn.q_proj"], first)
