"""End-to-end integration tests spanning training, quantization, and evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SchemeRequest, build_runner
from repro.core import TenderConfig, TenderQuantizer
from repro.eval import evaluate_perplexity
from repro.models import TransformerRunner


class TestQuantizedInferencePipeline:
    def test_tender_int8_matches_fp_perplexity(self, outlier_weights, calibration, eval_tokens):
        """The paper's headline INT8 claim, end to end on the tiny checkpoint."""
        fp_ppl = evaluate_perplexity(TransformerRunner(outlier_weights), eval_tokens, 48, 4)
        runner = TenderQuantizer(TenderConfig(bits=8, num_groups=8, row_chunk_size=16)).quantize(
            outlier_weights, calibration
        )
        tender_ppl = evaluate_perplexity(runner, eval_tokens, 48, 4)
        assert tender_ppl < fp_ppl * 1.06

    def test_tender_all_quantizes_attention_with_small_penalty(self, outlier_weights, calibration, eval_tokens):
        fp_ppl = evaluate_perplexity(TransformerRunner(outlier_weights), eval_tokens, 48, 4)
        runner = TenderQuantizer(
            TenderConfig(bits=8, num_groups=8, row_chunk_size=16, quantize_attention=True)
        ).quantize(outlier_weights, calibration)
        tender_all_ppl = evaluate_perplexity(runner, eval_tokens, 48, 4)
        assert tender_all_ppl < fp_ppl * 1.15

    def test_group_sweep_monotone_improvement(self, outlier_weights, calibration, eval_tokens):
        """Figure 9's trend: more groups help INT4 markedly."""
        perplexities = {}
        for groups in (1, 2, 8):
            runner = build_runner(
                "Tender",
                SchemeRequest(
                    weights=outlier_weights,
                    calibration=calibration,
                    bits=4,
                    options={"num_groups": groups, "row_chunk_size": 16},
                ),
            )
            perplexities[groups] = evaluate_perplexity(runner, eval_tokens, 48, 3)
        assert perplexities[8] < perplexities[2] < perplexities[1]

    def test_bias_subtraction_matters_for_shifted_channels(self, outlier_weights, calibration, eval_tokens):
        """Ablation: disabling the channel bias hurts on one-sided outlier channels."""
        with_bias = build_runner(
            "Tender",
            SchemeRequest(
                weights=outlier_weights, calibration=calibration, bits=4,
                options={"num_groups": 10, "row_chunk_size": 16, "subtract_bias": True},
            ),
        )
        without_bias = build_runner(
            "Tender",
            SchemeRequest(
                weights=outlier_weights, calibration=calibration, bits=4,
                options={"num_groups": 10, "row_chunk_size": 16, "subtract_bias": False},
            ),
        )
        ppl_with = evaluate_perplexity(with_bias, eval_tokens, 48, 3)
        ppl_without = evaluate_perplexity(without_bias, eval_tokens, 48, 3)
        assert ppl_with < ppl_without

    def test_alpha_two_no_worse_than_alpha_four(self, outlier_weights, calibration, eval_tokens):
        """Ablation on the threshold base: alpha=2 (finer) should not lose to alpha=4."""
        perplexities = {}
        for alpha in (2, 4):
            runner = build_runner(
                "Tender",
                SchemeRequest(
                    weights=outlier_weights, calibration=calibration, bits=4,
                    options={"num_groups": 10, "row_chunk_size": 16, "alpha": alpha},
                ),
            )
            perplexities[alpha] = evaluate_perplexity(runner, eval_tokens, 48, 3)
        assert perplexities[2] <= perplexities[4] * 1.02


@pytest.mark.slow
class TestZooPipeline:
    def test_zoo_checkpoint_trains_caches_and_quantizes(self, tmp_path, monkeypatch):
        """Full path: zoo entry -> cached training -> Tender INT8 close to FP."""
        from repro.data import load_corpus
        from repro.models import get_language_model
        from repro.models.checkpoints import clear_memory_cache

        clear_memory_cache()
        weights = get_language_model("opt-6.7b-sim")
        again = get_language_model("opt-6.7b-sim")
        np.testing.assert_allclose(weights.blocks[0].attn.wq, again.blocks[0].attn.wq)
        assert weights.outlier_channels.size > 0

        _, eval_tokens = load_corpus("wiki").split()
        from repro.data import calibration_samples

        pile_train, _ = load_corpus("pile").split()
        samples = calibration_samples(pile_train, 64, 8)
        fp_ppl = evaluate_perplexity(TransformerRunner(weights), eval_tokens, 64, 4)
        tender = TenderQuantizer(TenderConfig(bits=8, num_groups=8, row_chunk_size=32)).quantize(
            weights, samples
        )
        assert evaluate_perplexity(tender, eval_tokens, 64, 4) < fp_ppl * 1.06
        assert fp_ppl < 200  # the zoo model genuinely learned the corpus
