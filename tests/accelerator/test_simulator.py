"""Tests of workloads, memory models, area/energy, and the end-to-end simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    HBMModel,
    IndexBuffer,
    MemoryConfig,
    ScratchpadModel,
    all_accelerators,
    build_accelerator,
    iso_area_pe_count,
    model_generation_workload,
    model_prefill_workload,
    simulate_on,
    speedup_table,
    tender_area_table,
    total_area_power,
    transformer_layer_gemms,
)
from repro.errors import ConfigurationError, SimulationError


class TestWorkloads:
    def test_layer_gemms_cover_all_matmuls(self):
        gemms = transformer_layer_gemms(d_model=4096, d_ff=16384, num_heads=32, seq_len=2048)
        names = {g.name for g in gemms}
        assert names == {
            "qkv_proj", "attention_scores", "attention_values", "out_proj", "fc1", "fc2",
        }

    def test_prefill_workload_macs_scale_with_model(self):
        small = model_prefill_workload("opt-6.7b-sim", seq_len=2048).total_macs
        large = model_prefill_workload("opt-66b-sim", seq_len=2048).total_macs
        assert large > small * 3

    def test_generation_workload_much_smaller_than_prefill(self):
        prefill = model_prefill_workload("opt-6.7b-sim", seq_len=2048).total_macs
        generation = model_generation_workload("opt-6.7b-sim", context_len=2048).total_macs
        assert generation < prefill / 100

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            model_prefill_workload("gpt-5-sim")

    def test_operand_bytes_scale_with_precision(self):
        workload = model_prefill_workload("opt-6.7b-sim", seq_len=256)
        assert workload.total_bytes(8, 8) == 2 * workload.total_bytes(4, 4)


class TestMemoryModels:
    def test_hbm_transfer_cycles_proportional_to_bytes(self):
        hbm = HBMModel(MemoryConfig())
        assert hbm.transfer_cycles(2_000_000) > hbm.transfer_cycles(1_000_000)
        assert hbm.transfer_cycles(0) == 0

    def test_hbm_rejects_negative_bytes(self):
        with pytest.raises(SimulationError):
            HBMModel(MemoryConfig()).transfer_cycles(-1)

    def test_scratchpad_capacity_check(self):
        scratchpad = ScratchpadModel(MemoryConfig(scratchpad_kib=512))
        assert scratchpad.fits(200 * 1024)
        assert not scratchpad.fits(400 * 1024)

    def test_index_buffer_holds_model_channel_indices(self):
        index_buffer = IndexBuffer(MemoryConfig())
        assert index_buffer.fits(8192)  # largest paper d_model
        assert not index_buffer.fits(10_000_000)


class TestAreaPower:
    def test_table5_totals_match_paper(self):
        totals = total_area_power(tender_area_table())
        assert totals["area_mm2"] == pytest.approx(3.98, abs=0.02)
        assert totals["power_w"] == pytest.approx(1.60, abs=0.02)

    def test_component_names(self):
        names = [row.component for row in tender_area_table()]
        assert "Systolic Array" in names and "Index Buffer" in names

    def test_iso_area_pe_count_inverse_to_pe_size(self):
        assert iso_area_pe_count(4096, 1.0, 2.0) == 2048
        with pytest.raises(ValueError):
            iso_area_pe_count(4096, 1.0, 0.0)


class TestAccelerators:
    def test_all_four_designs_build(self):
        names = [model.name for model in all_accelerators()]
        assert names == ["ANT", "OLAccel", "OliVe", "Tender"]

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(ConfigurationError):
            build_accelerator("TPUv4")

    def test_baselines_have_fewer_pes_than_tender(self):
        tender = build_accelerator("Tender").config.systolic
        for name in ("ANT", "OLAccel", "OliVe"):
            other = build_accelerator(name).config.systolic
            assert other.rows * other.cols < tender.rows * tender.cols

    def test_ant_precision_mix_properties(self):
        ant = build_accelerator("ANT")
        assert ant.compute_multiplier > 1.0
        assert 4.0 < ant.effective_activation_bits < 8.0
        assert ant.mac_energy_pj() > build_accelerator("Tender").mac_energy_pj()


class TestSimulator:
    @pytest.fixture(scope="class")
    def prefill(self):
        return model_prefill_workload("opt-6.7b-sim", seq_len=2048)

    def test_tender_is_fastest(self, prefill):
        seconds = {
            name: simulate_on(name, prefill, num_groups=8 if name == "Tender" else 1).seconds
            for name in ("ANT", "OLAccel", "OliVe", "Tender")
        }
        assert seconds["Tender"] < seconds["OliVe"] < seconds["OLAccel"] < seconds["ANT"]

    def test_speedup_table_matches_paper_shape(self, prefill):
        table = speedup_table({"opt": prefill})["opt"]
        assert table["ANT"] == pytest.approx(1.0)
        assert 1.2 < table["OLAccel"] < 2.0
        assert 1.5 < table["OliVe"] < 2.5
        assert 2.0 < table["Tender"] < 3.5

    def test_tender_energy_lowest(self, prefill):
        energies = {
            name: simulate_on(name, prefill, num_groups=8 if name == "Tender" else 1).energy_j
            for name in ("ANT", "OLAccel", "OliVe", "Tender")
        }
        assert energies["Tender"] < min(energies["ANT"], energies["OLAccel"], energies["OliVe"])

    def test_group_count_barely_affects_implicit_runtime(self, prefill):
        one = simulate_on("Tender", prefill, num_groups=1).seconds
        many = simulate_on("Tender", prefill, num_groups=16).seconds
        assert many < one * 1.02

    def test_explicit_requantization_slows_down(self, prefill):
        implicit = simulate_on("Tender", prefill, num_groups=16, implicit=True).seconds
        explicit = simulate_on("Tender", prefill, num_groups=16, implicit=False).seconds
        assert explicit > implicit * 1.2

    def test_empty_workload_rejected(self):
        from repro.accelerator import Workload

        simulator = AcceleratorSimulator(build_accelerator("Tender"))
        with pytest.raises(SimulationError):
            simulator.simulate(Workload(name="empty"))

    def test_throughput_reported(self, prefill):
        result = simulate_on("Tender", prefill, num_groups=8)
        assert result.throughput_tops() > 0
        assert result.total_macs == prefill.total_macs
