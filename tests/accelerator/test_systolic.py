"""Tests of the systolic-array cycle model and the functional MSA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import MultiScaleSystolicArray, ProcessingElement, SystolicConfig, gemm_cycles
from repro.core import decompose_channels, implicit_requantized_matmul, quantize_decomposed
from repro.errors import SimulationError
from repro.quant import Granularity, compute_scale, quantize_symmetric


class TestGemmCycles:
    def test_cycles_scale_with_problem_size(self):
        config = SystolicConfig()
        small = gemm_cycles(128, 256, 128, config, operand_bits=4).total
        large = gemm_cycles(256, 512, 256, config, operand_bits=4).total
        assert large > small * 3

    def test_int8_slower_than_int4(self):
        config = SystolicConfig()
        int4 = gemm_cycles(256, 256, 256, config, operand_bits=4).total
        int8 = gemm_cycles(256, 256, 256, config, operand_bits=8).total
        assert int8 > int4 * 2

    def test_implicit_adds_one_bubble_per_group_boundary_per_tile(self):
        config = SystolicConfig(rows=64, cols=64)
        no_groups = gemm_cycles(64, 512, 64, config, operand_bits=4, num_groups=1)
        grouped = gemm_cycles(64, 512, 64, config, operand_bits=4, num_groups=9)
        assert grouped.total - no_groups.total == 8  # one tile, eight boundaries

    def test_explicit_much_slower_than_implicit(self):
        config = SystolicConfig()
        implicit = gemm_cycles(2048, 4096, 4096, config, 4, num_groups=16, implicit_requantization=True)
        explicit = gemm_cycles(2048, 4096, 4096, config, 4, num_groups=16, implicit_requantization=False)
        assert explicit.total > implicit.total * 1.2
        assert explicit.requantization_passes > 0

    def test_decode_overhead_added_per_tile(self):
        config = SystolicConfig()
        without = gemm_cycles(128, 128, 128, config, 4, decode_cycles_per_tile=0)
        with_decode = gemm_cycles(128, 128, 128, config, 4, decode_cycles_per_tile=10)
        assert with_decode.total - without.total == 10 * 4  # 2x2 tiles

    def test_rejects_bad_dimensions(self):
        with pytest.raises(SimulationError):
            gemm_cycles(0, 10, 10, SystolicConfig(), 4)

    def test_effective_dims_for_int8(self):
        config = SystolicConfig(rows=64, cols=64, pe_bits=4)
        assert config.effective_dims(4) == (64, 64)
        assert config.effective_dims(8) == (32, 32)


class TestProcessingElement:
    def test_mac_and_rescale(self):
        pe = ProcessingElement()
        pe.step(3, 4, rescale=False)
        pe.step(0, 0, rescale=True)
        pe.step(1, 1, rescale=False)
        assert pe.accumulator == 3 * 4 * 2 + 1

    def test_overflow_detection(self):
        pe = ProcessingElement()
        pe.accumulator = 2**31 - 1
        with pytest.raises(SimulationError):
            pe.step(1, 1, rescale=False)


class TestMultiScaleSystolicArray:
    def _decomposed_problem(self, rng, rows=6, channels=20, cols=5):
        activation = rng.normal(size=(rows, channels))
        activation[:, 2] *= 30
        cmax = np.abs(activation).max(axis=0)
        decomposition = decompose_channels(cmax, num_groups=5, bits=8)
        q_act, _ = quantize_decomposed(activation, decomposition)
        weight = rng.normal(size=(channels, cols))
        w_scale = compute_scale(weight, 8, Granularity.PER_COLUMN)
        q_weight = quantize_symmetric(weight, w_scale, 8)
        return q_act, decomposition, q_weight, w_scale

    def test_hardware_matches_reference_implicit_requantization(self, rng):
        """The MSA with 1-bit shifters computes exactly Equation 2."""
        q_act, decomposition, q_weight, w_scale = self._decomposed_problem(rng)
        ordered = decomposition.channel_order
        msa = MultiScaleSystolicArray(rows=8, cols=8)
        accumulators = msa.run_tile(
            q_act[:, ordered], q_weight[ordered, :], decomposition.group_sizes.tolist()
        )
        hardware_result = accumulators * decomposition.group_scales[-1] * w_scale
        reference = implicit_requantized_matmul(q_act, decomposition, q_weight, w_scale)
        np.testing.assert_allclose(hardware_result, reference, rtol=1e-12)

    def test_cycle_count_includes_bubbles_and_fill(self, rng):
        q_act, decomposition, q_weight, _ = self._decomposed_problem(rng)
        ordered = decomposition.channel_order
        msa = MultiScaleSystolicArray(rows=8, cols=8)
        msa.run_tile(q_act[:, ordered], q_weight[ordered, :], decomposition.group_sizes.tolist())
        nonempty_boundaries = decomposition.num_groups - 1
        expected = q_act.shape[1] + nonempty_boundaries + 8 + 8
        assert msa.cycles == expected
        assert msa.rescale_bubbles == nonempty_boundaries

    def test_rejects_oversized_tiles(self, rng):
        msa = MultiScaleSystolicArray(rows=2, cols=2)
        with pytest.raises(SimulationError):
            msa.run_tile(np.ones((4, 4), dtype=int), np.ones((4, 4), dtype=int), [4])

    def test_rejects_mismatched_group_sizes(self, rng):
        msa = MultiScaleSystolicArray(rows=4, cols=4)
        with pytest.raises(SimulationError):
            msa.run_tile(np.ones((2, 4), dtype=int), np.ones((4, 2), dtype=int), [1, 1])
