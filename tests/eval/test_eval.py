"""Tests of the evaluation harness: perplexity, accuracy, zero-shot, MSE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import UniformQuantExecutor
from repro.data import make_glue_task, make_zeroshot_task
from repro.errors import ConfigurationError
from repro.eval import (
    evaluate_classification,
    evaluate_perplexity,
    evaluate_zeroshot,
    projection_mse,
    relative_projection_error,
    score_continuation,
)
from repro.models import FloatExecutor, TransformerRunner, extract_weights
from repro.nn import TransformerClassifier, TransformerConfig, TransformerLM
from repro.quant import Granularity


class TestPerplexity:
    def test_untrained_model_near_uniform(self, eval_tokens):
        config = TransformerConfig(
            vocab_size=512, d_model=16, num_heads=2, num_layers=1, d_ff=32, max_seq_len=64, seed=0
        )
        weights = extract_weights(TransformerLM(config))
        ppl = evaluate_perplexity(TransformerRunner(weights), eval_tokens, seq_len=32, max_windows=4)
        assert 100 < ppl < 3000  # near the uniform limit of 512, far from trained models

    def test_trained_model_beats_untrained(self, tiny_weights, eval_tokens):
        trained = evaluate_perplexity(TransformerRunner(tiny_weights), eval_tokens, seq_len=48, max_windows=4)
        config = TransformerConfig(
            vocab_size=512, d_model=32, num_heads=2, num_layers=2, d_ff=96, max_seq_len=128, seed=9
        )
        untrained = evaluate_perplexity(
            TransformerRunner(extract_weights(TransformerLM(config))), eval_tokens, seq_len=48, max_windows=4
        )
        assert trained < untrained / 3

    def test_max_windows_limits_work(self, tiny_weights, eval_tokens):
        one = evaluate_perplexity(TransformerRunner(tiny_weights), eval_tokens, seq_len=32, max_windows=1)
        assert one > 0

    def test_requires_enough_tokens(self, tiny_weights):
        with pytest.raises(ConfigurationError):
            evaluate_perplexity(TransformerRunner(tiny_weights), np.arange(10), seq_len=64)


class TestClassification:
    def test_trained_classifier_beats_chance(self):
        task = make_glue_task("SST-2", vocab_size=128, seq_len=16, num_train=256, num_eval=128, seed=1)
        config = TransformerConfig(
            vocab_size=128, d_model=32, num_heads=2, num_layers=1, d_ff=64,
            causal=False, num_classes=2, max_seq_len=16, seed=1,
        )
        from repro.models import train_classifier

        model, _ = train_classifier(config, task, steps=120, batch_size=16, seed=1)
        weights = extract_weights(model)
        accuracy = evaluate_classification(TransformerRunner(weights), task, max_examples=128)
        assert accuracy > 75.0

    def test_max_examples_respected(self, rng):
        task = make_glue_task("QNLI", vocab_size=128, seq_len=8, num_train=32, num_eval=64, seed=2)
        config = TransformerConfig(
            vocab_size=128, d_model=16, num_heads=2, num_layers=1, d_ff=32,
            causal=False, num_classes=2, max_seq_len=8, seed=2,
        )
        weights = extract_weights(TransformerClassifier(config))
        accuracy = evaluate_classification(TransformerRunner(weights), task, max_examples=16)
        assert 0.0 <= accuracy <= 100.0


class TestZeroShot:
    def test_trained_lm_beats_chance(self, tiny_weights, eval_tokens):
        task = make_zeroshot_task("Hellaswag", eval_tokens, num_examples=32, seed=4)
        accuracy = evaluate_zeroshot(TransformerRunner(tiny_weights), task)
        chance = 100.0 / task.num_choices
        assert accuracy > chance + 10

    def test_score_continuation_prefers_true_continuation(self, tiny_weights, eval_tokens):
        runner = TransformerRunner(tiny_weights)
        context = eval_tokens[:24]
        true_continuation = eval_tokens[24:30]
        random_continuation = np.random.default_rng(0).integers(3, 500, size=6)
        assert score_continuation(runner, context, true_continuation) > score_continuation(
            runner, context, random_continuation
        )


class TestMSE:
    def test_float_executor_has_zero_mse(self, rng):
        x, weight = rng.normal(size=(8, 6)), rng.normal(size=(6, 4))
        assert projection_mse(FloatExecutor(), x, weight) == 0.0
        assert relative_projection_error(FloatExecutor(), x, weight) == 0.0

    def test_coarser_quantization_has_higher_mse(self, rng):
        x = rng.normal(size=(16, 12))
        x[:, 2] *= 30
        weight = rng.normal(size=(12, 8))
        per_tensor = projection_mse(UniformQuantExecutor(8, Granularity.PER_TENSOR), x, weight)
        per_column = projection_mse(UniformQuantExecutor(8, Granularity.PER_COLUMN), x, weight)
        assert per_column < per_tensor
