"""Tests of the autograd Tensor: forward values and gradient correctness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.errors import ShapeError
from repro.tensor import Tensor, concatenate, stack


def numeric_gradient(func, value: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = func(value)
        flat[index] = original - epsilon
        lower = func(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


def check_gradient(build_output, value: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient against a finite-difference estimate."""
    tensor = Tensor(value.copy(), requires_grad=True)
    output = build_output(tensor)
    output.backward()
    numeric = numeric_gradient(lambda v: build_output(Tensor(v)).item(), value.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestForward:
    def test_add_values(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(result.numpy(), [4.0, 6.0])

    def test_scalar_add_broadcasts(self):
        result = Tensor([[1.0, 2.0]]) + 1.5
        np.testing.assert_allclose(result.numpy(), [[2.5, 3.5]])

    def test_mul_and_neg(self):
        result = -(Tensor([2.0, 3.0]) * Tensor([4.0, 5.0]))
        np.testing.assert_allclose(result.numpy(), [-8.0, -15.0])

    def test_sub_and_div(self):
        result = (Tensor([6.0, 9.0]) - 3.0) / Tensor([3.0, 2.0])
        np.testing.assert_allclose(result.numpy(), [1.0, 3.0])

    def test_rsub_rdiv(self):
        np.testing.assert_allclose((10.0 - Tensor([4.0])).numpy(), [6.0])
        np.testing.assert_allclose((12.0 / Tensor([4.0])).numpy(), [3.0])

    def test_matmul_matches_numpy(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_batched_matmul(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_reshape_and_transpose(self, rng):
        a = rng.normal(size=(2, 6))
        tensor = Tensor(a)
        np.testing.assert_allclose(tensor.reshape(3, 4).numpy(), a.reshape(3, 4))
        np.testing.assert_allclose(tensor.transpose().numpy(), a.T)

    def test_swapaxes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(a).swapaxes(1, 2).numpy(), np.swapaxes(a, 1, 2))

    def test_getitem(self, rng):
        a = rng.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(a)[1:3].numpy(), a[1:3])

    def test_sum_mean_max(self, rng):
        a = rng.normal(size=(3, 4))
        tensor = Tensor(a)
        np.testing.assert_allclose(tensor.sum(axis=0).numpy(), a.sum(axis=0))
        np.testing.assert_allclose(tensor.mean(axis=1).numpy(), a.mean(axis=1))
        np.testing.assert_allclose(tensor.max(axis=1).numpy(), a.max(axis=1))

    def test_softmax_rows_sum_to_one(self, rng):
        probs = Tensor(rng.normal(size=(5, 7))).softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(5))
        assert (probs >= 0).all()

    def test_relu_gelu_tanh_exp_log(self, rng):
        a = rng.normal(size=(4, 4))
        assert (Tensor(a).relu().numpy() >= 0).all()
        np.testing.assert_allclose(Tensor(a).tanh().numpy(), np.tanh(a))
        np.testing.assert_allclose(Tensor(np.abs(a) + 1).log().numpy(), np.log(np.abs(a) + 1))
        np.testing.assert_allclose(Tensor(a).exp().numpy(), np.exp(a))

    def test_masked_fill(self):
        mask = np.array([[True, False], [False, True]])
        result = Tensor(np.ones((2, 2))).masked_fill(mask, -5.0)
        np.testing.assert_allclose(result.numpy(), [[-5.0, 1.0], [1.0, -5.0]])

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_concatenate_and_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        np.testing.assert_allclose(concatenate([Tensor(a), Tensor(b)], axis=0).numpy(), np.concatenate([a, b]))
        np.testing.assert_allclose(stack([Tensor(a), Tensor(b)], axis=0).numpy(), np.stack([a, b]))


class TestBackward:
    def test_backward_requires_scalar(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ShapeError):
            (tensor * 2).backward()

    def test_add_mul_gradient(self, rng):
        value = rng.normal(size=(3, 3))
        check_gradient(lambda t: ((t * 3.0 + 1.0) * t).sum(), value)

    def test_matmul_gradient(self, rng):
        value = rng.normal(size=(3, 4))
        other = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), value)

    def test_broadcast_add_gradient(self, rng):
        value = rng.normal(size=(3,))
        other = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(other) + t).sum(), value)

    def test_softmax_gradient(self, rng):
        value = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))
        check_gradient(lambda t: (t.softmax(axis=-1) * Tensor(weights)).sum(), value)

    def test_gelu_gradient(self, rng):
        value = rng.normal(size=(4, 3))
        check_gradient(lambda t: t.gelu().sum(), value)

    def test_relu_gradient(self, rng):
        value = rng.normal(size=(4, 3)) + 0.1  # avoid the kink at exactly zero
        check_gradient(lambda t: (t.relu() * t).sum(), value)

    def test_reshape_transpose_gradient(self, rng):
        value = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4).transpose() ** 2).sum(), value)

    def test_sum_axis_gradient(self, rng):
        value = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), value)

    def test_mean_gradient(self, rng):
        value = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.mean(axis=1) ** 3).sum(), value)

    def test_max_gradient(self, rng):
        value = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.max(axis=1).sum(), value)

    def test_getitem_gradient(self, rng):
        value = rng.normal(size=(4, 3))
        check_gradient(lambda t: (t[1:3] ** 2).sum(), value)

    def test_masked_fill_gradient(self, rng):
        value = rng.normal(size=(3, 3))
        mask = np.eye(3, dtype=bool)
        check_gradient(lambda t: (t.masked_fill(mask, 0.0) ** 2).sum(), value)

    def test_gradient_accumulates_over_multiple_uses(self):
        tensor = Tensor([2.0], requires_grad=True)
        out = tensor * 3.0 + tensor * 4.0
        out.backward()
        np.testing.assert_allclose(tensor.grad, [7.0])

    def test_zero_grad_resets(self):
        tensor = Tensor([2.0], requires_grad=True)
        (tensor * 2).backward()
        tensor.zero_grad()
        assert tensor.grad is None

    def test_no_grad_flow_into_non_requiring_tensors(self, rng):
        fixed = Tensor(rng.normal(size=(3, 3)), requires_grad=False)
        variable = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        (fixed * variable).sum().backward()
        assert fixed.grad is None
        assert variable.grad is not None


class TestProperties:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=5),
               elements=st.floats(-100, 100)),
    )
    @settings(max_examples=30, deadline=None)
    def test_add_zero_is_identity(self, value):
        result = (Tensor(value) + 0.0).numpy()
        np.testing.assert_allclose(result, value)

    @given(
        arrays(np.float64, (3, 4), elements=st.floats(-50, 50)),
        arrays(np.float64, (3, 4), elements=st.floats(-50, 50)),
    )
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes(self, a, b):
        left = (Tensor(a) + Tensor(b)).numpy()
        right = (Tensor(b) + Tensor(a)).numpy()
        np.testing.assert_allclose(left, right)

    @given(arrays(np.float64, (4, 6), elements=st.floats(-20, 20)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_shift_invariant(self, value):
        base = Tensor(value).softmax(axis=-1).numpy()
        shifted = Tensor(value + 100.0).softmax(axis=-1).numpy()
        np.testing.assert_allclose(base, shifted, atol=1e-9)
