"""Tests of the functional ops: embedding, layer norm, cross entropy, helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, cross_entropy, embedding_lookup, layer_norm
from repro.tensor.ops import gelu, log_softmax, relu, softmax
from tests.tensor.test_tensor import numeric_gradient


class TestEmbedding:
    def test_lookup_values(self, rng):
        table = rng.normal(size=(10, 4))
        indices = np.array([[1, 3], [0, 9]])
        result = embedding_lookup(Tensor(table), indices)
        np.testing.assert_allclose(result.numpy(), table[indices])

    def test_lookup_rejects_float_indices(self, rng):
        with pytest.raises(ShapeError):
            embedding_lookup(Tensor(rng.normal(size=(4, 2))), np.array([0.5]))

    def test_lookup_gradient_scatters(self, rng):
        table = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        indices = np.array([1, 1, 4])
        embedding_lookup(table, indices).sum().backward()
        expected = np.zeros((6, 3))
        expected[1] = 2.0
        expected[4] = 1.0
        np.testing.assert_allclose(table.grad, expected)


class TestLayerNorm:
    def test_output_is_normalized_with_unit_gain(self, rng):
        x = Tensor(rng.normal(size=(5, 8)) * 3 + 2)
        gain = Tensor(np.ones(8))
        bias = Tensor(np.zeros(8))
        out = layer_norm(x, gain, bias).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=1e-3)

    def test_gain_scales_specific_channel(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        gain_values = np.ones(6)
        gain_values[2] = 10.0
        out = layer_norm(x, Tensor(gain_values), Tensor(np.zeros(6))).numpy()
        reference = layer_norm(x, Tensor(np.ones(6)), Tensor(np.zeros(6))).numpy()
        np.testing.assert_allclose(out[:, 2], reference[:, 2] * 10.0)

    def test_input_gradient_matches_numeric(self, rng):
        value = rng.normal(size=(3, 5))
        gain = rng.normal(size=(5,)) + 1.0
        bias = rng.normal(size=(5,))

        def loss_from(array):
            return (layer_norm(Tensor(array), Tensor(gain), Tensor(bias)) ** 2).sum().item()

        x = Tensor(value.copy(), requires_grad=True)
        (layer_norm(x, Tensor(gain), Tensor(bias)) ** 2).sum().backward()
        numeric = numeric_gradient(lambda v: loss_from(v), value.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_gain_bias_gradients_match_numeric(self, rng):
        value = rng.normal(size=(3, 4))
        gain_value = rng.normal(size=(4,)) + 1.0
        bias_value = rng.normal(size=(4,))

        gain = Tensor(gain_value.copy(), requires_grad=True)
        bias = Tensor(bias_value.copy(), requires_grad=True)
        (layer_norm(Tensor(value), gain, bias) ** 2).sum().backward()

        numeric_gain = numeric_gradient(
            lambda g: (layer_norm(Tensor(value), Tensor(g), Tensor(bias_value)) ** 2).sum().item(),
            gain_value.copy(),
        )
        numeric_bias = numeric_gradient(
            lambda b: (layer_norm(Tensor(value), Tensor(gain_value), Tensor(b)) ** 2).sum().item(),
            bias_value.copy(),
        )
        np.testing.assert_allclose(gain.grad, numeric_gain, atol=1e-5)
        np.testing.assert_allclose(bias.grad, numeric_bias, atol=1e-5)


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = np.full((1, 4, 5), -20.0)
        targets = np.array([[1, 2, 3, 0]])
        for position, target in enumerate(targets[0]):
            logits[0, position, target] = 20.0
        loss = cross_entropy(Tensor(logits), targets)
        assert loss.item() < 1e-3

    def test_uniform_prediction_equals_log_vocab(self):
        vocab = 11
        logits = np.zeros((2, 3, vocab))
        targets = np.zeros((2, 3), dtype=int)
        loss = cross_entropy(Tensor(logits), targets)
        np.testing.assert_allclose(loss.item(), np.log(vocab), rtol=1e-6)

    def test_ignore_index_excludes_positions(self):
        logits = np.zeros((1, 2, 4))
        logits[0, 0, 1] = 10.0
        targets = np.array([[1, -1]])
        loss = cross_entropy(Tensor(logits), targets, ignore_index=-1)
        assert loss.item() < 1e-3

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros((2, 2), dtype=int))

    def test_gradient_matches_numeric(self, rng):
        logits_value = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        logits = Tensor(logits_value.copy(), requires_grad=True)
        cross_entropy(logits, targets).backward()
        numeric = numeric_gradient(
            lambda v: cross_entropy(Tensor(v), targets).item(), logits_value.copy()
        )
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-5)


class TestNumpyHelpers:
    def test_log_softmax_normalizes(self, rng):
        logits = rng.normal(size=(3, 7))
        log_probs = log_softmax(logits)
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=-1), np.ones(3))

    def test_softmax_matches_exp_log_softmax(self, rng):
        logits = rng.normal(size=(3, 7))
        np.testing.assert_allclose(softmax(logits), np.exp(log_softmax(logits)))

    def test_relu_and_gelu_limits(self):
        x = np.array([-100.0, 0.0, 100.0])
        np.testing.assert_allclose(relu(x), [0.0, 0.0, 100.0])
        gelu_values = gelu(x)
        assert gelu_values[0] == pytest.approx(0.0, abs=1e-6)
        assert gelu_values[2] == pytest.approx(100.0, rel=1e-6)
