"""Tests of the GPU latency model (Figure 12)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    figure12_latencies,
    fp16_latency_ms,
    get_gpu,
    int8_latency_ms,
    per_channel_latency_ms,
    tender_software_latency_ms,
)


class TestDevices:
    def test_known_devices(self):
        assert get_gpu("rtx3090").name == "RTX 3090"
        assert get_gpu("A100").fp16_tflops > get_gpu("rtx3090").fp16_tflops

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            get_gpu("h100")


class TestLatencyModel:
    DIMS = dict(m=2048, k=4096, n=4096)

    def test_int8_faster_than_fp16_when_saturated(self):
        device = get_gpu("rtx3090")
        assert int8_latency_ms(**self.DIMS, device=device) < fp16_latency_ms(**self.DIMS, device=device)

    def test_per_channel_slower_than_fp16(self):
        device = get_gpu("rtx3090")
        assert per_channel_latency_ms(**self.DIMS, device=device) > fp16_latency_ms(
            **self.DIMS, device=device
        )

    def test_tender_sw_between_int8_and_fp16(self):
        device = get_gpu("rtx3090")
        tender = tender_software_latency_ms(**self.DIMS, device=device, num_groups=8)
        assert int8_latency_ms(**self.DIMS, device=device) < tender < fp16_latency_ms(
            **self.DIMS, device=device
        ) * 1.05

    def test_more_groups_cost_more_in_software(self):
        device = get_gpu("a100")
        few = tender_software_latency_ms(**self.DIMS, device=device, num_groups=4)
        many = tender_software_latency_ms(**self.DIMS, device=device, num_groups=16)
        assert many > few

    def test_figure12_normalization(self):
        latencies = figure12_latencies(2048, 4096, 4096, "rtx3090")
        assert latencies["FP16"].normalized_to_fp16 == pytest.approx(1.0)
        assert latencies["INT8 (per-tensor)"].normalized_to_fp16 < 1.0
        assert latencies["INT8 (per-channel)"].normalized_to_fp16 > 1.0
        assert latencies["Tender SW"].normalized_to_fp16 < 1.0

    def test_small_gemm_underutilization_shrinks_int8_gains(self):
        """The paper's A100 observation: small GEMMs do not benefit from INT8."""
        device = get_gpu("a100")
        small_ratio = int8_latency_ms(64, 512, 512, device) / fp16_latency_ms(64, 512, 512, device)
        big_ratio = int8_latency_ms(4096, 8192, 8192, device) / fp16_latency_ms(4096, 8192, 8192, device)
        assert small_ratio > big_ratio
