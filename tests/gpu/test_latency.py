"""Tests of the GPU latency model (Figure 12)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    DecodeWorkload,
    decode_step_latencies,
    decode_throughput_tokens_per_s,
    figure12_latencies,
    fp16_latency_ms,
    get_gpu,
    int8_latency_ms,
    per_channel_latency_ms,
    tender_software_latency_ms,
)


class TestDevices:
    def test_known_devices(self):
        assert get_gpu("rtx3090").name == "RTX 3090"
        assert get_gpu("A100").fp16_tflops > get_gpu("rtx3090").fp16_tflops

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            get_gpu("h100")


class TestLatencyModel:
    DIMS = dict(m=2048, k=4096, n=4096)

    def test_int8_faster_than_fp16_when_saturated(self):
        device = get_gpu("rtx3090")
        assert int8_latency_ms(**self.DIMS, device=device) < fp16_latency_ms(**self.DIMS, device=device)

    def test_per_channel_slower_than_fp16(self):
        device = get_gpu("rtx3090")
        assert per_channel_latency_ms(**self.DIMS, device=device) > fp16_latency_ms(
            **self.DIMS, device=device
        )

    def test_tender_sw_between_int8_and_fp16(self):
        device = get_gpu("rtx3090")
        tender = tender_software_latency_ms(**self.DIMS, device=device, num_groups=8)
        assert int8_latency_ms(**self.DIMS, device=device) < tender < fp16_latency_ms(
            **self.DIMS, device=device
        ) * 1.05

    def test_more_groups_cost_more_in_software(self):
        device = get_gpu("a100")
        few = tender_software_latency_ms(**self.DIMS, device=device, num_groups=4)
        many = tender_software_latency_ms(**self.DIMS, device=device, num_groups=16)
        assert many > few

    def test_figure12_normalization(self):
        latencies = figure12_latencies(2048, 4096, 4096, "rtx3090")
        assert latencies["FP16"].normalized_to_fp16 == pytest.approx(1.0)
        assert latencies["INT8 (per-tensor)"].normalized_to_fp16 < 1.0
        assert latencies["INT8 (per-channel)"].normalized_to_fp16 > 1.0
        assert latencies["Tender SW"].normalized_to_fp16 < 1.0

    def test_small_gemm_underutilization_shrinks_int8_gains(self):
        """The paper's A100 observation: small GEMMs do not benefit from INT8."""
        device = get_gpu("a100")
        small_ratio = int8_latency_ms(64, 512, 512, device) / fp16_latency_ms(64, 512, 512, device)
        big_ratio = int8_latency_ms(4096, 8192, 8192, device) / fp16_latency_ms(4096, 8192, 8192, device)
        assert small_ratio > big_ratio


class TestDecodeWorkload:
    WORKLOAD = DecodeWorkload(
        batch=8, context=512, d_model=4096, d_ff=16384, num_heads=32, num_layers=32, vocab=50272
    )

    def test_gemm_enumeration(self):
        workload = DecodeWorkload(batch=2, context=16, d_model=64, d_ff=128, num_heads=4, num_layers=3)
        per_layer = workload.layer_gemms()
        assert len(per_layer) == 8
        assert (2, 64, 64) in per_layer                  # projections are batch-rows GEMMs
        assert (2 * 4, 16, 16) in per_layer              # X_Q X_K^T attends the cache
        assert len(workload.step_gemms()) == 3 * 8       # no LM head when vocab == 0
        with_head = DecodeWorkload(
            batch=2, context=16, d_model=64, d_ff=128, num_heads=4, num_layers=3, vocab=100
        )
        assert with_head.step_gemms()[-1] == (2, 64, 100)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            DecodeWorkload(batch=0, context=1, d_model=64, d_ff=64, num_heads=4)
        with pytest.raises(ConfigurationError):
            DecodeWorkload(batch=1, context=1, d_model=65, d_ff=64, num_heads=4)

    def test_all_schemes_priced_and_normalized(self):
        latencies = decode_step_latencies(self.WORKLOAD, "rtx3090")
        assert set(latencies) == {
            "FP16", "INT8 (per-tensor)", "INT8 (per-row)", "INT8 (per-channel)", "Tender SW"
        }
        assert latencies["FP16"].normalized_to_fp16 == pytest.approx(1.0)
        assert all(latency.milliseconds > 0 for latency in latencies.values())

    def test_tender_sw_pays_per_group_kernels_in_decode(self):
        """Skinny decode GEMMs make the per-group launches dominate: Tender SW
        lands clearly above single-kernel INT8, the gap Figure 13 motivates."""
        latencies = decode_step_latencies(self.WORKLOAD, "rtx3090")
        assert latencies["Tender SW"].milliseconds > latencies["INT8 (per-tensor)"].milliseconds

    def test_longer_context_costs_more(self):
        short = decode_step_latencies(
            DecodeWorkload(batch=8, context=64, d_model=4096, d_ff=16384, num_heads=32, num_layers=32),
            "a100",
        )
        long = decode_step_latencies(
            DecodeWorkload(batch=8, context=2048, d_model=4096, d_ff=16384, num_heads=32, num_layers=32),
            "a100",
        )
        assert long["FP16"].milliseconds > short["FP16"].milliseconds

    def test_throughput_is_batch_over_latency(self):
        latencies = decode_step_latencies(self.WORKLOAD, "rtx3090")
        throughput = decode_throughput_tokens_per_s(self.WORKLOAD, "rtx3090")
        expected = self.WORKLOAD.batch / (latencies["FP16"].milliseconds * 1e-3)
        assert throughput["FP16"] == pytest.approx(expected)
        assert throughput["INT8 (per-tensor)"] > throughput["Tender SW"]


class TestContinuousBatchWorkload:
    def make(self, **overrides):
        from repro.gpu import ContinuousBatchWorkload

        defaults = dict(
            max_batch=8,
            mean_new_tokens=32.0,
            context=256,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=32,
            vocab=50272,
        )
        defaults.update(overrides)
        return ContinuousBatchWorkload(**defaults)

    def test_saturated_speedup_is_the_harmonic_number(self):
        workload = self.make()
        expected = sum(1.0 / i for i in range(1, 9))
        assert workload.speedup_over_static() == pytest.approx(expected)
        # The gain grows with batch size but only logarithmically.
        assert self.make(max_batch=32).speedup_over_static() > expected
        assert self.make(max_batch=1).speedup_over_static() == pytest.approx(1.0)

    def test_light_load_collapses_the_gap(self):
        light = self.make(offered_load=0.05)
        assert light.speedup_over_static() == pytest.approx(1.0)
        assert light.continuous_occupancy() == pytest.approx(8 * 0.05)

    def test_throughput_table_covers_every_scheme(self):
        from repro.gpu import continuous_batch_throughput

        table = continuous_batch_throughput(self.make(), "a100")
        assert set(table) == {
            "FP16",
            "INT8 (per-tensor)",
            "INT8 (per-row)",
            "INT8 (per-channel)",
            "Tender SW",
        }
        for scheme, row in table.items():
            assert row["continuous_tokens_per_s"] > row["static_tokens_per_s"] > 0.0
            assert row["speedup"] == pytest.approx(table["FP16"]["speedup"])

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            self.make(max_batch=0)
        with pytest.raises(ConfigurationError):
            self.make(mean_new_tokens=0.5)
        with pytest.raises(ConfigurationError):
            self.make(offered_load=0.0)
        with pytest.raises(ConfigurationError):
            self.make(d_model=100, num_heads=3)  # indivisible heads


class TestPrefixCacheWorkload:
    @staticmethod
    def make(**overrides):
        from repro.gpu import PrefixCacheWorkload

        defaults = dict(
            prompt_tokens=140,
            mean_new_tokens=8.0,
            hit_rate=0.8,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=4,
            batch=4,
        )
        defaults.update(overrides)
        return PrefixCacheWorkload(**defaults)

    def test_zero_hit_rate_is_the_cold_baseline(self):
        cold = self.make(hit_rate=0.0)
        for scheme, speedup in cold.speedup_over_cold("rtx3090").items():
            assert speedup == pytest.approx(1.0), scheme

    def test_speedup_grows_with_hit_rate_and_is_bounded_by_decode(self):
        previous = None
        for hit_rate in (0.0, 0.4, 0.8, 1.0):
            workload = self.make(hit_rate=hit_rate)
            speedup = workload.speedup_over_cold("rtx3090")["Tender SW"]
            if previous is not None:
                assert speedup > previous
            previous = speedup
        # Even a perfect hit still prefills the final token and pays every
        # decode step, so the speedup stays below prefill+decode over decode.
        full = self.make(hit_rate=1.0)
        latency = full.request_latency_ms("rtx3090", 0.0)["Tender SW"]
        decode_only = (
            8.0
            * decode_step_latencies(full.decode_workload(), "rtx3090")["Tender SW"].milliseconds
            / 4
        )
        assert full.speedup_over_cold("rtx3090")["Tender SW"] < latency / decode_only

    def test_suffix_always_recomputes_the_final_token(self):
        assert self.make(hit_rate=1.0).suffix_tokens() == 1

    def test_throughput_table_covers_every_scheme(self):
        from repro.gpu import prefix_cache_throughput

        table = prefix_cache_throughput(self.make(), "a100")
        assert set(table) == {
            "FP16",
            "INT8 (per-tensor)",
            "INT8 (per-row)",
            "INT8 (per-channel)",
            "Tender SW",
        }
        for row in table.values():
            assert row["cached_tokens_per_s"] > row["cold_tokens_per_s"] > 0.0
            assert row["speedup"] > 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(hit_rate=1.5)
        with pytest.raises(ConfigurationError):
            self.make(prompt_tokens=1)
        with pytest.raises(ConfigurationError):
            self.make(mean_new_tokens=0.0)
        with pytest.raises(ConfigurationError):
            self.make(batch=0)


class TestSpeculativeWorkload:
    @staticmethod
    def make(**overrides):
        from repro.gpu import SpeculativeWorkload

        defaults = dict(
            draft_tokens=4,
            accept_rate=0.8,
            context=160,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=4,
            batch=4,
        )
        defaults.update(overrides)
        return SpeculativeWorkload(**defaults)

    def test_expected_tokens_per_step(self):
        # E[m] = (1 - p^(k+1)) / (1 - p): accepted run plus the bonus token.
        workload = self.make(accept_rate=0.8, draft_tokens=4)
        assert workload.expected_tokens_per_step() == pytest.approx(
            (1.0 - 0.8**5) / 0.2
        )
        assert self.make(accept_rate=0.0).expected_tokens_per_step() == 1.0
        assert self.make(accept_rate=1.0, draft_tokens=4).expected_tokens_per_step() == 5.0

    def test_speedup_grows_with_accept_rate(self):
        previous = None
        for accept_rate in (0.0, 0.4, 0.8, 1.0):
            speedup = self.make(accept_rate=accept_rate).speedup("rtx3090")["Tender SW"]
            if previous is not None:
                assert speedup > previous
            previous = speedup

    def test_zero_accept_rate_never_beats_plain_decode(self):
        # One committed token per verify that is strictly wider than a
        # decode step: speculation can only lose when nothing is accepted.
        for scheme, speedup in self.make(accept_rate=0.0).speedup("rtx3090").items():
            assert speedup < 1.0, scheme

    def test_draft_cost_discounts_the_speedup(self):
        free = self.make(draft_cost_ratio=0.0).speedup("a100")["Tender SW"]
        paid = self.make(draft_cost_ratio=0.25).speedup("a100")["Tender SW"]
        assert paid < free

    def test_throughput_table_covers_every_scheme(self):
        from repro.gpu import speculative_throughput

        table = speculative_throughput(self.make(), "a100")
        assert set(table) == {
            "FP16",
            "INT8 (per-tensor)",
            "INT8 (per-row)",
            "INT8 (per-channel)",
            "Tender SW",
        }
        for row in table.values():
            assert row["speculative_tokens_per_s"] > row["baseline_tokens_per_s"] > 0.0
            assert row["speedup"] > 1.0
            assert row["expected_tokens_per_step"] > 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(draft_tokens=0)
        with pytest.raises(ConfigurationError):
            self.make(accept_rate=1.5)
        with pytest.raises(ConfigurationError):
            self.make(draft_cost_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            self.make(batch=0)


class TestPagedAttentionWorkload:
    @staticmethod
    def make(**overrides):
        from repro.gpu import PagedAttentionWorkload

        defaults = dict(
            batch=8,
            context=2048,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=4,
        )
        defaults.update(overrides)
        return PagedAttentionWorkload(**defaults)

    def test_gather_bytes_scale_linearly_with_context(self):
        short = self.make(context=1024).gather_bytes_per_step()
        long = self.make(context=4096).gather_bytes_per_step()
        assert long == 4 * short
        # K and V, read + write, per layer: 2 * 2 * L * B * H * ctx * d * 2B.
        workload = self.make(context=1024)
        expected = 2 * 2 * 4 * 8 * 32 * 1024 * (4096 // 32) * 2
        assert workload.gather_bytes_per_step() == expected

    def test_speedup_grows_with_context(self):
        from repro.gpu import paged_attention_throughput

        previous = None
        for context in (256, 1024, 4096, 16384):
            table = paged_attention_throughput(self.make().with_context(context), "a100")
            speedup = table["Tender SW"]["speedup"]
            assert speedup > 1.0
            if previous is not None:
                assert speedup > previous
            previous = speedup

    def test_throughput_table_covers_every_scheme(self):
        from repro.gpu import paged_attention_throughput

        table = paged_attention_throughput(self.make(), "rtx3090")
        assert set(table) == {
            "FP16",
            "INT8 (per-tensor)",
            "INT8 (per-row)",
            "INT8 (per-channel)",
            "Tender SW",
        }
        for row in table.values():
            assert row["fused_tokens_per_s"] > row["gather_tokens_per_s"] > 0.0
            assert row["speedup"] > 1.0
            assert row["gather_bytes_per_step"] == self.make().gather_bytes_per_step()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(kv_bytes_per_element=0)
        with pytest.raises(ConfigurationError):
            self.make(batch=0)


class TestPreemptionWorkload:
    @staticmethod
    def make(**overrides):
        from repro.gpu import PreemptionWorkload

        defaults = dict(
            victim_context=512,
            resume_hit_rate=0.9,
            high_prompt_tokens=64,
            expected_wait_steps=128.0,
            d_model=4096,
            d_ff=16384,
            num_heads=32,
            num_layers=4,
            batch=4,
        )
        defaults.update(overrides)
        return PreemptionWorkload(**defaults)

    def test_recompute_tokens_shrink_with_hit_rate(self):
        assert self.make(resume_hit_rate=0.0).recompute_tokens() == 512
        assert self.make(resume_hit_rate=0.75).recompute_tokens() == 128
        # Even a perfect prefix hit re-prefills the final unfed token.
        assert self.make(resume_hit_rate=1.0).recompute_tokens() == 1

    def test_preempting_beats_waiting_on_ttft(self):
        from repro.gpu import preemption_tradeoff

        table = preemption_tradeoff(self.make(), "a100")
        for row in table.values():
            assert row["wait_ttft_ms"] > row["preempt_ttft_ms"] > 0.0
            assert row["ttft_speedup"] > 1.0

    def test_speedup_grows_with_wait(self):
        from repro.gpu import preemption_tradeoff

        previous = None
        for wait in (16.0, 64.0, 256.0):
            table = preemption_tradeoff(self.make(expected_wait_steps=wait), "a100")
            speedup = table["Tender SW"]["ttft_speedup"]
            if previous is not None:
                assert speedup > previous
            previous = speedup

    def test_prefix_hits_make_preemption_worthwhile(self):
        from repro.gpu import preemption_tradeoff

        hit = preemption_tradeoff(self.make(resume_hit_rate=0.9), "a100")
        cold = preemption_tradeoff(self.make(resume_hit_rate=0.0), "a100")
        for scheme in hit:
            assert hit[scheme]["recompute_ms"] < cold[scheme]["recompute_ms"]
            assert hit[scheme]["recompute_overhead_ratio"] < 1.0
            assert hit[scheme]["worthwhile"] == 1.0

    def test_tradeoff_table_covers_every_scheme(self):
        from repro.gpu import preemption_tradeoff

        table = preemption_tradeoff(self.make(), "rtx3090")
        assert set(table) == {
            "FP16",
            "INT8 (per-tensor)",
            "INT8 (per-row)",
            "INT8 (per-channel)",
            "Tender SW",
        }

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(victim_context=0)
        with pytest.raises(ConfigurationError):
            self.make(resume_hit_rate=1.5)
        with pytest.raises(ConfigurationError):
            self.make(high_prompt_tokens=0)
        with pytest.raises(ConfigurationError):
            self.make(expected_wait_steps=-1.0)
        with pytest.raises(ConfigurationError):
            self.make(batch=0)
