"""Tier-1 documentation gates: link integrity and docstring style.

Both checkers live in ``tools/`` so they can also run standalone (and in any
external CI); these tests make them part of the tier-1 pytest run so
``docs/*.md`` cross-references, the README's file links, the reproducing
table's coverage, and the serving API's docstrings cannot rot silently.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run_tool(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / name)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestDocsTooling:
    def test_doc_links_resolve_and_reproducing_table_is_complete(self):
        result = run_tool("check_doc_links.py")
        assert result.returncode == 0, f"doc link check failed:\n{result.stdout}{result.stderr}"
        assert "doc links ok" in result.stdout

    def test_serving_api_docstrings_pass_style_check(self):
        result = run_tool("check_docstrings.py")
        assert result.returncode == 0, f"docstring check failed:\n{result.stdout}{result.stderr}"
        assert "docstrings ok" in result.stdout

    def test_required_docs_pages_exist(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "reproducing.md").is_file()

    def test_link_checker_catches_breakage(self, tmp_path):
        """The checker actually fails on a broken link (it is not a no-op)."""
        sandbox = tmp_path / "repo"
        (sandbox / "docs").mkdir(parents=True)
        (sandbox / "tools").mkdir()
        tool = (REPO_ROOT / "tools" / "check_doc_links.py").read_text()
        (sandbox / "tools" / "check_doc_links.py").write_text(tool)
        (sandbox / "README.md").write_text("[missing](does/not/exist.py)\n")
        (sandbox / "docs" / "reproducing.md").write_text("no modules here\n")
        (sandbox / "src" / "repro" / "experiments").mkdir(parents=True)
        (sandbox / "src" / "repro" / "experiments" / "table1.py").write_text("")
        (sandbox / "benchmarks").mkdir()
        result = subprocess.run(
            [sys.executable, str(sandbox / "tools" / "check_doc_links.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "broken link" in result.stdout
        assert "table1.py not mentioned" in result.stdout
