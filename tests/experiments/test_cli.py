"""Tests of the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "table5" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_runs_hardware_experiments(self, capsys):
        assert main(["table5", "figure13"]) == 0
        output = capsys.readouterr().out
        assert "Table V" in output
        assert "Figure 13" in output

    def test_every_registered_name_has_runner_and_renderer(self):
        for name, (runner, renderer, description) in EXPERIMENTS.items():
            assert callable(runner) and callable(renderer)
            assert description
