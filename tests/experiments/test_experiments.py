"""Tests of the experiment modules (the per-table/figure runners).

Hardware-model experiments (Table V, Figures 10-13) run at full fidelity.
Model-quality experiments use the zoo's smallest checkpoint through the
on-disk cache; they are marked ``slow`` because the first run trains it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    format_table,
    render_figure10,
    render_figure11,
    render_figure12,
    render_figure13,
    render_table5,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_table5,
)
from repro.experiments.report import current_profile, full_evaluation_enabled


class TestReport:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["x", 1e6]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "1.00e+06" in text

    def test_profile_switches_on_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_EVAL", raising=False)
        assert not full_evaluation_enabled()
        assert len(current_profile().models) == 2
        monkeypatch.setenv("REPRO_FULL_EVAL", "1")
        assert full_evaluation_enabled()
        assert len(current_profile().models) == 8


class TestHardwareExperiments:
    def test_table5_reproduces_totals(self):
        rows = run_table5()
        rendered = render_table5(rows)
        assert "3.98" in rendered and "1.60" in rendered

    def test_figure10_geomean_shape(self):
        rows = run_figure10(models=("opt-6.7b-sim", "llama-2-7b-sim"), seq_len=1024)
        geomean = rows[-1].speedups
        assert rows[-1].model == "Geomean"
        assert geomean["ANT"] == pytest.approx(1.0)
        assert geomean["Tender"] > geomean["OliVe"] > geomean["OLAccel"] > 1.0
        assert "Tender" in render_figure10(rows)

    def test_figure11_tender_most_efficient(self):
        rows = run_figure11(models=("opt-6.7b-sim",), seq_len=1024)
        efficiency = rows[0].efficiency
        assert efficiency["Tender"] > efficiency["OliVe"] > 1.0
        assert "Geomean" in render_figure11(rows)

    def test_figure13_implicit_tracks_baseline(self):
        rows = run_figure13(models=("opt-6.7b-sim",), group_counts=(8, 16), seq_len=1024)
        for row in rows:
            assert row.implicit_normalized < 1.05
            assert row.explicit_normalized > 1.1
        sixteen = [r for r in rows if r.num_groups == 16][0]
        eight = [r for r in rows if r.num_groups == 8][0]
        assert sixteen.explicit_normalized > eight.explicit_normalized
        assert "implicit" in render_figure13(rows).lower()


@pytest.mark.slow
class TestModelExperiments:
    def test_figure12_rows_cover_schemes_and_devices(self):
        rows = run_figure12(setups=(("rtx3090", "opt-6.7b-sim"),), num_groups=8, batch_tokens=1024)
        schemes = {row.scheme for row in rows}
        assert {"FP16", "INT8 (per-tensor)", "Tender SW"} <= schemes
        fp16 = [r for r in rows if r.scheme == "FP16"][0]
        tender = [r for r in rows if r.scheme == "Tender SW"][0]
        assert fp16.mse == 0.0
        assert tender.normalized_latency < 1.05
        per_tensor = [r for r in rows if r.scheme == "INT8 (per-tensor)"][0]
        assert tender.mse < per_tensor.mse
        assert "Figure 12" in render_figure12(rows)
