"""Seeded randomized stress suite over the paged-KV invariant web.

``ServingStressHarness`` drives mixed admit/fork/decode/truncate/preempt/
evict/replica-kill/replica-stall/shard-kill/shard-stall/link-drop schedules
against a deliberately tiny ``PagedKVCache`` and audits the global
invariants after *every* op — refcount duality, radix consistency, version
monotonicity, and exact shadow-model content.  The replica and shard ops
mirror what ``ReplicaPool`` does to an engine under chaos: a kill (of a
replica, or of one shard — which fails its whole group) tears down every
live slot at once (the checkpoint-and-recover sweep), while stalls and
dropped-then-retried collective links are progress no-ops.  Tier-1 runs 3
seeds (the ``stress_seed`` fixture, parametrized in ``tests/conftest.py``);
set ``REPRO_STRESS_SEEDS=40`` for the nightly soak.

The suite also pins the tooling contract around the harness: logs replay
deterministically, injected corruption is caught and shrinks to a minimal
schedule, and the invariant checker itself detects seeded structural damage
(a checker that can't fail would vacuously pass everything).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import TransformerRunner
from repro.serve import (
    GenerationConfig,
    InvariantViolation,
    PagedKVCache,
    Scheduler,
    ServingStressHarness,
    check_pool_invariants,
    shrink_ops,
)

NUM_OPS = 250


class TestRandomizedSchedules:
    def test_mixed_schedule_preserves_every_invariant(self, stress_seed):
        harness = ServingStressHarness(seed=stress_seed)
        ops = harness.run(NUM_OPS)
        assert len(ops) == NUM_OPS
        kinds = {op["kind"] for op in ops}
        # A healthy schedule exercises the whole op vocabulary, including
        # the replica-crash sweep and stall the cluster layer leans on and
        # the collective-transport faults the shard layer adds (a dropped
        # link retries to a pristine payload; a dead shard sweeps its whole
        # group exactly like a replica crash).
        assert {
            "admit",
            "decode",
            "replica_kill",
            "replica_stall",
            "link_drop",
            "shard_stall",
            "shard_kill",
        } <= kinds

    def test_replay_is_deterministic(self, stress_seed):
        first = ServingStressHarness(seed=stress_seed)
        ops = first.run(100)
        second = ServingStressHarness.replay(ops)
        assert set(second.live) == set(first.live)
        for handle, model in first.live.items():
            assert second.live[handle].tokens == model.tokens
            np.testing.assert_array_equal(second.live[handle].expected, model.expected)
        assert second.cache.free_block_count == first.cache.free_block_count

    def test_tight_pool_reaches_exhaustion_paths(self, stress_seed):
        # A pool smaller than the slot ceiling forces reserve failures,
        # LRU revival, and COW forks to all fire within a short schedule.
        harness = ServingStressHarness(
            seed=stress_seed, num_blocks=10, max_slots=4, block_size=4
        )
        harness.run(150)


class _CorruptingHarness(ServingStressHarness):
    """Harness with one extra op kind that silently corrupts a payload."""

    def apply(self, op):
        if op["kind"] == "corrupt":
            self.op_log.append(op)
            model = self.live.get(op["handle"])
            if model is not None:
                table = self.cache.block_table(model.slot)
                self.cache.key_blocks[0][0, table[0], 0, 0] += 0.5
            self.check()
            return
        super().apply(op)


class TestFailureTooling:
    def test_injected_corruption_is_caught_and_shrinks(self):
        harness = _CorruptingHarness(seed=1)
        ops = harness.run(40)
        victim = next(handle for handle in harness.live)
        failing = ops + [{"kind": "corrupt", "handle": victim}]

        def fails(candidate):
            try:
                _CorruptingHarness.replay(candidate)
            except InvariantViolation:
                return True
            return False

        assert fails(failing)
        minimal = shrink_ops(failing, fails)
        assert fails(minimal)
        assert len(minimal) < len(failing)
        # The corrupting op itself must survive shrinking, plus whatever
        # admission created its victim slot.
        assert minimal[-1]["kind"] == "corrupt"
        assert len(minimal) <= 3

    def test_checker_detects_refcount_damage(self):
        cache = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=4)
        slot = cache.reserve(8)
        check_pool_invariants(cache)
        cache._refcounts[cache.block_table(slot)[0]] += 1
        with pytest.raises(InvariantViolation, match="refcount"):
            check_pool_invariants(cache)

    def test_checker_detects_version_rollback(self):
        cache = PagedKVCache(num_layers=1, num_heads=1, d_head=2, block_size=4, num_blocks=4)
        version = check_pool_invariants(cache)
        with pytest.raises(InvariantViolation, match="backwards"):
            check_pool_invariants(cache, version + 1)


@pytest.fixture()
def runner(tiny_weights):
    return TransformerRunner(tiny_weights)


@pytest.fixture(scope="module")
def prompt_pool(corpus_splits):
    train_tokens, _ = corpus_splits
    return [train_tokens[i * 10 : i * 10 + 4 + (i % 5)] for i in range(8)]


class TestReleaseRequest:
    def test_double_release_raises(self, runner, prompt_pool):
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=8), max_batch_size=2)
        request_id = scheduler.submit(prompt_pool[0])
        scheduler.step()
        state = scheduler.release_request(request_id)
        assert state.slot == -1
        with pytest.raises(ConfigurationError, match="not admitted"):
            scheduler.release_request(request_id)

    def test_release_returns_all_blocks(self, runner, prompt_pool):
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=8), max_batch_size=2, prefix_cache=False
        )
        total = scheduler.cache.free_block_count
        request_id = scheduler.submit(prompt_pool[0])
        for _ in range(3):
            scheduler.step()
        assert scheduler.cache.free_block_count < total
        scheduler.release_request(request_id)
        assert scheduler.cache.free_block_count == total

    def test_release_of_unknown_request_raises(self, runner):
        scheduler = Scheduler(runner)
        with pytest.raises(ConfigurationError, match="not admitted"):
            scheduler.release_request(99)
