"""Tests of the continuous-batching scheduler: admission, eviction, fairness.

The correctness anchor for everything here is per-request isolation: whatever
the scheduler does with slots — evict mid-flight, backfill with a new
request, reuse dirty KV blocks — each request's output must equal running it
alone through ``GenerationEngine.generate`` (bit-identical parity itself is
pinned in ``test_decode_parity.py``; these tests focus on the scheduling
behaviors that could break it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.models import TransformerRunner
from repro.serve import GenerationConfig, GenerationEngine, Request, Scheduler


@pytest.fixture()
def runner(tiny_weights):
    return TransformerRunner(tiny_weights)


@pytest.fixture(scope="module")
def prompt_pool(corpus_splits):
    train_tokens, _ = corpus_splits
    return [train_tokens[i * 10 : i * 10 + 4 + (i % 5)] for i in range(12)]


def outputs_by_id(outputs):
    return {output.request_id: output for output in outputs}


class TestContinuousServing:
    def test_backfill_reuses_slots_without_leaking_state(self, runner, prompt_pool):
        """More requests than slots: every continuation equals its solo run."""
        config = GenerationConfig(max_new_tokens=5)
        scheduler = Scheduler(runner, config, max_batch_size=3)
        for prompt in prompt_pool:
            scheduler.submit(prompt)
        outputs = outputs_by_id(scheduler.run())
        assert len(outputs) == len(prompt_pool)
        assert scheduler.stats.peak_active <= 3
        engine = GenerationEngine(runner)
        for request_id, prompt in enumerate(prompt_pool):
            alone = engine.generate([prompt], config)
            np.testing.assert_array_equal(outputs[request_id].generated, alone.generated[0])
            np.testing.assert_array_equal(outputs[request_id].sequence, alone.sequences[0])

    def test_eviction_reclaims_blocks_mid_flight(self, runner, prompt_pool):
        """A finished request's blocks return to the pool before the run ends.

        The pool holds exactly two requests' blocks, so the third request can
        only be admitted if the short first request's blocks are reclaimed
        the moment it finishes — while the long request is still decoding.
        """
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=12), max_batch_size=2,
            block_size=16, num_blocks=2,
        )
        scheduler.submit(prompt_pool[0], max_new_tokens=2)   # finishes quickly
        scheduler.submit(prompt_pool[1], max_new_tokens=12)  # keeps decoding
        scheduler.submit(prompt_pool[2], max_new_tokens=2)   # needs the freed block
        outputs = outputs_by_id(scheduler.run())
        assert len(outputs) == 3
        assert outputs[2].admitted_at < outputs[1].finished_at
        assert scheduler.cache.free_block_count == scheduler.cache.num_blocks
        assert scheduler.cache.active_slots == []

    def test_per_request_budgets_and_finish_reasons(self, runner, prompt_pool):
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=6), max_batch_size=4)
        scheduler.submit(prompt_pool[0], max_new_tokens=2)
        scheduler.submit(prompt_pool[1])
        outputs = outputs_by_id(scheduler.run())
        assert outputs[0].num_steps == 2 and len(outputs[0].generated) == 2
        assert outputs[1].num_steps == 6
        assert outputs[0].finish_reason == "length"
        assert outputs[0].step_logits.shape == (2, runner.config.vocab_size)

    def test_eos_finishes_request_early(self, runner, prompt_pool):
        probe = GenerationEngine(runner).generate([prompt_pool[0]], GenerationConfig(max_new_tokens=4))
        eos = int(probe.generated[0][1])
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=8, eos_token=eos), max_batch_size=2)
        scheduler.submit(prompt_pool[0])
        output = scheduler.run()[0]
        assert output.finish_reason == "eos"
        assert output.generated[-1] == eos
        assert len(output.generated) == 2

    def test_step_loop_advances_past_idle_gaps(self, runner, prompt_pool):
        """A bare step() loop must not livelock on future-only arrivals."""
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=2), max_batch_size=2)
        scheduler.submit(prompt_pool[0], arrival_time=25.0)
        finished = []
        steps = 0
        while scheduler.has_pending:
            finished.extend(scheduler.step())
            steps += 1
            assert steps < 50, "step() loop is not making progress"
        assert len(finished) == 1
        assert scheduler.stats.idle_time == 25.0
        assert finished[0].admitted_at == 25.0

    def test_record_logits_can_be_disabled(self, runner, prompt_pool):
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=3), max_batch_size=2, record_logits=False
        )
        scheduler.submit(prompt_pool[0])
        output = scheduler.run()[0]
        assert output.step_logits.shape == (0, runner.config.vocab_size)
        np.testing.assert_array_equal(
            output.generated,
            GenerationEngine(runner).generate([prompt_pool[0]], GenerationConfig(max_new_tokens=3)).generated[0],
        )


class TestDirtyBlockReuse:
    def test_dynamic_attention_stats_survive_dirty_block_reuse(
        self, outlier_weights, calibration, corpus_splits
    ):
        """Reused KV blocks must not perturb dynamic quantization statistics.

        Tender with ``quantize_attention=True, subtract_bias=False`` derives
        per-column attention-operand scales over the whole attended window,
        so a recycled slot exposing a *previous* request's stale K/V beyond
        the new request's length would silently coarsen its quantization
        (the outputs stayed masked — only the scales leaked).  Reservation
        scrubs blocks to restore the dense cache's zero-init invariant; this
        pins it with heavy slot reuse and tiny blocks.
        """
        from repro.core import TenderConfig, TenderQuantizer

        config = TenderConfig(
            bits=8, num_groups=8, row_chunk_size=8, quantize_attention=True, subtract_bias=False
        )
        runner = TenderQuantizer(config).quantize(outlier_weights, calibration)
        train_tokens, _ = corpus_splits
        prompts = [train_tokens[i * 11 : i * 11 + 4 + (i % 5)] for i in range(10)]
        generation = GenerationConfig(max_new_tokens=6)
        scheduler = Scheduler(runner, generation, max_batch_size=2, block_size=4)
        for prompt in prompts:
            scheduler.submit(prompt)
        outputs = outputs_by_id(scheduler.run())
        engine = GenerationEngine(runner)
        for request_id, prompt in enumerate(prompts):
            alone = engine.generate([prompt], generation)
            np.testing.assert_array_equal(outputs[request_id].step_logits, alone.step_logits[0])
            np.testing.assert_array_equal(outputs[request_id].generated, alone.generated[0])


class TestFairness:
    def test_admission_is_fifo_by_arrival_time(self, runner, prompt_pool):
        """Later arrivals never overtake earlier ones, whatever their length."""
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=3), max_batch_size=2)
        ids = [
            scheduler.submit(prompt_pool[i], arrival_time=float(arrival))
            for i, arrival in enumerate([9.0, 0.0, 4.0, 30.0, 12.0])
        ]
        outputs = outputs_by_id(scheduler.run())
        arrival = {ids[i]: t for i, t in enumerate([9.0, 0.0, 4.0, 30.0, 12.0])}
        admissions = sorted(outputs.values(), key=lambda o: o.admitted_at)
        admitted_order = [arrival[o.request_id] for o in admissions]
        assert admitted_order == sorted(admitted_order)

    def test_short_request_stream_cannot_starve_a_long_request(self, runner, prompt_pool):
        """A long request queued behind a flood of shorts still completes FIFO."""
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=2), max_batch_size=2)
        early_ids = [
            scheduler.submit(prompt_pool[i % 6], max_new_tokens=2, arrival_time=float(i))
            for i in range(4)
        ]
        long_id = scheduler.submit(prompt_pool[6], max_new_tokens=24, arrival_time=4.5)
        late_ids = [
            scheduler.submit(prompt_pool[i % 6], max_new_tokens=2, arrival_time=5.0 + i)
            for i in range(14)
        ]
        outputs = outputs_by_id(scheduler.run())
        assert len(outputs) == 19
        long_output = outputs[long_id]
        assert long_output.finish_reason == "length"
        assert long_output.num_steps == 24
        # FIFO: the long request is admitted before every request that
        # arrived after it, despite being 12x more expensive.
        for late in late_ids:
            assert long_output.admitted_at < outputs[late].admitted_at
        # And it was admitted after the earlier shorts (no queue jumping).
        for early in early_ids:
            assert outputs[early].admitted_at < long_output.admitted_at

    def test_long_request_keeps_decoding_while_shorts_cycle(self, runner, prompt_pool):
        """No preemption: once admitted, a long request finishes its budget."""
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=2), max_batch_size=2)
        long_id = scheduler.submit(prompt_pool[0], max_new_tokens=20)
        for i in range(8):
            scheduler.submit(prompt_pool[1 + i % 5], max_new_tokens=2, arrival_time=float(i))
        outputs = outputs_by_id(scheduler.run())
        long_output = outputs[long_id]
        assert long_output.num_steps == 20
        # The shorts all completed while the long one held its slot.
        short_finishes = [o.finished_at for o in outputs.values() if o.request_id != long_id]
        assert min(short_finishes) < long_output.finished_at


class TestPolicies:
    def test_gang_policy_only_admits_into_a_drained_batch(self, runner, prompt_pool):
        scheduler = Scheduler(
            runner, GenerationConfig(max_new_tokens=4), max_batch_size=2, policy="gang"
        )
        for i in range(4):
            scheduler.submit(prompt_pool[i], max_new_tokens=2 + 2 * (i % 2))
        outputs = sorted(scheduler.run(), key=lambda o: o.admitted_at)
        # Gang 2 starts only after gang 1 fully drained.
        first_gang_end = max(o.finished_at for o in outputs[:2])
        assert outputs[2].admitted_at >= first_gang_end
        assert outputs[3].admitted_at >= first_gang_end

    def test_continuous_beats_gang_on_iteration_count(self, runner, prompt_pool):
        """Mid-flight backfill finishes the same work in fewer forward passes."""
        budgets = [2, 14, 2, 2, 14, 2, 2, 2]
        results = {}
        for policy in ("continuous", "gang"):
            scheduler = Scheduler(
                runner, GenerationConfig(max_new_tokens=14), max_batch_size=2, policy=policy
            )
            for i, budget in enumerate(budgets):
                scheduler.submit(prompt_pool[i], max_new_tokens=budget)
            outputs = scheduler.run()
            assert len(outputs) == len(budgets)
            results[policy] = scheduler.stats
        assert results["continuous"].generated_tokens == results["gang"].generated_tokens
        assert results["continuous"].total_iterations < results["gang"].total_iterations
        assert (
            results["continuous"].tokens_per_iteration()
            > results["gang"].tokens_per_iteration()
        )

    def test_unknown_policy_rejected(self, runner):
        with pytest.raises(ConfigurationError):
            Scheduler(runner, policy="priority")


class TestValidation:
    def test_submit_validates_prompts(self, runner):
        scheduler = Scheduler(runner)
        with pytest.raises(ConfigurationError):
            scheduler.submit(np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError):
            scheduler.submit(np.array([runner.config.vocab_size + 1]))
        with pytest.raises(ConfigurationError):
            scheduler.submit(np.arange(runner.config.max_seq_len) % runner.config.vocab_size)

    def test_submit_rejects_overrides_alongside_a_request_object(self, runner, prompt_pool):
        """Keyword overrides cannot be silently dropped for full Requests."""
        from repro.serve import Request

        scheduler = Scheduler(runner)
        with pytest.raises(ConfigurationError):
            scheduler.submit(Request(prompt=prompt_pool[0]), max_new_tokens=4)
        with pytest.raises(ConfigurationError):
            scheduler.submit(Request(prompt=prompt_pool[0]), arrival_time=9.5)
        scheduler.submit(Request(prompt=prompt_pool[0], max_new_tokens=4, arrival_time=9.5))
        assert scheduler.num_waiting == 1

    def test_submit_never_mutates_the_caller_request(self, runner, prompt_pool):
        """One Request object can be submitted to several schedulers safely."""
        from repro.serve import Request

        request = Request(prompt=prompt_pool[0], max_new_tokens=2)
        config = GenerationConfig(max_new_tokens=8)
        first = Scheduler(runner, config)
        second = Scheduler(runner, config)
        first.submit(prompt_pool[1])  # shift ids so the schedulers disagree
        id_first = first.submit(request)
        id_second = second.submit(request)
        assert request.request_id is None  # caller's object untouched
        assert id_first != id_second
        outputs_first = {o.request_id: o for o in first.run()}
        outputs_second = {o.request_id: o for o in second.run()}
        np.testing.assert_array_equal(
            outputs_first[id_first].generated, outputs_second[id_second].generated
        )

    def test_submit_rejects_request_larger_than_pool(self, runner, prompt_pool):
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=32), num_blocks=1, block_size=4)
        with pytest.raises(ConfigurationError):
            scheduler.submit(prompt_pool[2])  # needs > 1 block even alone

    def test_pool_smaller_than_batch_still_serves_sequentially(self, runner, prompt_pool):
        """Blocks, not slots, are the scarce resource: admission waits for them."""
        config = GenerationConfig(max_new_tokens=4)
        scheduler = Scheduler(
            runner, config, max_batch_size=3, block_size=16, num_blocks=1
        )
        for prompt in prompt_pool[:3]:
            scheduler.submit(prompt)
        outputs = outputs_by_id(scheduler.run())
        assert len(outputs) == 3
        assert scheduler.stats.peak_active == 1  # only ever one slot's blocks
        engine = GenerationEngine(runner)
        for request_id, prompt in enumerate(prompt_pool[:3]):
            np.testing.assert_array_equal(
                outputs[request_id].generated, engine.generate([prompt], config).generated[0]
            )

    def test_resource_exhausted_error_type_exists(self):
        assert issubclass(ResourceExhaustedError, Exception)


class TestDecodeViewReuse:
    def test_view_and_lengths_persist_while_membership_is_stable(self, runner, prompt_pool):
        """The decode batch view (and its lengths) is not rebuilt per step."""
        scheduler = Scheduler(runner, GenerationConfig(max_new_tokens=6), max_batch_size=2)
        scheduler.submit(prompt_pool[0])
        scheduler.submit(prompt_pool[1])
        scheduler.step()
        view = scheduler._decode_view
        assert view is not None
        lengths = view.lengths
        scheduler.step()
        scheduler.step()
        assert scheduler._decode_view is view  # same object across iterations
        assert scheduler._decode_view.lengths is lengths
        # Membership change (a request finishing) invalidates the cache.
        scheduler.run()
        assert scheduler._decode_view is None


class TestStatsGuards:
    """Rate metrics on a scheduler that has done nothing yet: 0.0, not a crash."""

    def test_fresh_stats_report_zero_rates(self):
        from repro.serve.scheduler import SchedulerStats

        stats = SchedulerStats()
        assert stats.tokens_per_iteration() == 0.0
        assert stats.prefix_hit_rate() == 0.0
        assert stats.spec_accept_rate() == 0.0

    def test_rates_after_activity_are_unchanged(self):
        from repro.serve.scheduler import SchedulerStats

        stats = SchedulerStats(
            prefill_iterations=2,
            decode_iterations=3,
            generated_tokens=10,
            spec_proposed_tokens=4,
            spec_accepted_tokens=3,
        )
        assert stats.tokens_per_iteration() == 2.0
        assert stats.spec_accept_rate() == 0.75


class TestSampleTokenTies:
    """Seeded top-k must break equal logits by token index, not partition order."""

    @staticmethod
    def _sample(logits, top_k, seed, temperature=1.0):
        from repro.serve.scheduler import _sample_token

        config = GenerationConfig(top_k=top_k, temperature=temperature, seed=seed)
        return _sample_token(np.asarray(logits, dtype=np.float64), config, np.random.default_rng(seed))

    def test_all_tied_logits_sample_the_lowest_indices(self):
        """With every logit equal, the top-k set is tokens 0..k-1 by the
        stable tiebreak — any draw outside it means partition order leaked."""
        logits = np.zeros(32)
        drawn = {self._sample(logits, top_k=4, seed=seed) for seed in range(64)}
        assert drawn <= {0, 1, 2, 3}
        assert len(drawn) > 1  # still actually sampling within the set

    def test_tie_at_the_k_boundary_keeps_the_lowest_index(self):
        """Three tokens tie at the k-boundary; only the lowest-indexed one
        may enter the top-k set."""
        logits = np.array([5.0, 4.0, 3.0, 2.0, 2.0, 2.0, 1.0, 0.0])
        # Near-uniform probabilities so every member of the set is drawn.
        drawn = {self._sample(logits, top_k=4, seed=seed, temperature=50.0) for seed in range(128)}
        assert drawn == {0, 1, 2, 3}

    def test_tied_draws_are_permutation_consistent(self):
        """Reordering tied tokens changes *which* token is drawn only through
        its index, never through memory layout: sampling from the mirrored
        logits yields the mirrored token."""
        logits = np.array([1.0, 1.0, 1.0, 1.0, 0.0, 0.0])
        for seed in range(16):
            token = self._sample(logits, top_k=4, seed=seed)
            mirrored = self._sample(logits[::-1].copy(), top_k=4, seed=seed)
            assert token in {0, 1, 2, 3}
            assert mirrored == 5 - (3 - token)  # same rank among the ties
